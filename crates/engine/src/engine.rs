//! The engine itself: startup (shard spawning, ingestion transport
//! selection, telemetry binding), accessors, and the drain/merge
//! shutdown path.

use crate::config::{EngineConfig, IngestConfig, IngestMode, ObsConfig};
use crate::error::{EngineError, FailureKind, ShardFailure};
use crate::flight_state::FlightState;
use crate::health::{HealthState, ShardHealth};
use crate::machine_groups;
use crate::observatory::{spawn_observatory, ObservatoryHandle};
use crate::queue::{IngestRing, QueueMsg, RingConsumer, ShardQueue, ShardSource};
use crate::recovery::RecoveryLedger;
use crate::report::{EngineMetrics, EngineReport, ShardMetrics, ShardOutcome};
use crate::telemetry::{serve_telemetry, TelemetryHandle, TelemetryShared};
use crate::worker::{panic_payload_string, shard_worker, ShardCtx};
use crossbeam::channel::{bounded, Receiver};
use cslack_algorithms::OnlineScheduler;
use cslack_kernel::{merge_schedules, MachineId, Schedule};
use cslack_obs::flight::FlightSnapshot;
use cslack_obs::timeline::ClockBase;
use cslack_obs::{Histogram, MetricsRegistry, RejectCounts};
use cslack_sim::audit::audit_snapshot;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// The scheduler factory the engine keeps for the lifetime of the run:
/// startup builds one scheduler per shard through it, and shard
/// recovery builds the replacement replay scheduler through the *same*
/// closure — which is what makes the replayed stream bit-identical by
/// construction.
pub(crate) type SchedulerBuilder =
    Box<dyn Fn(usize, usize) -> Box<dyn OnlineScheduler> + Send + Sync>;

/// The swappable half of a shard's handles: the producer queue and the
/// worker's join handle. Behind a `RwLock` so a failed shard can be
/// resurrected (`Engine::restart_shard` write-locks, swaps in a fresh
/// transport and worker) while concurrent producers read-lock on the
/// submit paths.
pub(crate) struct ShardSlot {
    pub(crate) queue: Option<ShardQueue>,
    pub(crate) join: Option<JoinHandle<ShardOutcome>>,
    /// A dead worker's outcome, parked here when a restart attempt
    /// joined the worker but then refused to proceed (lossy recording,
    /// replay divergence) — `finish` reports it like any other failed
    /// shard's outcome.
    pub(crate) parked: Option<ShardOutcome>,
}

/// One shard's producer-side handles: the swappable queue/join slot
/// and the (immutable) global machine group it owns.
pub(crate) struct ShardHandle {
    pub(crate) slot: RwLock<ShardSlot>,
    pub(crate) machines: Vec<MachineId>,
}

impl ShardHandle {
    /// Read access for the submit paths. Lock poisoning is ignored:
    /// the slot's contents are always valid (a panicking restart left
    /// at worst a dead shard, which the submit paths already handle).
    pub(crate) fn read_slot(&self) -> std::sync::RwLockReadGuard<'_, ShardSlot> {
        self.slot.read().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running sharded admission-control service.
///
/// Submissions are routed to shard queues; worker threads decide and
/// commit. `&Engine` is `Sync`, so many producer threads can submit
/// concurrently. Shut down with [`Engine::finish`], which drains every
/// queue, joins the workers, and merges the shard schedules.
pub struct Engine {
    pub(crate) m: usize,
    pub(crate) config: EngineConfig,
    pub(crate) obs: ObsConfig,
    pub(crate) shards: Vec<ShardHandle>,
    pub(crate) stalls: AtomicU64,
    pub(crate) started: Instant,
    /// Nanoseconds since `started` at the first successful enqueue
    /// (`u64::MAX` until one happens) — the left edge of the busy
    /// window for [`EngineMetrics::busy_secs`].
    pub(crate) first_enqueue_ns: AtomicU64,
    pub(crate) health: Arc<HealthState>,
    pub(crate) flight: Option<Arc<FlightState>>,
    pub(crate) telemetry: Option<TelemetryHandle>,
    pub(crate) observatory: Option<ObservatoryHandle>,
    /// Shared monotonic base for every timeline stamp (submit paths
    /// stamp `Enqueue` here; workers stamp `Dequeue`/`Decide`).
    pub(crate) clock: Arc<ClockBase>,
    /// The scheduler factory, retained so [`Engine::restart_shard`] can
    /// rebuild a dead shard's scheduler for replay.
    pub(crate) builder: SchedulerBuilder,
    /// The ingestion-plane wiring, retained so recovery can construct
    /// a replacement transport matching the original.
    pub(crate) ingest: IngestConfig,
    /// The shared recovery ledger: restart count and the four-way job
    /// conservation counters, written by [`Engine::restart_shard`] and
    /// by replacement workers deciding re-offered jobs.
    pub(crate) ledger: Arc<RecoveryLedger>,
}

/// The consumer half of a shard's transport, created on the spawning
/// thread and claimed *on the worker thread* (a ring must register the
/// worker as its consumer so producers can unpark it).
pub(crate) enum ConsumerSeed {
    Channel(Receiver<QueueMsg>),
    Ring(Arc<IngestRing>),
}

impl ConsumerSeed {
    pub(crate) fn into_source(self) -> ShardSource {
        match self {
            ConsumerSeed::Channel(rx) => ShardSource::Channel(rx),
            ConsumerSeed::Ring(ring) => ShardSource::Ring(RingConsumer::new(ring)),
        }
    }
}

impl Engine {
    /// Starts the service with observability dark (no registry, no
    /// trace): spawns one worker thread per shard, each owning a
    /// scheduler built by `builder` for its machine group.
    ///
    /// `builder` receives `(shard index, machines in the shard's
    /// group)` and returns the scheduler instance that shard runs; the
    /// scheduler's machine ids are shard-local (`0..group size`) and
    /// are remapped to the global group on merge.
    pub fn start<F>(m: usize, config: EngineConfig, builder: F) -> Result<Engine, EngineError>
    where
        F: Fn(usize, usize) -> Box<dyn OnlineScheduler> + Send + Sync + 'static,
    {
        Engine::start_observed(m, config, ObsConfig::default(), builder)
    }

    /// Starts the service with explicit observability wiring: a shared
    /// [`MetricsRegistry`] to stream into and/or a per-shard decision
    /// trace (see [`ObsConfig`]), on the default ingestion plane
    /// ([`IngestConfig::default`]: per-shard rings, no pinning).
    ///
    /// `builder` runs sequentially on the calling thread, one shard at
    /// a time: threshold-style schedulers that solve for their ratio
    /// parameters hit the process-wide `cslack_ratio::table` cache, so
    /// the first shard pays for the solve and the rest reuse it.
    pub fn start_observed<F>(
        m: usize,
        config: EngineConfig,
        obs: ObsConfig,
        builder: F,
    ) -> Result<Engine, EngineError>
    where
        F: Fn(usize, usize) -> Box<dyn OnlineScheduler> + Send + Sync + 'static,
    {
        Engine::start_with_ingest(m, config, IngestConfig::default(), obs, builder)
    }

    /// [`Engine::start_observed`] with explicit ingestion-plane wiring:
    /// transport selection (ring vs legacy channel), ring capacity, and
    /// best-effort worker CPU pinning. See [`IngestConfig`].
    pub fn start_with_ingest<F>(
        m: usize,
        config: EngineConfig,
        ingest: IngestConfig,
        mut obs: ObsConfig,
        builder: F,
    ) -> Result<Engine, EngineError>
    where
        F: Fn(usize, usize) -> Box<dyn OnlineScheduler> + Send + Sync + 'static,
    {
        let builder: SchedulerBuilder = Box::new(builder);
        // Validates the shard count (zero or more shards than
        // machines) as a side effect.
        let groups = machine_groups(m, config.shards)?;
        let health = Arc::new(HealthState::new(config.shards));
        if obs.serve_metrics.is_some() && obs.registry.is_none() {
            // `/metrics` with no registry would always scrape zeros;
            // give the endpoint a live one.
            obs.registry = Some(Arc::new(MetricsRegistry::enabled()));
        }
        if let Some(reg) = &obs.registry {
            // Size the per-shard queue-depth gauge before any worker or
            // producer touches it.
            reg.queue_depth.register(config.shards);
        }
        let flight = obs
            .flight
            .as_ref()
            .filter(|f| f.capacity > 0)
            .map(|cfg| Arc::new(FlightState::new(cfg.clone(), m, config.shards)));
        // One monotonic clock base for every stamp this engine (and an
        // embedding server sharing it) takes: cross-thread stage deltas
        // are only meaningful on a single axis.
        let clock = obs
            .clock
            .clone()
            .unwrap_or_else(|| Arc::new(ClockBase::new()));
        if let Some(reg) = &obs.registry {
            // Arm the rolling-window panel on the same clock the
            // timeline stamps use, so window buckets and stage spans
            // share one time axis.
            reg.windows.register(Arc::clone(&clock));
        }
        // Bind the telemetry listener before spawning workers so a bad
        // address fails the start instead of leaking shard threads.
        let telemetry = match obs.serve_metrics {
            Some(addr) => {
                let telemetry_err = |e: std::io::Error| EngineError::Telemetry {
                    error: e.to_string(),
                };
                let listener = TcpListener::bind(addr).map_err(telemetry_err)?;
                listener.set_nonblocking(true).map_err(telemetry_err)?;
                let local = listener.local_addr().map_err(telemetry_err)?;
                let stop = Arc::new(AtomicBool::new(false));
                let shared = TelemetryShared {
                    registry: Arc::clone(obs.registry.as_ref().expect("registry set above")),
                    flight: flight.clone(),
                    health: Arc::clone(&health),
                    endpoints: obs.endpoints,
                };
                let join = std::thread::Builder::new()
                    .name("cslack-telemetry".to_string())
                    .spawn({
                        let stop = Arc::clone(&stop);
                        move || serve_telemetry(listener, shared, stop)
                    })
                    .map_err(telemetry_err)?;
                Some(TelemetryHandle {
                    stop,
                    addr: local,
                    join,
                })
            }
            None => None,
        };
        // The quality observatory needs decisions to read (the flight
        // rings) and somewhere to publish (the registry); with either
        // missing the knob is inert. Spawned only after the fallible
        // telemetry bind so an early error return leaks no thread.
        let observatory = match (&obs.observatory, &flight, &obs.registry) {
            (Some(ocfg), Some(fl), Some(reg)) if ocfg.window > 0.0 => {
                // The alert floor comes from the paper's guarantee: an
                // algorithm meeting c(eps, m) keeps every window's
                // ratio above floor_fraction / c at fraction 1.0.
                let eps = fl.cfg.eps;
                let c = if eps > 0.0 {
                    cslack_ratio::RatioFn::new(m).eval(eps).c
                } else {
                    1.0
                };
                reg.quality
                    .register(config.shards, ocfg.window, ocfg.floor_fraction / c);
                let group_sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
                Some(spawn_observatory(
                    ocfg.clone(),
                    m,
                    group_sizes,
                    Arc::clone(fl),
                    Arc::clone(reg),
                ))
            }
            _ => None,
        };
        // Pin targets wrap around the host's CPUs: more shards than
        // cores shares cores rather than failing.
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // The workers compute heartbeat / busy-window timestamps as
        // nanoseconds since this instant, so fix it before spawning.
        let started = Instant::now();
        let mut shards = Vec::with_capacity(config.shards);
        for (index, group) in groups.into_iter().enumerate() {
            let scheduler = builder(index, group.len());
            let (queue, seed) = match ingest.mode {
                IngestMode::Ring => {
                    let capacity = ingest.ring_capacity.unwrap_or(config.queue_capacity);
                    let ring = Arc::new(IngestRing::new(capacity));
                    (
                        ShardQueue::Ring(Arc::clone(&ring)),
                        ConsumerSeed::Ring(ring),
                    )
                }
                IngestMode::Channel => {
                    let (tx, rx) = bounded::<QueueMsg>(config.queue_capacity.max(1));
                    (ShardQueue::Channel(tx), ConsumerSeed::Channel(rx))
                }
            };
            let ctx = ShardCtx {
                shard: index,
                group: group.clone(),
                batch_size: config.batch_size.max(1),
                registry: obs.registry.clone(),
                trace_capacity: obs.trace_capacity,
                flight: flight.clone(),
                decisions: obs.decisions.clone(),
                health: Arc::clone(&health),
                started,
                clock: Arc::clone(&clock),
                pin_cpu: ingest
                    .pin_workers
                    .then(|| (ingest.pin_offset + index) % cpus),
            };
            let join = std::thread::Builder::new()
                .name(format!("cslack-shard-{index}"))
                .spawn(move || shard_worker(seed.into_source(), scheduler, ctx, None))
                .expect("failed to spawn shard worker");
            shards.push(ShardHandle {
                slot: RwLock::new(ShardSlot {
                    queue: Some(queue),
                    join: Some(join),
                    parked: None,
                }),
                machines: group,
            });
        }
        Ok(Engine {
            m,
            config,
            obs,
            shards,
            stalls: AtomicU64::new(0),
            started,
            first_enqueue_ns: AtomicU64::new(u64::MAX),
            health,
            flight,
            telemetry,
            observatory,
            clock,
            builder,
            ingest,
            ledger: Arc::new(RecoveryLedger::default()),
        })
    }

    /// The monotonic clock base this engine stamps timelines against —
    /// share it ([`ObsConfig::clock`]) with every component that stamps
    /// hops for the same jobs.
    pub fn clock(&self) -> &Arc<ClockBase> {
        &self.clock
    }

    /// Cluster machine count.
    pub fn machines(&self) -> usize {
        self.m
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global machine group owned by `shard`.
    pub fn shard_machines(&self, shard: usize) -> &[MachineId] {
        &self.shards[shard].machines
    }

    /// Blocking submissions that found their queue full so far.
    pub fn backpressure_stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// The bound address of the live telemetry endpoint, if one was
    /// requested via [`ObsConfig::serve_metrics`]. With port 0 this is
    /// the ephemeral port the listener actually got.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.telemetry.as_ref().map(|t| t.addr)
    }

    /// A live snapshot of the flight recording — what `/flight/snapshot`
    /// serves — with header counters recomputed from the buffered
    /// window. `None` unless a recorder is active.
    pub fn flight_snapshot(&self) -> Option<FlightSnapshot> {
        self.flight.as_ref().map(|s| s.snapshot(None))
    }

    /// Per-shard liveness, one row per shard in shard order.
    ///
    /// Lock-free reads of the same table the workers beat once per
    /// batch and the `/healthz` endpoint renders — an `Alive` entry
    /// with a stale heartbeat is an idle (or wedged) worker, a
    /// `Failed` one died to a contained fault and its jobs now bounce
    /// with [`SubmitError::ShardFailed`](crate::SubmitError::ShardFailed).
    pub fn health(&self) -> Vec<ShardHealth> {
        self.health.snapshot()
    }

    /// Live snapshot of the recovery ledger: restarts so far and the
    /// four-way job conservation counters (all zero until a failed
    /// shard is resurrected via [`Engine::restart_shard`]).
    pub fn recovery_stats(&self) -> crate::report::RecoveryStats {
        self.ledger.snapshot()
    }

    /// Monotone count of shard state *transitions* (fail, recover,
    /// drain) — never bumped by mere heartbeats. Telemetry caches in
    /// front of this engine key on it so a page rendered before a
    /// transition is never served after it.
    pub fn health_generation(&self) -> u64 {
        self.health.generation()
    }

    /// Closes every shard's queue so the workers drain and exit. The
    /// channel transport closes by dropping its sender; the ring flips
    /// its closed flag and wakes both sides.
    fn close_queues(&mut self) {
        for shard in &mut self.shards {
            let slot = shard.slot.get_mut().unwrap_or_else(PoisonError::into_inner);
            if let Some(queue) = slot.queue.take() {
                queue.close();
            }
        }
    }

    /// Graceful shutdown: closes every shard queue, waits for **all**
    /// workers to drain and exit (even after a fault), merges the
    /// healthy shards' schedules into one cluster schedule, and
    /// returns it with the metrics snapshot and the recorded decision
    /// trace.
    ///
    /// A shard that died to a contained fault does not sink the run:
    /// its failure is reported in [`EngineReport::degraded`], its
    /// pre-fault counters still feed the metrics, and only its
    /// schedule is excluded from the merge — the commitments the
    /// healthy shards made are preserved. `finish` itself fails only
    /// when *every* shard died ([`EngineError::AllShardsFailed`]) or
    /// the healthy merge breaks a kernel invariant.
    pub fn finish(mut self) -> Result<EngineReport, EngineError> {
        // Closing the queues makes the workers drain what is left and
        // return their outcomes. `take` (rather than moving out of
        // `self`) keeps `self` whole for the error-snapshot writer and
        // the `Drop` impl that stops the telemetry thread.
        self.close_queues();
        self.health.mark_draining_all();
        let handles = std::mem::take(&mut self.shards);
        let mut outcomes = Vec::with_capacity(handles.len());
        let mut groups = Vec::with_capacity(handles.len());
        for (index, shard) in handles.into_iter().enumerate() {
            let slot = shard
                .slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            let group_len = shard.machines.len();
            // An outcome that accounts for a worker that died outside
            // the contained decide/commit loop (the containment net has
            // a hole): empty, with a synthesized failure.
            let escaped = |payload: String| ShardOutcome {
                schedule: Schedule::new(group_len.max(1)),
                submitted: 0,
                accepted: 0,
                rejected: RejectCounts::default(),
                batches: 0,
                latency: Histogram::new(),
                queue_wait: Histogram::new(),
                events: Vec::new(),
                events_dropped: 0,
                last_decision_ns: 0,
                failure: Some(ShardFailure {
                    shard: index,
                    kind: FailureKind::Panic,
                    payload,
                    failing_job: None,
                    seq: 0,
                    queued_lost: 0,
                }),
                undecided: Vec::new(),
            };
            let outcome = match (slot.join, slot.parked) {
                (Some(join), _) => match join.join() {
                    Ok(outcome) => outcome,
                    Err(payload) => {
                        self.health.mark_failed(index);
                        escaped(panic_payload_string(payload.as_ref()))
                    }
                },
                // A refused restart already joined the dead worker and
                // parked its outcome for us.
                (None, Some(parked)) => parked,
                (None, None) => {
                    self.health.mark_failed(index);
                    escaped("shard worker vanished without an outcome".to_string())
                }
            };
            outcomes.push(outcome);
            groups.push(shard.machines);
        }
        // Every worker has exited, so the flight rings are final: stop
        // the observatory, whose last poll + drain scores and publishes
        // every window still open before the gauges are read below or
        // by a post-finish scrape of a shared registry.
        self.stop_observatory();
        // Drop the decision-stream sender now that every worker has
        // exited: subscribers treat the channel close as the drain
        // signal, and it must fire before the (possibly slow) merge and
        // audit below, not at `Drop` time.
        self.obs.decisions = None;
        // Release the telemetry port as soon as the workers are done —
        // callers that rebind the address (test harnesses, a respawning
        // supervisor) must not race the `Drop` of the report-holding
        // engine value.
        self.stop_telemetry();
        let degraded: Vec<ShardFailure> =
            outcomes.iter().filter_map(|o| o.failure.clone()).collect();
        if degraded.len() == outcomes.len() {
            // No healthy schedule survives; the workers already wrote
            // the crash snapshot at failure time (first fault wins).
            self.write_error_snapshot();
            return Err(EngineError::AllShardsFailed { failures: degraded });
        }
        let merged = match merge_schedules(
            self.m,
            outcomes
                .iter()
                .zip(&groups)
                .filter(|(o, _)| o.failure.is_none())
                .map(|(o, g)| (&o.schedule, g.as_slice())),
        ) {
            Ok(merged) => merged,
            Err(e) => {
                self.write_error_snapshot();
                return Err(EngineError::Merge(e));
            }
        };
        let elapsed = self.started.elapsed().as_secs_f64();

        let mut latency = Histogram::new();
        let mut queue_wait = Histogram::new();
        let mut rejected_by_reason = RejectCounts::default();
        let (mut submitted, mut accepted) = (0u64, 0u64);
        let mut per_shard = Vec::with_capacity(outcomes.len());
        let mut trace = Vec::new();
        let mut trace_dropped = 0u64;
        for (index, o) in outcomes.iter().enumerate() {
            latency.merge(&o.latency);
            queue_wait.merge(&o.queue_wait);
            rejected_by_reason.merge(&o.rejected);
            submitted += o.submitted;
            accepted += o.accepted;
            let g = groups[index].len();
            let makespan = o.schedule.makespan().raw();
            let utilization = if makespan > 0.0 {
                o.schedule.accepted_load() / (g as f64 * makespan)
            } else {
                0.0
            };
            per_shard.push(ShardMetrics {
                shard: index,
                machines: g,
                submitted: o.submitted,
                accepted: o.accepted,
                rejected: o.rejected.total(),
                rejected_by_reason: o.rejected,
                accepted_load: o.schedule.accepted_load(),
                utilization,
                batches: o.batches,
                failed: o.failure.is_some(),
            });
            trace_dropped += o.events_dropped;
        }
        // Shards are visited in index order and each ring is already in
        // per-shard arrival order, so the concatenation is sorted by
        // (shard, seq).
        for o in &mut outcomes {
            trace.append(&mut o.events);
        }
        // The busy window runs from the first successful enqueue to
        // the newest completed decision batch across shards; idle time
        // (pre-traffic, or a post-run `--hold` keeping telemetry up)
        // is excluded so the throughput number is honest.
        let first_ns = self.first_enqueue_ns.load(Ordering::Relaxed);
        let last_ns = outcomes
            .iter()
            .map(|o| o.last_decision_ns)
            .max()
            .unwrap_or(0);
        let busy_secs = if first_ns == u64::MAX || last_ns <= first_ns {
            0.0
        } else {
            (last_ns - first_ns) as f64 / 1e9
        };
        let metrics = EngineMetrics {
            m: self.m,
            shards: self.config.shards,
            submitted,
            accepted,
            rejected: rejected_by_reason.total(),
            rejected_by_reason,
            backpressure_stalls: self.stalls.load(Ordering::Relaxed),
            accepted_load: merged.accepted_load(),
            elapsed_secs: elapsed,
            busy_secs,
            decisions_per_sec: if busy_secs > 0.0 {
                submitted as f64 / busy_secs
            } else {
                0.0
            },
            latency: latency.summary(),
            queue_wait: queue_wait.summary(),
            per_shard,
        };
        // The final snapshot carries the engine's own counters (not the
        // window-recomputed ones), so the auditor can cross-check them
        // against what the trace implies.
        let flight = self.flight.as_ref().map(|state| {
            state.snapshot(Some((
                metrics.submitted,
                metrics.accepted,
                metrics.rejected_by_reason,
            )))
        });
        let audit = match (&self.flight, &flight) {
            (Some(state), Some(snap)) if state.cfg.audit_on_finish => Some(audit_snapshot(snap)),
            _ => None,
        };
        Ok(EngineReport {
            schedule: merged,
            metrics,
            trace,
            trace_dropped,
            flight,
            audit,
            degraded,
            recovery: self.ledger.snapshot(),
        })
    }

    /// Stops the telemetry listener and joins its thread, releasing the
    /// bound port immediately. Idempotent; [`Engine::finish`] calls it
    /// as soon as the workers are joined so the address is free for
    /// rebinding without waiting on the `Drop` of the engine value (the
    /// report may be held, inspected, or serialized for a long time
    /// after the run ends).
    pub fn stop_telemetry(&mut self) {
        if let Some(t) = self.telemetry.take() {
            t.stop.store(true, Ordering::Relaxed);
            let _ = t.join.join();
        }
    }

    /// Stops the quality observatory and joins its thread; its final
    /// drain closes and publishes every window still open. Idempotent;
    /// called once the workers are joined (so the flight rings are
    /// final) in both [`Engine::finish`] and `Drop`.
    fn stop_observatory(&mut self) {
        if let Some(mut o) = self.observatory.take() {
            o.stop();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Close the queues so workers drain even on an abandoned engine
        // (their outcomes are discarded), *join* them so no detached
        // thread outlives the handle, then stop and join the telemetry
        // thread so the port is released. `finish` consumes `self`, so
        // this also runs at the end of every finish path (where the
        // shard list is already empty).
        self.close_queues();
        self.health.mark_draining_all();
        for shard in &mut self.shards {
            let slot = shard.slot.get_mut().unwrap_or_else(PoisonError::into_inner);
            if let Some(join) = slot.join.take() {
                let _ = join.join();
            }
        }
        self.stop_observatory();
        if let Some(t) = self.telemetry.take() {
            t.stop.store(true, Ordering::Relaxed);
            let _ = t.join.join();
        }
    }
}
