//! Producer-side submission paths: single-job (non-blocking, blocking,
//! deadline-bounded) and batched, over either ingestion transport.

use crate::engine::Engine;
use crate::error::SubmitError;
use crate::queue::{msg_job, IngestRing, PushError, QueueMsg, ShardQueue, Submission};
use crate::shard_of;
use crate::worker::saturating_ns;
use crossbeam::channel::TrySendError;
use cslack_kernel::Job;
use cslack_obs::timeline::{Stage, TimelineStamps};
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Per-shard outcome of one batched submission.
struct GroupResult {
    /// How many of the shard's routed jobs were enqueued. The ring
    /// transport can partially publish a group interrupted by shutdown
    /// or a shard fault; the channel is all-or-nothing.
    pushed: usize,
    err: Option<GroupErr>,
}

enum GroupErr {
    Closed,
    Failed,
}

thread_local! {
    /// Per-producer-thread routing scratch: one submission vector per
    /// shard, reused across batch calls so steady-state batching
    /// performs no routing allocation at all (the vectors keep their
    /// high-water capacity).
    static ROUTE_SCRATCH: RefCell<Vec<Vec<Submission>>> = const { RefCell::new(Vec::new()) };
    /// Per-producer-thread result scratch for the batch APIs: the
    /// per-shard outcomes plus the taken-index counters used to map
    /// them back to per-job results.
    static BATCH_SCRATCH: RefCell<(Vec<GroupResult>, Vec<usize>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

impl Engine {
    /// Writes the crash-dump `.cfr` if the flight config asked for one
    /// and no failing worker already wrote it at failure time.
    pub(crate) fn write_error_snapshot(&self) {
        if let Some(state) = &self.flight {
            state.write_error_snapshot();
        }
    }

    /// Records a successful enqueue for the busy-window throughput
    /// measure (first one wins).
    fn note_enqueue(&self) {
        self.first_enqueue_ns
            .fetch_min(saturating_ns(self.started.elapsed()), Ordering::Relaxed);
    }

    /// Publishes the producer-side edge of the queue-depth gauge after
    /// a ring enqueue. The worker publishes the consumer-side edge, so
    /// scrapes see the depth bounded-stale from both directions.
    fn publish_depth(&self, shard: usize, ring: &IngestRing) {
        if let Some(reg) = &self.obs.registry {
            if reg.is_enabled() {
                reg.queue_depth.set(shard, ring.depth());
            }
        }
    }

    /// Timeline stamps for an in-process submission: one clock read,
    /// with the server-side network hops (frame decode, dispatch)
    /// coinciding with the enqueue — a direct caller has no wire
    /// between itself and the queue, so those spans are honestly zero
    /// rather than absent. Client send stays absent: only a real
    /// client can stamp its own clock domain.
    fn inprocess_stamps(&self) -> TimelineStamps {
        let now = self.clock.now_ns();
        let mut stamps = TimelineStamps::empty();
        stamps.set(Stage::FrameDecode, now);
        stamps.set(Stage::Dispatch, now);
        stamps.set(Stage::Enqueue, now);
        stamps
    }

    /// Maps a disconnected queue to the right submit error: a failed
    /// shard's transport is torn down by its dying worker, which would
    /// otherwise be indistinguishable from graceful shutdown.
    fn closed_or_failed(&self, shard: usize, job: Job) -> SubmitError {
        if self.health.is_failed(shard) {
            SubmitError::ShardFailed(job)
        } else {
            SubmitError::Closed(job)
        }
    }

    /// Enqueues a job without blocking.
    ///
    /// Fails with [`SubmitError::Full`] when the target shard's queue
    /// is at capacity — the backpressure signal for callers that must
    /// not block — and with [`SubmitError::ShardFailed`] when the
    /// shard's worker died to a contained fault.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let shard = shard_of(job.id, self.shards.len());
        if self.health.is_failed(shard) {
            return Err(SubmitError::ShardFailed(job));
        }
        let slot = self.shards[shard].read_slot();
        match &slot.queue {
            Some(ShardQueue::Ring(ring)) => match ring.try_push((job, self.inprocess_stamps())) {
                Ok(()) => {
                    self.note_enqueue();
                    self.publish_depth(shard, ring);
                    Ok(())
                }
                Err(PushError::Full) => Err(SubmitError::Full(job)),
                Err(PushError::Closed | PushError::Gone) => Err(self.closed_or_failed(shard, job)),
            },
            Some(ShardQueue::Channel(tx)) => {
                match tx.try_send(QueueMsg::One((job, self.inprocess_stamps()))) {
                    Ok(()) => {
                        self.note_enqueue();
                        Ok(())
                    }
                    Err(TrySendError::Full(msg)) => Err(SubmitError::Full(msg_job(msg))),
                    Err(TrySendError::Disconnected(msg)) => {
                        Err(self.closed_or_failed(shard, msg_job(msg)))
                    }
                }
            }
            None => Err(SubmitError::Closed(job)),
        }
    }

    /// Enqueues a job, blocking while the target shard's queue is full.
    ///
    /// A full queue is counted as a backpressure stall (metric
    /// `backpressure_stalls`) and then waited out — the job is never
    /// dropped. A shard that failed mid-wait tears down its transport,
    /// so the blocked send returns [`SubmitError::ShardFailed`] rather
    /// than hanging.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let shard = shard_of(job.id, self.shards.len());
        if self.health.is_failed(shard) {
            return Err(SubmitError::ShardFailed(job));
        }
        let slot = self.shards[shard].read_slot();
        match &slot.queue {
            Some(ShardQueue::Ring(ring)) => {
                let sub = (job, self.inprocess_stamps());
                match ring.push_batch_blocking(std::slice::from_ref(&sub)) {
                    Ok(stalled) => {
                        if stalled {
                            self.note_stall();
                        }
                        self.note_enqueue();
                        self.publish_depth(shard, ring);
                        Ok(())
                    }
                    Err(_) => Err(self.closed_or_failed(shard, job)),
                }
            }
            Some(ShardQueue::Channel(tx)) => {
                let payload = match tx.try_send(QueueMsg::One((job, self.inprocess_stamps()))) {
                    Ok(()) => {
                        self.note_enqueue();
                        return Ok(());
                    }
                    Err(TrySendError::Disconnected(msg)) => {
                        return Err(self.closed_or_failed(shard, msg_job(msg)))
                    }
                    Err(TrySendError::Full(payload)) => {
                        self.note_stall();
                        payload
                    }
                };
                match tx.send(payload) {
                    Ok(()) => {
                        self.note_enqueue();
                        Ok(())
                    }
                    Err(e) => Err(self.closed_or_failed(shard, msg_job(e.into_inner()))),
                }
            }
            None => Err(SubmitError::Closed(job)),
        }
    }

    /// Enqueues a batch of jobs with **one queue publish per involved
    /// shard** instead of one per job — the ingestion path for callers
    /// that already hold many submissions (the network server's
    /// `SubmitBatch` frames, `serve-bench`'s workload streaming). Jobs
    /// are grouped by their deterministic shard route with relative
    /// order preserved, so the per-shard arrival streams — and
    /// therefore the decision streams — are identical to submitting
    /// the same slice job-by-job through [`Engine::submit`], on either
    /// ingestion transport.
    ///
    /// Returns one `Result` per input job, in input order. A full
    /// shard queue is waited out like [`Engine::submit`] (counted as
    /// one backpressure stall per shard-group, not per job); a failed
    /// or closed shard fails its jobs with [`SubmitError::ShardFailed`]
    /// / [`SubmitError::Closed`] while the other shards' groups still
    /// enqueue. On the default ring transport capacity bounds queued
    /// *jobs*; on the legacy channel a batched shard-group occupies a
    /// single queue slot whatever its length, so `queue_capacity`
    /// bounds queued *messages*.
    ///
    /// Callers on a hot path should prefer
    /// [`Engine::submit_batch_into`], which performs no per-call
    /// allocation.
    pub fn submit_batch(&self, jobs: &[Job]) -> Vec<Result<(), SubmitError>> {
        self.submit_batch_stamped(jobs, TimelineStamps::empty())
    }

    /// [`Engine::submit_batch`] with caller-provided timeline stamps —
    /// the wire-ingestion path. `stamps` carries the hops that happened
    /// *before* the engine saw the batch (client send from the frame,
    /// frame decode, dispatcher route); the engine stamps `Enqueue`
    /// itself (one clock read for the whole batch) and fills a missing
    /// frame-decode/dispatch stamp with it, so every server-side stage
    /// is always present downstream. A zero client-send stamp is left
    /// absent — it belongs to the client's clock domain and cannot be
    /// synthesized here.
    pub fn submit_batch_stamped(
        &self,
        jobs: &[Job],
        stamps: TimelineStamps,
    ) -> Vec<Result<(), SubmitError>> {
        BATCH_SCRATCH.with(|scratch| {
            let (outcomes, taken) = &mut *scratch.borrow_mut();
            self.submit_batch_core(jobs, stamps, outcomes);
            taken.clear();
            taken.resize(self.shards.len(), 0);
            jobs.iter()
                .map(|job| {
                    let shard = shard_of(job.id, self.shards.len());
                    let idx = taken[shard];
                    taken[shard] += 1;
                    let group = &outcomes[shard];
                    if idx < group.pushed {
                        Ok(())
                    } else {
                        Err(match group.err {
                            Some(GroupErr::Failed) => SubmitError::ShardFailed(*job),
                            _ => SubmitError::Closed(*job),
                        })
                    }
                })
                .collect()
        })
    }

    /// Allocation-free batched submission: like [`Engine::submit_batch`]
    /// but instead of materializing a `Vec<Result>` per call — which
    /// clones every rejected job into a fresh allocation even on the
    /// all-accepted steady state — it returns how many jobs were
    /// enqueued and appends one [`SubmitError`] per *failed* job (in
    /// input order, each carrying its job) to the caller-owned
    /// `failures` buffer, which is cleared first and reused across
    /// calls. When every job lands, the call touches no allocator at
    /// all: routing scratch is thread-local and `failures` keeps its
    /// capacity.
    pub fn submit_batch_into(&self, jobs: &[Job], failures: &mut Vec<SubmitError>) -> usize {
        self.submit_batch_stamped_into(jobs, TimelineStamps::empty(), failures)
    }

    /// [`Engine::submit_batch_into`] with caller-provided timeline
    /// stamps — see [`Engine::submit_batch_stamped`] for the stamp
    /// semantics. Returns the number of jobs enqueued.
    pub fn submit_batch_stamped_into(
        &self,
        jobs: &[Job],
        stamps: TimelineStamps,
        failures: &mut Vec<SubmitError>,
    ) -> usize {
        failures.clear();
        BATCH_SCRATCH.with(|scratch| {
            let (outcomes, taken) = &mut *scratch.borrow_mut();
            self.submit_batch_core(jobs, stamps, outcomes);
            if outcomes.iter().all(|g| g.err.is_none()) {
                // Steady state: everything enqueued, nothing to report.
                return jobs.len();
            }
            taken.clear();
            taken.resize(self.shards.len(), 0);
            let mut enqueued = 0usize;
            for job in jobs {
                let shard = shard_of(job.id, self.shards.len());
                let idx = taken[shard];
                taken[shard] += 1;
                let group = &outcomes[shard];
                if idx < group.pushed {
                    enqueued += 1;
                } else {
                    failures.push(match group.err {
                        Some(GroupErr::Failed) => SubmitError::ShardFailed(*job),
                        _ => SubmitError::Closed(*job),
                    });
                }
            }
            enqueued
        })
    }

    /// The shared core of the batch APIs: stamp, route into the
    /// thread-local per-shard scratch, and publish one group per shard,
    /// recording each group's outcome into `outcomes` (indexed by
    /// shard).
    fn submit_batch_core(
        &self,
        jobs: &[Job],
        mut stamps: TimelineStamps,
        outcomes: &mut Vec<GroupResult>,
    ) {
        let shards = self.shards.len();
        let now = self.clock.now_ns();
        for stage in [Stage::FrameDecode, Stage::Dispatch] {
            if stamps.get(stage) == 0 {
                stamps.set(stage, now);
            }
        }
        stamps.set(Stage::Enqueue, now);
        ROUTE_SCRATCH.with(|scratch| {
            let groups = &mut *scratch.borrow_mut();
            if groups.len() < shards {
                groups.resize_with(shards, Vec::new);
            }
            for group in groups.iter_mut() {
                group.clear();
            }
            for job in jobs {
                groups[shard_of(job.id, shards)].push((*job, stamps));
            }
            outcomes.clear();
            for (shard, group) in groups.iter_mut().take(shards).enumerate() {
                outcomes.push(self.submit_group(shard, group));
            }
        });
    }

    /// Publishes one shard's routed group. Empty groups are vacuously
    /// enqueued; a full queue is waited out (one stall per group); a
    /// failed or closed shard reports the error with an exact `pushed`
    /// prefix so partial ring publishes map back to per-job results.
    fn submit_group(&self, shard: usize, group: &mut Vec<Submission>) -> GroupResult {
        let len = group.len();
        if len == 0 {
            return GroupResult {
                pushed: 0,
                err: None,
            };
        }
        if self.health.is_failed(shard) {
            return GroupResult {
                pushed: 0,
                err: Some(GroupErr::Failed),
            };
        }
        // Holding the read guard for the whole publish keeps a
        // concurrent `restart_shard` (write lock) from swapping the
        // transport out from under a partially pushed group.
        let slot = self.shards[shard].read_slot();
        let Some(queue) = slot.queue.as_ref() else {
            return GroupResult {
                pushed: 0,
                err: Some(GroupErr::Closed),
            };
        };
        let group_err = |pushed: usize| GroupResult {
            pushed,
            err: Some(if self.health.is_failed(shard) {
                GroupErr::Failed
            } else {
                GroupErr::Closed
            }),
        };
        match queue {
            ShardQueue::Ring(ring) => {
                let result = ring.push_batch_blocking(group);
                let outcome = match result {
                    Ok(stalled) => {
                        if stalled {
                            self.note_stall();
                        }
                        GroupResult {
                            pushed: len,
                            err: None,
                        }
                    }
                    Err((pushed, _)) => group_err(pushed),
                };
                if outcome.pushed > 0 {
                    self.note_enqueue();
                    self.publish_depth(shard, ring);
                }
                outcome
            }
            ShardQueue::Channel(tx) => {
                // The channel takes ownership of the payload, so the
                // legacy path gives up the scratch buffer (and its
                // capacity) each call — one of the allocations the ring
                // transport exists to remove.
                let payload = match tx.try_send(QueueMsg::Many(std::mem::take(group))) {
                    Ok(()) => {
                        self.note_enqueue();
                        return GroupResult {
                            pushed: len,
                            err: None,
                        };
                    }
                    Err(TrySendError::Disconnected(_)) => return group_err(0),
                    Err(TrySendError::Full(payload)) => {
                        self.note_stall();
                        payload
                    }
                };
                match tx.send(payload) {
                    Ok(()) => {
                        self.note_enqueue();
                        GroupResult {
                            pushed: len,
                            err: None,
                        }
                    }
                    Err(_) => group_err(0),
                }
            }
        }
    }

    /// Counts one backpressure stall (report counter + live registry).
    fn note_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = &self.obs.registry {
            if reg.is_enabled() {
                reg.backpressure_stalls.inc();
            }
        }
    }

    /// Enqueues a job with a deadline on the *submission* (not the
    /// job's own scheduling deadline): retries a full queue with
    /// bounded exponential backoff (50 µs doubling to a 10 ms cap,
    /// never past the deadline) and gives up with
    /// [`SubmitError::Full`] once `deadline` has elapsed.
    ///
    /// Producers that must not block indefinitely — the paper's
    /// admission setting is online, a job held too long is worthless —
    /// get a bounded-latency alternative to the unboundedly blocking
    /// [`Engine::submit`]. [`SubmitError::ShardFailed`] and
    /// [`SubmitError::Closed`] surface immediately; backpressure is
    /// the only condition worth waiting out.
    pub fn submit_with_deadline(&self, job: Job, deadline: Duration) -> Result<(), SubmitError> {
        const INITIAL_BACKOFF: Duration = Duration::from_micros(50);
        const MAX_BACKOFF: Duration = Duration::from_millis(10);
        let start = Instant::now();
        let mut backoff = INITIAL_BACKOFF;
        let mut job = job;
        let mut stalled = false;
        loop {
            match self.try_submit(job) {
                Ok(()) => return Ok(()),
                Err(SubmitError::Full(j)) => {
                    if !stalled {
                        // One stall per submission, matching `submit`'s
                        // accounting, however many retries follow.
                        stalled = true;
                        self.note_stall();
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= deadline {
                        return Err(SubmitError::Full(j));
                    }
                    std::thread::sleep(backoff.min(deadline - elapsed));
                    backoff = (backoff * 2).min(MAX_BACKOFF);
                    job = j;
                }
                Err(other) => return Err(other),
            }
        }
    }
}
