//! Shard resurrection: replay-driven failover with explicit job
//! conservation.
//!
//! A shard that died to a contained fault normally stays dead for the
//! rest of the run (degraded mode). [`Engine::restart_shard`] instead
//! brings it back:
//!
//! 1. **Join** the dead worker and take its partial outcome — which
//!    carries, since the `queued_lost` conservation rework, every job
//!    the shard received but never decided (`undecided`, in arrival
//!    order: the failing job first, then the rest of its batch, then
//!    the drained queue).
//! 2. **Replay** the shard's flight-ring decision stream through a
//!    scheduler built by the *same* builder the run started with
//!    ([`rebuild_shard_state`]): the regenerated stream must be
//!    bit-identical to the recording, and the rebuilt shard-local
//!    schedule then holds exactly the pre-crash commitments. Jobs
//!    already committed stay committed — the paper's commitment model
//!    (arXiv 1811.08238) forbids revoking them, and the replay keeps
//!    the scheduler's internal load state consistent with them.
//! 3. **Swap** a fresh ingestion transport in for the poisoned one and
//!    spawn a replacement worker that resumes the decision sequence at
//!    `seq = submitted` (so flight/observatory per-shard watermarks
//!    stay contiguous across the restart).
//! 4. **Re-admit** the bounced jobs by enqueueing them first, ahead of
//!    any new producer traffic: each is re-offered to the recovered
//!    scheduler, which accepts it only if its commitment point
//!    `d_j - (1+eps)p_j` still allows an immediate commitment — jobs
//!    whose slack the outage consumed are re-rejected, exactly the
//!    commitment-point re-admission rule the theory permits.
//!
//! Every job a failed-then-recovered shard ever received is conserved
//! into exactly one bucket: decided before the crash (accepted →
//! `recovered_committed`, rejected → the ordinary reject counters),
//! re-offered and admitted (`re_admitted`), re-offered and rejected
//! (`re_rejected`), or not re-offerable at all (`lost`, only when the
//! replacement transport refused the re-enqueue). The ledger surfaces
//! in [`EngineReport::recovery`](crate::EngineReport) and on
//! `/metrics` as `cslack_shard_restarts_total` /
//! `cslack_recovered_jobs_total`.

use crate::config::IngestMode;
use crate::engine::{ConsumerSeed, Engine, ShardSlot};
use crate::error::{EngineError, ShardFailure};
use crate::queue::{IngestRing, QueueMsg, ShardQueue};
use crate::report::{RecoveryStats, ShardOutcome};
use crate::worker::ShardCtx;
use crate::worker::{panic_payload_string, shard_worker, ResumeState};
use crossbeam::channel::bounded;
use cslack_obs::Counter;
use cslack_sim::audit::rebuild_shard_state;
use std::sync::{Arc, PoisonError};

/// The engine-wide recovery ledger: lock-free counters written by
/// [`Engine::restart_shard`] (restarts, recovered commitments, lost)
/// and by replacement workers deciding re-offered jobs (re-admitted /
/// re-rejected).
#[derive(Debug, Default)]
pub(crate) struct RecoveryLedger {
    pub(crate) restarts: Counter,
    pub(crate) recovered_committed: Counter,
    pub(crate) re_admitted: Counter,
    pub(crate) re_rejected: Counter,
    pub(crate) lost: Counter,
}

impl RecoveryLedger {
    pub(crate) fn snapshot(&self) -> RecoveryStats {
        RecoveryStats {
            restarts: self.restarts.get(),
            recovered_committed: self.recovered_committed.get(),
            re_admitted: self.re_admitted.get(),
            re_rejected: self.re_rejected.get(),
            lost: self.lost.get(),
        }
    }
}

/// Restores `outcome` (failure re-attached) into the slot's parked
/// seat so a later `finish` still reports the shard faithfully, and
/// renders the refusal as a typed error.
fn refuse_and_park(
    slot: &mut ShardSlot,
    mut outcome: ShardOutcome,
    failure: ShardFailure,
    shard: usize,
    reason: String,
) -> EngineError {
    outcome.failure = Some(failure);
    slot.parked = Some(outcome);
    EngineError::Recovery { shard, reason }
}

impl Engine {
    /// Resurrects a failed shard: joins the dead worker, replays its
    /// recorded decision stream into a freshly built scheduler
    /// (bit-identity asserted), swaps in a fresh ingestion transport,
    /// re-offers the bounced jobs that never reached a decision, and
    /// marks the shard alive again. Returns the number of jobs
    /// re-offered to the replacement worker.
    ///
    /// Callable from any thread holding `&Engine` — concurrent
    /// submitters block only for the duration of the swap (they
    /// read-lock the shard's slot). Refused with
    /// [`EngineError::Recovery`] when the shard is not failed, no
    /// flight recorder is active, the recording is lossy, or the
    /// replay diverges; a refused restart loses nothing (the dead
    /// worker's outcome is parked for `finish`), but the shard stays
    /// down for good.
    pub fn restart_shard(&self, shard: usize) -> Result<u64, EngineError> {
        let refuse = |reason: String| EngineError::Recovery { shard, reason };
        if shard >= self.shards.len() {
            return Err(refuse(format!(
                "no such shard (engine has {})",
                self.shards.len()
            )));
        }
        let Some(flight) = self.flight.as_ref() else {
            return Err(refuse(
                "recovery needs an active flight recorder (ObsConfig::flight) to replay".into(),
            ));
        };
        if !self.health.is_failed(shard) {
            return Err(refuse("shard is not failed".into()));
        }
        let handle = &self.shards[shard];
        let mut slot = handle.slot.write().unwrap_or_else(PoisonError::into_inner);
        if !self.health.is_failed(shard) {
            // Lost the race to a concurrent recoverer that already
            // brought the shard back while we waited for the lock.
            return Err(refuse("shard is not failed".into()));
        }
        let Some(join) = slot.join.take() else {
            return Err(refuse(if slot.parked.is_some() {
                "a previous restart attempt was refused; the shard stays down".into()
            } else {
                "the worker was already joined (engine shutting down?)".into()
            }));
        };
        // The worker marked itself failed before returning, so this
        // join is immediate — we are not waiting out a drain here.
        let mut outcome = match join.join() {
            Ok(outcome) => outcome,
            Err(payload) => {
                // Died outside containment: no outcome, no manifest of
                // bounced jobs, nothing trustworthy to resume from.
                return Err(refuse(format!(
                    "the worker panicked outside fault containment ({}); \
                     there is no outcome to recover from",
                    panic_payload_string(payload.as_ref())
                )));
            }
        };
        let Some(failure) = outcome.failure.take() else {
            slot.parked = Some(outcome);
            return Err(refuse(
                "the worker exited healthy; nothing to recover".into(),
            ));
        };

        // --- Replay: rebuild schedule + scheduler state, asserted
        // bit-identical to the recorded stream. ---
        let (events, dropped) = flight.rings[shard].snapshot_events();
        if dropped > 0 {
            return Err(refuse_and_park(
                &mut slot,
                outcome,
                failure,
                shard,
                format!(
                    "the flight ring dropped {dropped} event(s); replay needs a complete \
                     recording (raise FlightConfig::capacity)"
                ),
            ));
        }
        let group = &handle.machines;
        let lo = group.first().map(|id| id.0 as usize).unwrap_or(0);
        let mut scheduler = (self.builder)(shard, group.len());
        let (schedule, replayed) =
            match rebuild_shard_state(&events, shard as u32, lo, group.len(), scheduler.as_mut()) {
                Ok(rebuilt) => rebuilt,
                Err(reason) => {
                    return Err(refuse_and_park(&mut slot, outcome, failure, shard, reason))
                }
            };
        if replayed != outcome.submitted {
            let committed = outcome.submitted;
            return Err(refuse_and_park(
                &mut slot,
                outcome,
                failure,
                shard,
                format!(
                    "the recording holds {replayed} decision(s) but the dead worker \
                     committed {committed}; the streams cannot be reconciled"
                ),
            ));
        }
        debug_assert_eq!(
            schedule.len() as u64,
            outcome.accepted,
            "a bit-identical replay must re-commit exactly the recorded accepts"
        );

        // --- Fresh transport, with the bounced jobs enqueued ahead of
        // any producer (the slot is still write-locked, so no producer
        // can reach the new queue yet). The ring is sized to hold the
        // whole re-offer batch so the pre-spawn push can never block.
        let undecided = std::mem::take(&mut outcome.undecided);
        let (queue, seed) = match self.ingest.mode {
            IngestMode::Ring => {
                let capacity = self
                    .ingest
                    .ring_capacity
                    .unwrap_or(self.config.queue_capacity)
                    .max(undecided.len());
                let ring = Arc::new(IngestRing::new(capacity));
                (
                    ShardQueue::Ring(Arc::clone(&ring)),
                    ConsumerSeed::Ring(ring),
                )
            }
            IngestMode::Channel => {
                let (tx, rx) = bounded::<QueueMsg>(self.config.queue_capacity.max(1));
                (ShardQueue::Channel(tx), ConsumerSeed::Channel(rx))
            }
        };
        let mut lost = 0u64;
        if !undecided.is_empty() {
            match &queue {
                ShardQueue::Ring(ring) => {
                    if let Err((pushed, _)) = ring.push_batch_blocking(&undecided) {
                        lost = (undecided.len() - pushed) as u64;
                    }
                }
                ShardQueue::Channel(tx) => {
                    // A fresh bounded channel always has room for one
                    // message; `Many` occupies a single slot.
                    if tx.try_send(QueueMsg::Many(undecided.clone())).is_err() {
                        lost = undecided.len() as u64;
                    }
                }
            }
        }
        let readmit = undecided.len() as u64 - lost;
        let recovered_committed = outcome.accepted;
        // The failure is consumed here: the shard is no longer failed,
        // and `finish` must not report it as degraded.
        drop(failure);

        // --- Replacement worker: resumes counters, trace, and the
        // decision sequence exactly where the dead worker stopped. ---
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let ctx = ShardCtx {
            shard,
            group: group.clone(),
            batch_size: self.config.batch_size.max(1),
            registry: self.obs.registry.clone(),
            trace_capacity: self.obs.trace_capacity,
            flight: Some(Arc::clone(flight)),
            decisions: self.obs.decisions.clone(),
            health: Arc::clone(&self.health),
            started: self.started,
            clock: Arc::clone(&self.clock),
            pin_cpu: self
                .ingest
                .pin_workers
                .then(|| (self.ingest.pin_offset + shard) % cpus),
        };
        let resume = ResumeState {
            schedule,
            outcome,
            readmit,
            ledger: Arc::clone(&self.ledger),
        };
        let restart_n = self.ledger.restarts.get() + 1;
        let join = std::thread::Builder::new()
            .name(format!("cslack-shard-{shard}-r{restart_n}"))
            .spawn(move || shard_worker(seed.into_source(), scheduler, ctx, Some(resume)))
            .map_err(|e| refuse(format!("failed to spawn the replacement worker: {e}")))?;
        slot.queue = Some(queue);
        slot.join = Some(join);
        slot.parked = None;
        // Only now — with the new transport installed — does the shard
        // go back to `Alive`: a producer that sees the recovered state
        // always finds a working queue behind it.
        self.health.mark_recovered(shard);
        drop(slot);

        self.ledger.restarts.inc();
        self.ledger.recovered_committed.add(recovered_committed);
        self.ledger.lost.add(lost);
        if let Some(reg) = self.obs.registry.as_deref().filter(|r| r.is_enabled()) {
            reg.shard_restarts.inc();
            reg.recovered_jobs.add(recovered_committed);
        }
        Ok(readmit)
    }
}
