//! Property tests for the offline solvers: the exact DP against an
//! independent brute force, and the bound ladder on random instances.

use cslack_kernel::{validate, Instance, InstanceBuilder, Time};
use cslack_opt::{bounds, estimate, exact, flow};
use proptest::prelude::*;

/// Random small instance strategy.
fn arb_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (
        1usize..=3,
        0.05f64..=1.0,
        prop::collection::vec((0.0f64..4.0, 0.1f64..2.5, 0.0f64..1.5), 1..max_n),
    )
        .prop_map(|(m, eps, raw)| {
            let mut b = InstanceBuilder::new(m, eps);
            for (r, p, extra) in raw {
                let d = r + (1.0 + eps + extra) * p;
                b.push(Time::new(r), p, Time::new(d));
            }
            b.build().unwrap()
        })
}

/// Independent feasibility brute force: recursive dispatch search.
fn feasible(jobs: &[cslack_kernel::Job], remaining: u32, frontiers: &mut Vec<f64>) -> bool {
    if remaining == 0 {
        return true;
    }
    for j in 0..jobs.len() {
        if remaining & (1 << j) == 0 {
            continue;
        }
        for i in 0..frontiers.len() {
            let start = frontiers[i].max(jobs[j].release.raw());
            if start + jobs[j].proc_time <= jobs[j].deadline.raw() + 1e-12 {
                let saved = frontiers[i];
                frontiers[i] = start + jobs[j].proc_time;
                let ok = feasible(jobs, remaining & !(1 << j), frontiers);
                frontiers[i] = saved;
                if ok {
                    return true;
                }
            }
        }
    }
    false
}

fn brute_force(inst: &Instance) -> f64 {
    let n = inst.len();
    let mut best = 0.0_f64;
    for mask in 0u32..(1 << n) {
        let load: f64 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| inst.jobs()[i].proc_time)
            .sum();
        if load > best {
            let mut fr = vec![0.0; inst.machines()];
            if feasible(inst.jobs(), mask, &mut fr) {
                best = load;
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The subset DP equals the independent brute force.
    #[test]
    fn exact_matches_brute_force(inst in arb_instance(8)) {
        let dp = exact::max_load(&inst);
        let bf = brute_force(&inst);
        prop_assert!((dp.load - bf).abs() < 1e-9 * bf.max(1.0),
            "dp {} vs brute force {bf}", dp.load);
    }

    /// The witness schedule the DP returns is valid and has the claimed
    /// load.
    #[test]
    fn exact_witness_is_certified(inst in arb_instance(9)) {
        let dp = exact::max_load(&inst);
        let report = cslack_kernel::validate_schedule(&inst, &dp.schedule);
        prop_assert!(report.is_valid(), "{:?}", report.violations);
        prop_assert!((dp.schedule.accepted_load() - dp.load).abs() < 1e-9);
    }

    /// Bound ladder: greedy <= exact <= flow <= total.
    #[test]
    fn bound_ladder(inst in arb_instance(9)) {
        let greedy = bounds::greedy_lower_bound(&inst);
        let ex = exact::max_load(&inst).load;
        let fl = flow::preemptive_load_bound(&inst);
        let total = inst.total_load();
        prop_assert!(greedy <= ex + 1e-9);
        prop_assert!(ex <= fl + 1e-6 * fl.max(1.0));
        prop_assert!(fl <= total + 1e-6 * total.max(1.0));
    }

    /// `estimate` is internally consistent in both regimes.
    #[test]
    fn estimate_consistency(inst in arb_instance(9)) {
        let small = estimate(&inst, 16);
        prop_assert!(small.exact.is_some());
        prop_assert!(small.lower <= small.upper + 1e-9);
        let large = estimate(&inst, 0); // force the bound path
        prop_assert!(large.exact.is_none());
        prop_assert!(large.lower <= large.upper + 1e-6 * large.upper.max(1.0));
        // The bound path must bracket the true optimum.
        let ex = small.exact.unwrap();
        prop_assert!(large.lower <= ex + 1e-9);
        prop_assert!(ex <= large.upper + 1e-6 * large.upper.max(1.0));
    }

    /// Local search is sandwiched: greedy <= LS <= exact, and its
    /// witness schedule validates.
    #[test]
    fn local_search_is_sandwiched(inst in arb_instance(9)) {
        let g = bounds::greedy_lower_bound(&inst);
        let s = bounds::local_search_schedule(&inst, 3);
        validate::assert_valid(&inst, &s);
        let ls = s.accepted_load();
        let ex = exact::max_load(&inst).load;
        prop_assert!(ls >= g - 1e-9, "LS {ls} < greedy {g}");
        prop_assert!(ls <= ex + 1e-9, "LS {ls} > OPT {ex}");
    }

    /// The greedy lower-bound schedule is itself valid.
    #[test]
    fn greedy_schedule_is_valid(inst in arb_instance(20)) {
        let s = bounds::greedy_schedule(&inst);
        validate::assert_valid(&inst, &s);
    }

    /// Adding a job never decreases the exact optimum (monotonicity of
    /// OPT in the job set).
    #[test]
    fn opt_is_monotone_in_jobs(inst in arb_instance(7), p in 0.1f64..2.0, r in 0.0f64..4.0) {
        let base = exact::max_load(&inst).load;
        let mut b = InstanceBuilder::new(inst.machines(), inst.slack());
        for j in inst.jobs() {
            b.push(j.release, j.proc_time, j.deadline);
        }
        b.push(Time::new(r), p, Time::new(r + (1.0 + inst.slack()) * p + 5.0));
        let bigger = exact::max_load(&b.build().unwrap()).load;
        prop_assert!(bigger >= base - 1e-9, "adding a job reduced OPT");
    }

    /// Flow bound is monotone under deadline extension.
    #[test]
    fn flow_monotone_in_deadlines(inst in arb_instance(8), stretch in 1.0f64..3.0) {
        let base = flow::preemptive_load_bound(&inst);
        let mut b = InstanceBuilder::new(inst.machines(), inst.slack());
        for j in inst.jobs() {
            let laxer = j.release + (j.deadline - j.release) * stretch;
            b.push(j.release, j.proc_time, laxer);
        }
        let laxer = flow::preemptive_load_bound(&b.build().unwrap());
        prop_assert!(laxer >= base - 1e-6 * base.max(1.0),
            "extending deadlines reduced the flow bound: {base} -> {laxer}");
    }
}
