//! Exact offline maximum-load solver (small instances).
//!
//! Dynamic program over job subsets. A state is the sorted vector of
//! machine *frontiers* (completion time of the last job per machine)
//! reachable by scheduling exactly the subset `mask`; for each mask we
//! keep only the Pareto-minimal frontier vectors. Transitions append a
//! job `j ∉ mask` to any machine: `start = max(r_j, frontier)` — every
//! feasible schedule can be normalized to such left-shifted per-machine
//! sequences, so the DP is exact. The optimum is the heaviest reachable
//! mask; parent pointers reconstruct a concrete witness
//! [`cslack_kernel::Schedule`].
//!
//! Complexity is `O(2^n · S · n · m)` with `S` the Pareto width; with
//! the pruning it is comfortable to ~20 jobs, which covers every exact
//! comparison in the experiments (larger runs use the flow bound).

use cslack_kernel::{Instance, MachineId, Schedule, Time};

/// Hard cap on the job count the solver accepts (memory guard).
pub const MAX_JOBS: usize = 24;

/// Result of the exact solver.
#[derive(Clone, Debug)]
pub struct ExactResult {
    /// The optimal load.
    pub load: f64,
    /// Bitmask of the accepted jobs (bit `i` = job index `i`).
    pub mask: u32,
    /// A witness schedule achieving `load`.
    pub schedule: Schedule,
}

#[derive(Clone, Copy, Debug)]
struct Parent {
    state: u32,
    job: u8,
    /// Frontier value the job was appended after.
    replaced: f64,
    start: f64,
}

#[derive(Clone, Debug)]
struct State {
    /// Sorted ascending machine frontiers.
    f: Vec<f64>,
    parent: Option<Parent>,
}

/// `a` dominates `b` when every frontier is at most the corresponding
/// one (both sorted ascending).
fn dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| *x <= *y + 1e-12)
}

fn pareto_insert(states: &mut Vec<State>, cand: State) {
    for s in states.iter() {
        if dominates(&s.f, &cand.f) {
            return;
        }
    }
    states.retain(|s| !dominates(&cand.f, &s.f));
    states.push(cand);
}

/// Solves the instance exactly.
///
/// # Panics
/// Panics if the instance has more than [`MAX_JOBS`] jobs.
pub fn max_load(instance: &Instance) -> ExactResult {
    let n = instance.len();
    assert!(
        n <= MAX_JOBS,
        "exact solver capped at {MAX_JOBS} jobs (got {n}); use the flow bound"
    );
    let m = instance.machines();
    if n == 0 {
        return ExactResult {
            load: 0.0,
            mask: 0,
            schedule: Schedule::new(m),
        };
    }
    let jobs = instance.jobs();

    let full = 1u32 << n;
    let mut dp: Vec<Vec<State>> = vec![Vec::new(); full as usize];
    dp[0].push(State {
        f: vec![0.0; m],
        parent: None,
    });

    let load_of = |mask: u32| -> f64 {
        (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| jobs[i].proc_time)
            .sum()
    };

    let mut best = (0.0_f64, 0u32, 0usize); // (load, mask, state idx)
    for mask in 0..full {
        if dp[mask as usize].is_empty() {
            continue;
        }
        let mask_load = load_of(mask);
        if mask_load > best.0 {
            best = (mask_load, mask, 0);
        }
        #[allow(clippy::needless_range_loop)] // j doubles as the mask bit
        for j in 0..n {
            if mask & (1 << j) != 0 {
                continue;
            }
            let job = &jobs[j];
            let next_mask = (mask | (1 << j)) as usize;
            for sidx in 0..dp[mask as usize].len() {
                let mut last = f64::NEG_INFINITY;
                for i in 0..m {
                    let frontier = dp[mask as usize][sidx].f[i];
                    if (frontier - last).abs() <= 1e-15 {
                        continue; // identical frontier => identical branch
                    }
                    last = frontier;
                    let start = frontier.max(job.release.raw());
                    if start + job.proc_time <= job.deadline.raw() + 1e-12 {
                        let mut f = dp[mask as usize][sidx].f.clone();
                        f[i] = start + job.proc_time;
                        f.sort_by(|a, b| a.total_cmp(b));
                        let cand = State {
                            f,
                            parent: Some(Parent {
                                state: sidx as u32,
                                job: j as u8,
                                replaced: frontier,
                                start,
                            }),
                        };
                        // Split borrows: masks differ (next_mask > mask).
                        let (lo, hi) = dp.split_at_mut(next_mask);
                        let _ = &lo[mask as usize];
                        pareto_insert(&mut hi[0], cand);
                    }
                }
            }
        }
    }

    // Reconstruct the witness schedule by walking parents.
    let mut chain: Vec<Parent> = Vec::new();
    let (mut mask, mut sidx) = (best.1, best.2);
    while let Some(p) = dp[mask as usize][sidx].parent {
        chain.push(p);
        mask &= !(1u32 << p.job);
        sidx = p.state as usize;
    }
    chain.reverse();

    let mut schedule = Schedule::new(m);
    let mut frontiers = vec![0.0_f64; m];
    for p in chain {
        let machine = frontiers
            .iter()
            .position(|f| (f - p.replaced).abs() <= 1e-9 * f.abs().max(1.0))
            .expect("replaced frontier must match a machine");
        let job = jobs[p.job as usize];
        schedule
            .commit(job, MachineId(machine as u32), Time::new(p.start))
            .expect("reconstructed commitment must be feasible");
        frontiers[machine] = p.start + job.proc_time;
    }
    debug_assert!((schedule.accepted_load() - best.0).abs() < 1e-9 * best.0.max(1.0));

    ExactResult {
        load: best.0,
        mask: best.1,
        schedule,
    }
}

/// Parallel variant of [`max_load`]: a *pull-based* layer dynamic
/// program. Masks are processed by ascending popcount; every mask of
/// the current layer gathers its states from its `popcount` predecessor
/// masks (one cleared bit each), which all live in the previous,
/// finished layer — so the layer can be computed with rayon without any
/// synchronization on the table.
///
/// Results are identical to [`max_load`] up to tie-breaking inside
/// equal-load optima (the witness may differ; the load never does).
pub fn max_load_parallel(instance: &Instance) -> ExactResult {
    use rayon::prelude::*;

    let n = instance.len();
    assert!(
        n <= MAX_JOBS,
        "exact solver capped at {MAX_JOBS} jobs (got {n}); use the flow bound"
    );
    let m = instance.machines();
    if n == 0 {
        return ExactResult {
            load: 0.0,
            mask: 0,
            schedule: Schedule::new(m),
        };
    }
    let jobs = instance.jobs();
    let full = 1usize << n;
    let mut dp: Vec<Vec<State>> = vec![Vec::new(); full];
    dp[0].push(State {
        f: vec![0.0; m],
        parent: None,
    });

    // Masks grouped by popcount.
    let mut layers: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
    for mask in 1..full as u32 {
        layers[mask.count_ones() as usize].push(mask);
    }

    for layer in &layers[1..] {
        // Pull: each destination reads only finished layers.
        let computed: Vec<(u32, Vec<State>)> = layer
            .par_iter()
            .map(|&dest| {
                let mut states: Vec<State> = Vec::new();
                #[allow(clippy::needless_range_loop)] // j doubles as the mask bit
                for j in 0..n {
                    if dest & (1 << j) == 0 {
                        continue;
                    }
                    let src = (dest & !(1u32 << j)) as usize;
                    let job = &jobs[j];
                    for (sidx, state) in dp[src].iter().enumerate() {
                        let mut last = f64::NEG_INFINITY;
                        for i in 0..m {
                            let frontier = state.f[i];
                            if (frontier - last).abs() <= 1e-15 {
                                continue;
                            }
                            last = frontier;
                            let start = frontier.max(job.release.raw());
                            if start + job.proc_time <= job.deadline.raw() + 1e-12 {
                                let mut f = state.f.clone();
                                f[i] = start + job.proc_time;
                                f.sort_by(|a, b| a.total_cmp(b));
                                pareto_insert(
                                    &mut states,
                                    State {
                                        f,
                                        parent: Some(Parent {
                                            state: sidx as u32,
                                            job: j as u8,
                                            replaced: frontier,
                                            start,
                                        }),
                                    },
                                );
                            }
                        }
                    }
                }
                (dest, states)
            })
            .collect();
        for (dest, states) in computed {
            dp[dest as usize] = states;
        }
    }

    // Best reachable mask.
    let mut best = (0.0_f64, 0u32);
    for mask in 0..full as u32 {
        if dp[mask as usize].is_empty() {
            continue;
        }
        let load: f64 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| jobs[i].proc_time)
            .sum();
        if load > best.0 {
            best = (load, mask);
        }
    }

    // Reconstruct (parent.state indexes the *source mask's* state list,
    // which in pull-based order is dp[dest without parent.job]).
    let mut chain: Vec<Parent> = Vec::new();
    let mut mask = best.1;
    let mut sidx = 0usize;
    while let Some(p) = dp[mask as usize][sidx].parent {
        chain.push(p);
        mask &= !(1u32 << p.job);
        sidx = p.state as usize;
    }
    chain.reverse();
    let mut schedule = Schedule::new(m);
    let mut frontiers = vec![0.0_f64; m];
    for p in chain {
        let machine = frontiers
            .iter()
            .position(|f| (f - p.replaced).abs() <= 1e-9 * f.abs().max(1.0))
            .expect("replaced frontier must match a machine");
        let job = jobs[p.job as usize];
        schedule
            .commit(job, MachineId(machine as u32), Time::new(p.start))
            .expect("reconstructed commitment must be feasible");
        frontiers[machine] = p.start + job.proc_time;
    }
    ExactResult {
        load: best.0,
        mask: best.1,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::preemptive_load_bound;
    use cslack_kernel::{validate, InstanceBuilder};

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(2, 0.5).build().unwrap();
        let r = max_load(&inst);
        assert_eq!(r.load, 0.0);
        assert_eq!(r.mask, 0);
    }

    #[test]
    fn conflicting_jobs_pick_the_heavier() {
        // One machine, both jobs need [0, ~1]: only one fits; OPT takes
        // the big one.
        let inst = InstanceBuilder::new(1, 0.5)
            .tight_job(Time::ZERO, 1.0)
            .tight_job(Time::ZERO, 1.4)
            .build()
            .unwrap();
        let r = max_load(&inst);
        assert!((r.load - 1.4).abs() < 1e-12);
        assert_eq!(r.mask, 0b10);
        validate::assert_valid(&inst, &r.schedule);
    }

    #[test]
    fn optimal_requires_out_of_release_order_dispatch() {
        // j0 released first but must *wait* so the tight j1 can go first.
        let inst = InstanceBuilder::new(1, 0.5)
            .job(Time::ZERO, 3.0, Time::new(10.0))
            .job(Time::new(1.0), 1.0, Time::new(2.5))
            .build()
            .unwrap();
        let r = max_load(&inst);
        assert!((r.load - 4.0).abs() < 1e-12, "load={}", r.load);
        validate::assert_valid(&inst, &r.schedule);
        // Greedy (release order, best fit) only gets j0.
        assert!(crate::bounds::greedy_lower_bound(&inst) < 4.0);
    }

    #[test]
    fn two_machines_run_conflicts_in_parallel() {
        let inst = InstanceBuilder::new(2, 0.5)
            .tight_job(Time::ZERO, 1.0)
            .tight_job(Time::ZERO, 1.0)
            .tight_job(Time::ZERO, 1.0)
            .build()
            .unwrap();
        let r = max_load(&inst);
        assert!((r.load - 2.0).abs() < 1e-12);
        validate::assert_valid(&inst, &r.schedule);
    }

    #[test]
    fn stacking_within_deadlines_is_found() {
        // Two jobs both fit sequentially on one machine (d = 2 each...
        // second must wait): deadlines 2 and 2.5.
        let inst = InstanceBuilder::new(1, 0.5)
            .job(Time::ZERO, 1.0, Time::new(2.0))
            .job(Time::ZERO, 1.0, Time::new(2.5))
            .build()
            .unwrap();
        let r = max_load(&inst);
        assert!((r.load - 2.0).abs() < 1e-12);
    }

    /// Independent brute-force: try every subset, test feasibility by
    /// recursive dispatch search (any next job on any machine).
    fn brute_force(inst: &Instance) -> f64 {
        fn feasible(jobs: &[cslack_kernel::Job], remaining: u32, frontiers: &mut Vec<f64>) -> bool {
            if remaining == 0 {
                return true;
            }
            let n = jobs.len();
            for j in 0..n {
                if remaining & (1 << j) == 0 {
                    continue;
                }
                for i in 0..frontiers.len() {
                    let start = frontiers[i].max(jobs[j].release.raw());
                    if start + jobs[j].proc_time <= jobs[j].deadline.raw() + 1e-12 {
                        let saved = frontiers[i];
                        frontiers[i] = start + jobs[j].proc_time;
                        if feasible(jobs, remaining & !(1 << j), frontiers) {
                            frontiers[i] = saved;
                            return true;
                        }
                        frontiers[i] = saved;
                    }
                }
            }
            false
        }
        let n = inst.len();
        let mut best = 0.0_f64;
        for mask in 0..(1u32 << n) {
            let load: f64 = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| inst.jobs()[i].proc_time)
                .sum();
            if load > best {
                let mut fr = vec![0.0; inst.machines()];
                if feasible(inst.jobs(), mask, &mut fr) {
                    best = load;
                }
            }
        }
        best
    }

    #[test]
    fn matches_independent_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..25 {
            let m = rng.gen_range(1..=3);
            let n = rng.gen_range(1..=7);
            let eps = [0.1, 0.3, 0.7][rng.gen_range(0..3usize)];
            let mut b = InstanceBuilder::new(m, eps);
            for _ in 0..n {
                let r = rng.gen_range(0.0..3.0);
                let p = rng.gen_range(0.2..2.0);
                let slack: f64 = rng.gen_range(eps..1.5);
                b.push(Time::new(r), p, Time::new(r + (1.0 + slack) * p));
            }
            let inst = b.build().unwrap();
            let dp = max_load(&inst);
            let bf = brute_force(&inst);
            assert!(
                (dp.load - bf).abs() < 1e-9,
                "trial {trial}: dp={} bf={}",
                dp.load,
                bf
            );
            validate::assert_valid(&inst, &dp.schedule);
        }
    }

    #[test]
    fn exact_is_bounded_by_flow_relaxation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..15 {
            let m = rng.gen_range(1..=3);
            let n = rng.gen_range(2..=9);
            let mut b = InstanceBuilder::new(m, 0.25);
            for _ in 0..n {
                let r = rng.gen_range(0.0..2.0);
                let p = rng.gen_range(0.2..1.5);
                b.push_tight(Time::new(r), p);
            }
            let inst = b.build().unwrap();
            let exact = max_load(&inst).load;
            let flow = preemptive_load_bound(&inst);
            assert!(exact <= flow + 1e-9, "exact {exact} > flow {flow}");
        }
    }

    #[test]
    fn parallel_solver_matches_serial() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let m = rng.gen_range(1..=3);
            let n = rng.gen_range(1..=10);
            let mut b = InstanceBuilder::new(m, 0.2);
            for _ in 0..n {
                let r = rng.gen_range(0.0..3.0);
                let p = rng.gen_range(0.2..2.0);
                let slack: f64 = rng.gen_range(0.2..1.4);
                b.push(Time::new(r), p, Time::new(r + (1.0 + slack) * p));
            }
            let inst = b.build().unwrap();
            let serial = max_load(&inst);
            let parallel = max_load_parallel(&inst);
            assert!(
                (serial.load - parallel.load).abs() < 1e-9,
                "trial {trial}: serial {} vs parallel {}",
                serial.load,
                parallel.load
            );
            validate::assert_valid(&inst, &parallel.schedule);
            assert!(
                (parallel.schedule.accepted_load() - parallel.load).abs() < 1e-9,
                "trial {trial}: witness load mismatch"
            );
        }
    }

    #[test]
    fn parallel_solver_empty_instance() {
        let inst = InstanceBuilder::new(2, 0.5).build().unwrap();
        let r = max_load_parallel(&inst);
        assert_eq!(r.load, 0.0);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn job_cap_is_enforced() {
        let mut b = InstanceBuilder::new(1, 0.5);
        for i in 0..(MAX_JOBS + 1) {
            b.push_tight(Time::new(i as f64 * 10.0), 1.0);
        }
        let inst = b.build().unwrap();
        let _ = max_load(&inst);
    }
}
