//! The preemptive-with-migration relaxation as maximum flow.
//!
//! By Horn's theorem, a set of (released) jobs is feasible on `m`
//! preemptive machines with migration iff the natural flow network
//! saturates every job: source → job `j` (capacity `p_j`), job →
//! event-interval `I` (capacity `|I|` if `I ⊆ [r_j, d_j]`), interval →
//! sink (capacity `m * |I|`), where event intervals are the segments
//! between consecutive distinct release/deadline values.
//!
//! Dropping the "every job saturated" requirement, the **maximum-flow
//! value itself** is the largest total work any preemptive schedule can
//! execute within deadlines — which upper-bounds the non-preemptive
//! optimum `OPT` (any non-preemptive schedule of an accepted subset is a
//! feasible flow). [`preemptive_load_bound`] returns that value.
//!
//! The solver is a self-contained Dinic implementation (O(V²E), far
//! beyond sufficient for the experiment sizes).

use cslack_kernel::Instance;

/// A self-contained Dinic max-flow solver on f64 capacities.
#[derive(Clone, Debug)]
pub struct Dinic {
    /// Adjacency list: node -> edge indices.
    adj: Vec<Vec<usize>>,
    /// Edge targets.
    to: Vec<usize>,
    /// Residual capacities (edge `i` and its reverse `i ^ 1`).
    cap: Vec<f64>,
    /// Numerical floor below which residual capacity counts as zero.
    eps: f64,
}

impl Dinic {
    /// A network with `n` nodes and no edges.
    pub fn new(n: usize) -> Dinic {
        Dinic {
            adj: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            eps: 1e-12,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `u -> v` with the given capacity.
    pub fn add_edge(&mut self, u: usize, v: usize, capacity: f64) {
        assert!(capacity >= 0.0);
        let e = self.to.len();
        self.to.push(v);
        self.cap.push(capacity);
        self.adj[u].push(e);
        self.to.push(u);
        self.cap.push(0.0);
        self.adj[v].push(e + 1);
    }

    fn bfs(&self, s: usize, t: usize, level: &mut [i32]) -> bool {
        level.fill(-1);
        level[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u] {
                let v = self.to[e];
                if level[v] < 0 && self.cap[e] > self.eps {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: f64, level: &[i32], it: &mut [usize]) -> f64 {
        if u == t {
            return pushed;
        }
        while it[u] < self.adj[u].len() {
            let e = self.adj[u][it[u]];
            let v = self.to[e];
            if level[v] == level[u] + 1 && self.cap[e] > self.eps {
                let d = self.dfs(v, t, pushed.min(self.cap[e]), level, it);
                if d > self.eps {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0.0
    }

    /// Computes the maximum flow from `s` to `t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert_ne!(s, t);
        let n = self.nodes();
        let mut flow = 0.0;
        let mut level = vec![-1; n];
        while self.bfs(s, t, &mut level) {
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut it);
                if pushed <= self.eps {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// Flow currently routed through a *forward* edge (the `i`-th call
    /// to [`Dinic::add_edge`] created forward edge `2 i`). The reverse
    /// edge starts at capacity 0, so its residual equals the pushed
    /// flow.
    pub fn flow_on(&self, add_edge_index: usize) -> f64 {
        self.cap[2 * add_edge_index + 1]
    }
}

/// The maximum total work a preemptive (migration allowed) schedule can
/// execute within the deadlines — an upper bound on the non-preemptive
/// optimum load.
pub fn preemptive_load_bound(instance: &Instance) -> f64 {
    let n = instance.len();
    if n == 0 {
        return 0.0;
    }
    // Event points: all releases and (finite) deadlines.
    let mut events: Vec<f64> = Vec::with_capacity(2 * n);
    for j in instance.jobs() {
        events.push(j.release.raw());
        if j.deadline.raw().is_finite() {
            events.push(j.deadline.raw());
        } else {
            // Infinite-deadline jobs can always run after everything
            // else; cap their window at the finite horizon plus their
            // total volume (enough room to run all of them serially).
            let cap = instance.horizon().raw() + instance.total_load();
            events.push(cap);
        }
    }
    events.sort_by(|a, b| a.total_cmp(b));
    events.dedup_by(|a, b| (*a - *b).abs() <= 1e-12 * a.abs().max(1.0).max(b.abs()));
    let intervals: Vec<(f64, f64)> = events.windows(2).map(|w| (w[0], w[1])).collect();
    let k = intervals.len();

    // Nodes: 0 = source, 1..=n jobs, n+1..n+k intervals, n+k+1 = sink.
    let source = 0;
    let job_node = |j: usize| 1 + j;
    let iv_node = |i: usize| 1 + n + i;
    let sink = 1 + n + k;
    let mut net = Dinic::new(sink + 1);

    for (jidx, job) in instance.jobs().iter().enumerate() {
        net.add_edge(source, job_node(jidx), job.proc_time);
        let d = if job.deadline.raw().is_finite() {
            job.deadline.raw()
        } else {
            f64::INFINITY
        };
        for (i, &(a, b)) in intervals.iter().enumerate() {
            // Interval must lie inside [r_j, d_j] (tolerant inclusion).
            if a >= job.release.raw() - 1e-12 && b <= d + 1e-12 {
                net.add_edge(job_node(jidx), iv_node(i), b - a);
            }
        }
    }
    let m = instance.machines() as f64;
    for (i, &(a, b)) in intervals.iter().enumerate() {
        net.add_edge(iv_node(i), sink, m * (b - a));
    }
    net.max_flow(source, sink)
}

/// The same preemptive upper bound as [`preemptive_load_bound`], but
/// over raw `(release, proc_time, deadline)` triples. This is the entry
/// point for windowed quality tracking: the live observatory slices the
/// flight-recorded decision stream into release-time windows and has no
/// dense-JobId [`Instance`] at hand. Non-finite deadlines are capped at
/// the finite horizon plus the total load (room to run everything
/// serially), matching the instance path; jobs with non-positive or
/// non-finite processing time contribute nothing.
pub fn triples_load_bound(jobs: &[(f64, f64, f64)], m: usize) -> f64 {
    let jobs: Vec<(f64, f64, f64)> = jobs
        .iter()
        .copied()
        .filter(|&(r, p, _)| r.is_finite() && p.is_finite() && p > 0.0)
        .collect();
    let n = jobs.len();
    if n == 0 || m == 0 {
        return 0.0;
    }
    let total_load: f64 = jobs.iter().map(|&(_, p, _)| p).sum();
    let horizon = jobs
        .iter()
        .flat_map(|&(r, _, d)| [r, if d.is_finite() { d } else { r }])
        .fold(0.0f64, f64::max);
    let infinite_cap = horizon + total_load;
    let deadline_of = |d: f64| if d.is_finite() { d } else { infinite_cap };

    let mut events: Vec<f64> = Vec::with_capacity(2 * n);
    for &(r, _, d) in &jobs {
        events.push(r);
        events.push(deadline_of(d));
    }
    events.sort_by(|a, b| a.total_cmp(b));
    events.dedup_by(|a, b| (*a - *b).abs() <= 1e-12 * a.abs().max(1.0).max(b.abs()));
    let intervals: Vec<(f64, f64)> = events.windows(2).map(|w| (w[0], w[1])).collect();
    let k = intervals.len();

    let source = 0;
    let job_node = |j: usize| 1 + j;
    let iv_node = |i: usize| 1 + n + i;
    let sink = 1 + n + k;
    let mut net = Dinic::new(sink + 1);

    for (jidx, &(r, p, d)) in jobs.iter().enumerate() {
        net.add_edge(source, job_node(jidx), p);
        let d = deadline_of(d);
        for (i, &(a, b)) in intervals.iter().enumerate() {
            if a >= r - 1e-12 && b <= d + 1e-12 {
                net.add_edge(job_node(jidx), iv_node(i), b - a);
            }
        }
    }
    for (i, &(a, b)) in intervals.iter().enumerate() {
        net.add_edge(iv_node(i), sink, m as f64 * (b - a));
    }
    net.max_flow(source, sink)
}

/// The preemptive upper bound restricted to the jobs *released* in
/// `[start, end)` — the instance-slicing companion of
/// [`triples_load_bound`] for offline window-by-window audits: slicing
/// a whole instance by release windows and bounding each slice mirrors
/// exactly what the live observatory computes from the flight ring.
pub fn window_load_bound(instance: &Instance, start: f64, end: f64) -> f64 {
    let triples: Vec<(f64, f64, f64)> = instance
        .jobs()
        .iter()
        .filter(|j| j.release.raw() >= start && j.release.raw() < end)
        .map(|j| (j.release.raw(), j.proc_time, j.deadline.raw()))
        .collect();
    triples_load_bound(&triples, instance.machines())
}

/// A pending piece of work for the feasibility/planning API: remaining
/// processing time and absolute deadline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pending {
    /// Remaining work.
    pub remaining: f64,
    /// Absolute deadline.
    pub deadline: f64,
}

/// Per-interval work assignment produced by [`migration_plan`].
#[derive(Clone, Debug, PartialEq)]
pub struct IntervalAlloc {
    /// Interval start.
    pub start: f64,
    /// Interval end.
    pub end: f64,
    /// `(pending index, units of work inside the interval)`, only
    /// strictly positive entries.
    pub work: Vec<(usize, f64)>,
}

/// Horn feasibility for *released* work on `m` preemptive machines with
/// migration: can every pending item be fully served by its deadline
/// starting at `now`? Returns the plan on success, `None` otherwise.
///
/// The plan's intervals partition `[now, max deadline)` at the deadline
/// event points; within an interval no item receives more than the
/// interval length (no self-parallelism) and the total does not exceed
/// `m * length` — exactly what McNaughton's wrap-around rule needs to
/// realize it on physical machines.
pub fn migration_plan(pending: &[Pending], m: usize, now: f64) -> Option<Vec<IntervalAlloc>> {
    assert!(m >= 1);
    let total: f64 = pending.iter().map(|p| p.remaining).sum();
    if pending.is_empty() || total <= 0.0 {
        return Some(Vec::new());
    }
    // Quick necessary check: every deadline in the future.
    for p in pending {
        if p.remaining > 0.0 && p.deadline < now - 1e-12 {
            return None;
        }
    }
    let mut events: Vec<f64> = pending
        .iter()
        .filter(|p| p.remaining > 0.0)
        .map(|p| p.deadline)
        .collect();
    events.push(now);
    events.sort_by(|a, b| a.total_cmp(b));
    events.dedup_by(|a, b| (*a - *b).abs() <= 1e-12 * a.abs().max(1.0).max(b.abs()));
    let intervals: Vec<(f64, f64)> = events
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|(a, b)| b > a)
        .collect();
    let k = intervals.len();
    if k == 0 {
        return None; // positive work, no room
    }

    let n = pending.len();
    let source = 0;
    let job_node = |j: usize| 1 + j;
    let iv_node = |i: usize| 1 + n + i;
    let sink = 1 + n + k;
    let mut net = Dinic::new(sink + 1);
    // Track add_edge indices of job->interval edges for extraction.
    let mut edge_of: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (interval, edge idx)
    let mut n_edges = 0usize;
    let mut add = |net: &mut Dinic, u: usize, v: usize, c: f64| {
        net.add_edge(u, v, c);
        n_edges += 1;
        n_edges - 1
    };
    for (j, p) in pending.iter().enumerate() {
        if p.remaining <= 0.0 {
            continue;
        }
        add(&mut net, source, job_node(j), p.remaining);
        for (i, &(a, b)) in intervals.iter().enumerate() {
            if b <= p.deadline + 1e-12 && a >= now - 1e-12 {
                let e = add(&mut net, job_node(j), iv_node(i), b - a);
                edge_of[j].push((i, e));
            }
        }
    }
    for (i, &(a, b)) in intervals.iter().enumerate() {
        add(&mut net, iv_node(i), sink, m as f64 * (b - a));
    }
    let flow = net.max_flow(source, sink);
    if flow + 1e-9 * total.max(1.0) < total {
        return None;
    }
    let mut plan: Vec<IntervalAlloc> = intervals
        .iter()
        .map(|&(start, end)| IntervalAlloc {
            start,
            end,
            work: Vec::new(),
        })
        .collect();
    for (j, edges) in edge_of.iter().enumerate() {
        for &(i, e) in edges {
            let f = net.flow_on(e);
            if f > 1e-12 {
                plan[i].work.push((j, f));
            }
        }
    }
    Some(plan)
}

/// Pure feasibility variant of [`migration_plan`].
pub fn migration_feasible(pending: &[Pending], m: usize, now: f64) -> bool {
    migration_plan(pending, m, now).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::{InstanceBuilder, Time};

    #[test]
    fn dinic_textbook_network() {
        // Classic 4-node diamond: max flow 2.
        let mut net = Dinic::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        net.add_edge(1, 2, 1.0); // cross edge changes nothing
        assert!((net.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dinic_bottleneck() {
        let mut net = Dinic::new(3);
        net.add_edge(0, 1, 10.0);
        net.add_edge(1, 2, 3.5);
        assert!((net.max_flow(0, 2) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn dinic_disconnected_is_zero() {
        let mut net = Dinic::new(4);
        net.add_edge(0, 1, 5.0);
        net.add_edge(2, 3, 5.0);
        assert_eq!(net.max_flow(0, 3), 0.0);
    }

    #[test]
    fn single_feasible_job_is_fully_counted() {
        let inst = InstanceBuilder::new(1, 0.5)
            .job(Time::ZERO, 2.0, Time::new(3.0))
            .build()
            .unwrap();
        assert!((preemptive_load_bound(&inst) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overloaded_window_is_capped_by_capacity() {
        // Three unit jobs, all in [0, 1.5], one machine: at most 1.5.
        let mut b = InstanceBuilder::new(1, 0.5);
        for _ in 0..3 {
            b.push_tight(Time::ZERO, 1.0);
        }
        let inst = b.build().unwrap();
        assert!((preemptive_load_bound(&inst) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn multiple_machines_multiply_capacity() {
        let mut b = InstanceBuilder::new(2, 0.5);
        for _ in 0..3 {
            b.push_tight(Time::ZERO, 1.0);
        }
        let inst = b.build().unwrap();
        // Two machines, window [0, 1.5]: all three jobs fit preemptively
        // (each needs 1 unit in a 1.5 window; total 3 <= 2 * 1.5, and
        // per-job windows allow it).
        assert!((preemptive_load_bound(&inst) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn preemption_bound_dominates_nonpreemptive_reality() {
        // Non-preemptively one machine can run only one of these two
        // (each needs the middle of the window); preemptively both fit
        // partially: bound must be >= any non-preemptive schedule.
        let inst = InstanceBuilder::new(1, 0.5)
            .job(Time::ZERO, 2.0, Time::new(3.0))
            .job(Time::new(1.0), 1.0, Time::new(2.5))
            .build()
            .unwrap();
        let bound = preemptive_load_bound(&inst);
        assert!(bound >= 2.0 - 1e-9);
        assert!(bound <= 3.0 + 1e-9);
        // Exact: intervals allow all 3 units? Window [0,3] has capacity 3,
        // job 2 confined to [1, 2.5]: both saturate => bound = 3.
        assert!((bound - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_windows_sum_up() {
        let inst = InstanceBuilder::new(1, 1.0)
            .job(Time::ZERO, 1.0, Time::new(2.0))
            .job(Time::new(5.0), 1.0, Time::new(7.0))
            .build()
            .unwrap();
        assert!((preemptive_load_bound(&inst) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn migration_plan_single_item() {
        let plan = migration_plan(
            &[Pending {
                remaining: 2.0,
                deadline: 3.0,
            }],
            1,
            0.0,
        )
        .expect("feasible");
        let total: f64 = plan.iter().flat_map(|iv| iv.work.iter().map(|w| w.1)).sum();
        assert!((total - 2.0).abs() < 1e-9);
        // No interval gives the item more time than its length.
        for iv in &plan {
            for &(_, units) in &iv.work {
                assert!(units <= iv.end - iv.start + 1e-9);
            }
        }
    }

    #[test]
    fn migration_plan_infeasible_overload() {
        // Three units of work by deadline 2 on one machine.
        let pending = vec![
            Pending {
                remaining: 1.5,
                deadline: 2.0,
            },
            Pending {
                remaining: 1.5,
                deadline: 2.0,
            },
        ];
        assert!(migration_plan(&pending, 1, 0.0).is_none());
        // ... but feasible on two machines.
        assert!(migration_plan(&pending, 2, 0.0).is_some());
    }

    #[test]
    fn migration_plan_needs_migration_to_fit() {
        // Classic: 3 items of 2 units, deadline 3, on 2 machines: total
        // 6 = 2 * 3 exactly; only a migrating schedule fits.
        let pending = vec![
            Pending {
                remaining: 2.0,
                deadline: 3.0
            };
            3
        ];
        let plan = migration_plan(&pending, 2, 0.0).expect("feasible with migration");
        let total: f64 = plan.iter().flat_map(|iv| iv.work.iter().map(|w| w.1)).sum();
        assert!((total - 6.0).abs() < 1e-9);
    }

    #[test]
    fn migration_plan_respects_now() {
        let p = [Pending {
            remaining: 1.0,
            deadline: 2.0,
        }];
        assert!(migration_feasible(&p, 1, 1.0));
        assert!(!migration_feasible(&p, 1, 1.5));
        assert!(!migration_feasible(&p, 1, 3.0), "deadline in the past");
    }

    #[test]
    fn migration_plan_empty_and_zero_work() {
        assert_eq!(migration_plan(&[], 2, 5.0), Some(Vec::new()));
        let zero = [Pending {
            remaining: 0.0,
            deadline: 0.5,
        }];
        assert_eq!(migration_plan(&zero, 1, 5.0), Some(Vec::new()));
    }

    #[test]
    fn flow_on_reports_pushed_flow() {
        let mut net = Dinic::new(3);
        net.add_edge(0, 1, 5.0); // edge 0
        net.add_edge(1, 2, 3.0); // edge 1
        let f = net.max_flow(0, 2);
        assert!((f - 3.0).abs() < 1e-9);
        assert!((net.flow_on(0) - 3.0).abs() < 1e-9);
        assert!((net.flow_on(1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn triples_bound_matches_instance_bound() {
        let mut b = InstanceBuilder::new(2, 0.5);
        b.push(Time::ZERO, 2.0, Time::new(3.0));
        b.push(Time::new(1.0), 1.0, Time::new(2.5));
        b.push(Time::new(0.5), 4.0, Time::new(9.0));
        b.push_tight(Time::new(2.0), 1.5);
        let inst = b.build().unwrap();
        let triples: Vec<(f64, f64, f64)> = inst
            .jobs()
            .iter()
            .map(|j| (j.release.raw(), j.proc_time, j.deadline.raw()))
            .collect();
        let direct = preemptive_load_bound(&inst);
        let via_triples = triples_load_bound(&triples, inst.machines());
        assert!(
            (direct - via_triples).abs() < 1e-9,
            "{direct} != {via_triples}"
        );
    }

    #[test]
    fn triples_bound_ignores_degenerate_jobs() {
        assert_eq!(triples_load_bound(&[], 4), 0.0);
        assert_eq!(triples_load_bound(&[(0.0, 1.0, 2.0)], 0), 0.0);
        let clean = triples_load_bound(&[(0.0, 1.0, 2.0)], 1);
        let noisy = triples_load_bound(
            &[
                (0.0, 1.0, 2.0),
                (0.0, 0.0, 5.0),
                (f64::NAN, 1.0, 2.0),
                (0.0, f64::INFINITY, 9.0),
            ],
            1,
        );
        assert!((clean - noisy).abs() < 1e-9);
        assert!((clean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn triples_bound_caps_infinite_deadlines() {
        let bound = triples_load_bound(&[(0.0, 1.0, f64::INFINITY), (0.0, 1.0, 1.5)], 1);
        assert!((bound - 2.0).abs() < 1e-9, "bound={bound}");
    }

    #[test]
    fn window_slices_partition_the_bound_for_disjoint_windows() {
        // Two release clusters with non-overlapping execution windows:
        // slicing by release window recovers each cluster's bound, and
        // the slices sum to the whole-instance bound.
        let inst = InstanceBuilder::new(1, 1.0)
            .job(Time::ZERO, 1.0, Time::new(2.0))
            .job(Time::new(0.5), 1.0, Time::new(2.5))
            .job(Time::new(5.0), 1.0, Time::new(7.0))
            .build()
            .unwrap();
        let w0 = window_load_bound(&inst, 0.0, 4.0);
        let w1 = window_load_bound(&inst, 4.0, 8.0);
        assert!((w0 - 2.0).abs() < 1e-9, "w0={w0}");
        assert!((w1 - 1.0).abs() < 1e-9, "w1={w1}");
        assert!((w0 + w1 - preemptive_load_bound(&inst)).abs() < 1e-9);
        // An empty slice bounds nothing.
        assert_eq!(window_load_bound(&inst, 10.0, 20.0), 0.0);
    }

    #[test]
    fn infinite_deadline_jobs_do_not_break_the_network() {
        let inst = InstanceBuilder::new(1, 0.5)
            .job(Time::ZERO, 1.0, Time::new(f64::INFINITY))
            .job(Time::ZERO, 1.0, Time::new(1.5))
            .build()
            .unwrap();
        let bound = preemptive_load_bound(&inst);
        assert!((bound - 2.0).abs() < 1e-9, "bound={bound}");
    }
}
