//! # cslack-opt
//!
//! Offline optimal solvers and upper bounds for
//! `Pm | r_j, d_j | max sum p_j (1 - U_j)` — the denominator of every
//! measured competitive ratio in the experiments.
//!
//! Offline non-preemptive load maximization is NP-hard, so the crate
//! provides a ladder of estimates:
//!
//! * [`exact`] — an exact subset dynamic program over job masks with
//!   Pareto-pruned machine-frontier vectors; practical to ~20 jobs.
//! * [`flow`] — the preemptive-with-migration relaxation as a max-flow
//!   problem (Horn's theorem), solved with Dinic: its value is a valid
//!   upper bound on the non-preemptive optimum and scales to thousands
//!   of jobs.
//! * [`bounds`] — cheap capacity bounds (total volume, machine-time
//!   capacity) and an internal greedy lower bound.
//! * [`OptEstimate`] / [`estimate`] — the combined report.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod exact;
pub mod flow;

use cslack_kernel::Instance;

/// Combined offline estimate for one instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptEstimate {
    /// A certified lower bound on OPT (load of a concrete feasible
    /// schedule found offline).
    pub lower: f64,
    /// A certified upper bound on OPT (minimum over the relaxations).
    pub upper: f64,
    /// The exact optimum, when the instance was small enough to solve.
    pub exact: Option<f64>,
}

impl OptEstimate {
    /// The best available value to use as the ratio denominator: the
    /// exact optimum if known, otherwise the upper bound (which makes
    /// measured ratios conservative, i.e. never understated... never
    /// overstated for the *algorithm*: `OPT/ALG <= upper/ALG`).
    pub fn denominator(&self) -> f64 {
        self.exact.unwrap_or(self.upper)
    }

    /// Pessimistic ratio of an online load against this estimate
    /// (uses the upper bound, so the true competitive ratio is at most
    /// this).
    pub fn ratio_upper(&self, online_load: f64) -> f64 {
        if online_load <= 0.0 {
            f64::INFINITY
        } else {
            self.upper / online_load
        }
    }

    /// Optimistic ratio (uses the certified lower bound; the true
    /// competitive ratio is at least this).
    pub fn ratio_lower(&self, online_load: f64) -> f64 {
        if online_load <= 0.0 {
            f64::INFINITY
        } else {
            self.lower / online_load
        }
    }
}

/// Default job-count threshold below which [`estimate`] runs the exact
/// solver.
pub const EXACT_DEFAULT_LIMIT: usize = 16;

/// Produces the combined offline estimate, running the exact solver when
/// `instance.len() <= exact_limit`.
///
/// ```
/// use cslack_kernel::{InstanceBuilder, Time};
///
/// // Three conflicting tight unit jobs on two machines: OPT = 2.
/// let inst = InstanceBuilder::new(2, 0.5)
///     .tight_job(Time::ZERO, 1.0)
///     .tight_job(Time::ZERO, 1.0)
///     .tight_job(Time::ZERO, 1.0)
///     .build()
///     .unwrap();
/// let est = cslack_opt::estimate(&inst, 16);
/// assert_eq!(est.exact, Some(2.0));
/// ```
pub fn estimate(instance: &Instance, exact_limit: usize) -> OptEstimate {
    let greedy = bounds::greedy_lower_bound(instance);
    let cap = bounds::capacity_upper_bound(instance);
    let flow_ub = flow::preemptive_load_bound(instance);
    let upper = cap.min(flow_ub).min(instance.total_load());
    if instance.len() <= exact_limit {
        let exact = exact::max_load(instance);
        debug_assert!(
            exact.load <= upper + 1e-6 * upper.max(1.0),
            "exact optimum {} exceeds relaxation bound {}",
            exact.load,
            upper
        );
        OptEstimate {
            lower: exact.load,
            upper: exact.load,
            exact: Some(exact.load),
        }
    } else {
        OptEstimate {
            lower: greedy,
            upper,
            exact: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::{InstanceBuilder, Time};

    #[test]
    fn estimate_orders_lower_exact_upper() {
        let inst = InstanceBuilder::new(2, 0.5)
            .tight_job(Time::ZERO, 1.0)
            .tight_job(Time::ZERO, 1.0)
            .tight_job(Time::ZERO, 1.0)
            .job(Time::ZERO, 2.0, Time::new(10.0))
            .build()
            .unwrap();
        let est = estimate(&inst, 16);
        let exact = est.exact.unwrap();
        assert!(est.lower <= exact + 1e-9);
        assert!(exact <= est.upper + 1e-9);
        assert!(est.denominator() == exact);
    }

    #[test]
    fn large_instances_skip_exact() {
        let mut b = InstanceBuilder::new(2, 0.5);
        for i in 0..30 {
            b.push_tight(Time::new(i as f64), 1.0);
        }
        let inst = b.build().unwrap();
        let est = estimate(&inst, 16);
        assert!(est.exact.is_none());
        assert!(est.lower <= est.upper + 1e-9);
        assert!(est.lower > 0.0);
    }

    #[test]
    fn ratio_helpers() {
        let est = OptEstimate {
            lower: 8.0,
            upper: 10.0,
            exact: None,
        };
        assert_eq!(est.ratio_upper(5.0), 2.0);
        assert_eq!(est.ratio_lower(4.0), 2.0);
        assert_eq!(est.ratio_upper(0.0), f64::INFINITY);
        assert_eq!(est.denominator(), 10.0);
    }
}
