//! Cheap offline bounds: capacity upper bounds and a greedy lower bound.

use cslack_kernel::{Instance, MachineId, Schedule, Time};

/// Machine-time capacity bound: no schedule can execute more than
/// `m * (t2 - t1)` work inside `[t1, t2)`, where every job's execution
/// window `[r_j, d_j)` is contained in the hull `[min r, max d)`.
///
/// Refinement: the bound is evaluated over every *event interval hull*
/// `[r_i, d_j]` pair restricted to jobs fully inside it, and the tightest
/// combination is a cover; computing the optimal cover is itself LP-ish,
/// so this function returns the simple single-hull bound
/// `min(total, m * (max d - min r))` plus the per-job truncation
/// `sum_j min(p_j, ...)` — adequate as a sanity ceiling (the flow bound
/// in [`crate::flow`] strictly dominates it and is the one reported).
pub fn capacity_upper_bound(instance: &Instance) -> f64 {
    if instance.is_empty() {
        return 0.0;
    }
    let min_r = instance
        .jobs()
        .iter()
        .map(|j| j.release)
        .min()
        .unwrap_or(Time::ZERO);
    let max_d = instance.horizon();
    let hull = (max_d - min_r).max(0.0);
    (instance.machines() as f64 * hull).min(instance.total_load())
}

/// A certified lower bound: the load of a concrete feasible schedule
/// built by offline best-fit in release order (identical rule to the
/// online greedy; offline it is merely a heuristic).
pub fn greedy_lower_bound(instance: &Instance) -> f64 {
    greedy_schedule(instance).accepted_load()
}

/// The schedule behind [`greedy_lower_bound`] (useful for debugging).
pub fn greedy_schedule(instance: &Instance) -> Schedule {
    let m = instance.machines();
    let mut schedule = Schedule::new(m);
    let mut frontiers = vec![Time::ZERO; m];
    for job in instance.jobs() {
        // Most loaded machine (latest frontier) that still fits.
        let mut best: Option<(usize, Time)> = None;
        for (i, &f) in frontiers.iter().enumerate() {
            let start = f.max(job.release);
            if (start + job.proc_time).approx_le(job.deadline) {
                let better = match best {
                    None => true,
                    Some((_, bf)) => f > bf,
                };
                if better {
                    best = Some((i, start));
                }
            }
        }
        if let Some((i, start)) = best {
            schedule
                .commit(*job, MachineId(i as u32), start)
                .expect("greedy commit is feasible by construction");
            frontiers[i] = start + job.proc_time;
        }
    }
    schedule
}

/// EDF-dispatch schedule builder for a candidate accept-set: sorts the
/// set by deadline, assigns each job to the least-loaded machine at
/// `start = max(frontier, r_j)`, and fails if any deadline is missed.
/// Sound (any schedule it returns is feasible) but not complete — good
/// enough as a local-search feasibility oracle.
fn edf_dispatch(instance: &Instance, set: &[usize]) -> Option<Schedule> {
    let m = instance.machines();
    let mut order: Vec<usize> = set.to_vec();
    order.sort_by(|&a, &b| {
        instance.jobs()[a]
            .deadline
            .cmp(&instance.jobs()[b].deadline)
    });
    let mut schedule = Schedule::new(m);
    let mut frontiers = vec![Time::ZERO; m];
    for idx in order {
        let job = instance.jobs()[idx];
        let (mi, _) = frontiers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cmp(b.1))
            .expect("m >= 1");
        let start = frontiers[mi].max(job.release);
        if !(start + job.proc_time).approx_le(job.deadline) {
            return None;
        }
        schedule
            .commit(job, MachineId(mi as u32), start)
            .expect("EDF dispatch is feasible by construction");
        frontiers[mi] = start + job.proc_time;
    }
    Some(schedule)
}

/// Local-search improvement over the greedy lower bound: starting from
/// greedy's accept-set, repeatedly (a) add rejected jobs that still fit
/// and (b) swap one accepted job for a strictly heavier rejected one,
/// using EDF dispatch as the feasibility oracle. Returns a certified
/// feasible schedule whose load is `>=` the greedy bound.
///
/// `max_rounds` caps the improvement sweeps (each round is
/// `O(n_rejected * n_accepted * n log n)` in the worst case).
pub fn local_search_schedule(instance: &Instance, max_rounds: usize) -> Schedule {
    let greedy = greedy_schedule(instance);
    let mut accepted: Vec<usize> = instance
        .jobs()
        .iter()
        .enumerate()
        .filter(|(_, j)| greedy.contains(j.id))
        .map(|(i, _)| i)
        .collect();
    // Best known schedule for the current set (EDF re-dispatch can fail
    // on greedy's set even though greedy's own schedule is feasible, so
    // keep greedy's as the fallback witness).
    let mut best = match edf_dispatch(instance, &accepted) {
        Some(s) if s.accepted_load() >= greedy.accepted_load() => s,
        _ => greedy,
    };

    for _ in 0..max_rounds {
        let mut improved = false;
        let rejected: Vec<usize> = (0..instance.len())
            .filter(|i| !accepted.contains(i))
            .collect();
        // (a) Pure additions, heaviest first.
        let mut adds = rejected.clone();
        adds.sort_by(|&a, &b| {
            instance.jobs()[b]
                .proc_time
                .total_cmp(&instance.jobs()[a].proc_time)
        });
        for r in adds {
            let mut trial = accepted.clone();
            trial.push(r);
            if let Some(s) = edf_dispatch(instance, &trial) {
                accepted = trial;
                best = s;
                improved = true;
            }
        }
        // (b) 1-for-1 swaps that strictly increase load.
        let rejected: Vec<usize> = (0..instance.len())
            .filter(|i| !accepted.contains(i))
            .collect();
        'swap: for &r in &rejected {
            let pr = instance.jobs()[r].proc_time;
            for pos in 0..accepted.len() {
                let a = accepted[pos];
                if instance.jobs()[a].proc_time >= pr {
                    continue;
                }
                let mut trial = accepted.clone();
                trial[pos] = r;
                if let Some(s) = edf_dispatch(instance, &trial) {
                    accepted = trial;
                    best = s;
                    improved = true;
                    continue 'swap;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

/// The load of [`local_search_schedule`].
pub fn local_search_lower_bound(instance: &Instance, max_rounds: usize) -> f64 {
    local_search_schedule(instance, max_rounds).accepted_load()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::InstanceBuilder;

    #[test]
    fn capacity_bound_is_volume_for_loose_horizon() {
        // Jobs with huge deadlines: total volume is the binding bound.
        let inst = InstanceBuilder::new(1, 0.5)
            .job(Time::ZERO, 1.0, Time::new(100.0))
            .job(Time::ZERO, 2.0, Time::new(100.0))
            .build()
            .unwrap();
        assert_eq!(capacity_upper_bound(&inst), 3.0);
    }

    #[test]
    fn capacity_bound_is_hull_for_dense_instances() {
        // 10 unit jobs in a hull of length 1.5 on one machine.
        let mut b = InstanceBuilder::new(1, 0.5);
        for _ in 0..10 {
            b.push_tight(Time::ZERO, 1.0);
        }
        let inst = b.build().unwrap();
        assert_eq!(capacity_upper_bound(&inst), 1.5);
    }

    #[test]
    fn greedy_schedule_is_valid_and_nonempty() {
        let inst = InstanceBuilder::new(2, 0.5)
            .tight_job(Time::ZERO, 1.0)
            .tight_job(Time::ZERO, 1.0)
            .tight_job(Time::ZERO, 1.0)
            .build()
            .unwrap();
        let s = greedy_schedule(&inst);
        cslack_kernel::validate::assert_valid(&inst, &s);
        // Two fit (one per machine), the third tight job cannot wait.
        assert_eq!(s.len(), 2);
        assert_eq!(greedy_lower_bound(&inst), 2.0);
    }

    #[test]
    fn empty_instance_bounds() {
        let inst = InstanceBuilder::new(2, 0.5).build().unwrap();
        assert_eq!(capacity_upper_bound(&inst), 0.0);
        assert_eq!(greedy_lower_bound(&inst), 0.0);
        assert_eq!(local_search_lower_bound(&inst, 4), 0.0);
    }

    #[test]
    fn local_search_recovers_the_out_of_order_optimum() {
        // Greedy (release order) takes only the long job; reordering
        // admits both.
        let inst = InstanceBuilder::new(1, 0.5)
            .job(Time::ZERO, 3.0, Time::new(10.0))
            .job(Time::new(1.0), 1.0, Time::new(2.5))
            .build()
            .unwrap();
        assert_eq!(greedy_lower_bound(&inst), 3.0);
        let s = local_search_schedule(&inst, 4);
        cslack_kernel::validate::assert_valid(&inst, &s);
        assert!((s.accepted_load() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn local_search_swaps_small_for_large() {
        // Greedy grabs the small tight job; the later large one pays
        // more but conflicts — a swap wins.
        let inst = InstanceBuilder::new(1, 0.2)
            .tight_job(Time::ZERO, 1.0)
            .job(Time::new(0.1), 2.0, Time::new(2.9))
            .build()
            .unwrap();
        assert_eq!(greedy_lower_bound(&inst), 1.0);
        let s = local_search_schedule(&inst, 4);
        assert!((s.accepted_load() - 2.0).abs() < 1e-9);
        cslack_kernel::validate::assert_valid(&inst, &s);
    }

    #[test]
    fn local_search_never_below_greedy_on_random_loads() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let m = rng.gen_range(1..=3);
            let n = rng.gen_range(2..=20);
            let mut b = InstanceBuilder::new(m, 0.2);
            for _ in 0..n {
                let r = rng.gen_range(0.0..4.0);
                let p = rng.gen_range(0.2..2.0);
                let extra: f64 = rng.gen_range(0.0..1.0);
                b.push(Time::new(r), p, Time::new(r + (1.2 + extra) * p));
            }
            let inst = b.build().unwrap();
            let g = greedy_lower_bound(&inst);
            let ls = local_search_lower_bound(&inst, 3);
            assert!(ls >= g - 1e-9, "local search {ls} below greedy {g}");
            // And never above the exact optimum (soundness).
            if inst.len() <= 16 {
                let exact = crate::exact::max_load(&inst).load;
                assert!(ls <= exact + 1e-9, "local search {ls} above OPT {exact}");
            }
        }
    }
}
