//! Property tests for workload generation: every law combination yields
//! legal instances, deterministically.

use cslack_workloads::{trace, ArrivalLaw, SizeLaw, SlackLaw, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..=6,
        0.02f64..=1.0,
        0usize..=80,
        any::<u64>(),
        prop_oneof![
            Just(ArrivalLaw::Simultaneous),
            (0.1f64..5.0).prop_map(|rate| ArrivalLaw::Poisson { rate }),
            (1usize..6, 0.1f64..3.0).prop_map(|(burst, rate)| ArrivalLaw::Bursty { burst, rate }),
        ],
        prop_oneof![
            (0.1f64..5.0).prop_map(SizeLaw::Constant),
            (0.1f64..1.0, 1.0f64..8.0).prop_map(|(lo, hi)| SizeLaw::Uniform { lo, hi }),
            (0.5f64..2.5, 0.1f64..1.0, 2.0f64..50.0)
                .prop_map(|(alpha, lo, hi)| SizeLaw::BoundedPareto { alpha, lo, hi }),
            (0.0f64..=1.0, 0.1f64..1.0, 2.0f64..9.0).prop_map(|(p_small, small, large)| {
                SizeLaw::Bimodal {
                    p_small,
                    small,
                    large,
                }
            }),
        ],
        prop_oneof![
            Just(SlackLaw::Tight),
            (1.0f64..4.0).prop_map(|max| SlackLaw::UniformIn { max }),
            (0.0f64..4.0).prop_map(|factor| SlackLaw::Generous { factor }),
        ],
    )
        .prop_map(|(m, eps, n, seed, arrivals, sizes, slack)| WorkloadSpec {
            m,
            eps,
            n,
            arrivals,
            sizes,
            slack,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every generated instance is legal: correct count, sorted
    /// releases, positive sizes, slack condition everywhere.
    #[test]
    fn generated_instances_are_legal(spec in arb_spec()) {
        let inst = spec.generate().unwrap();
        prop_assert_eq!(inst.len(), spec.n);
        prop_assert_eq!(inst.machines(), spec.m);
        for w in inst.jobs().windows(2) {
            prop_assert!(w[0].release <= w[1].release);
        }
        for j in inst.jobs() {
            prop_assert!(j.proc_time > 0.0);
            prop_assert!(j.satisfies_slack(spec.eps), "slack violated: {j:?}");
        }
    }

    /// Generation is a pure function of the spec.
    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        prop_assert_eq!(spec.generate().unwrap(), spec.generate().unwrap());
    }

    /// Trace round trip preserves the instance bit for bit.
    #[test]
    fn trace_round_trip_is_exact(spec in arb_spec()) {
        let inst = spec.generate().unwrap();
        let s = trace::to_string(&inst).unwrap();
        prop_assert_eq!(trace::from_string(&s).unwrap(), inst);
    }

    /// Spec JSON round trip regenerates the identical instance.
    #[test]
    fn spec_round_trip_regenerates(spec in arb_spec()) {
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.generate().unwrap(), spec.generate().unwrap());
    }
}
