//! Named workload presets used across the experiment binaries.

use crate::{ArrivalLaw, SizeLaw, SlackLaw, WorkloadSpec};
use cslack_kernel::{Instance, InstanceBuilder, Time};

/// An IaaS-style service-level mix: a majority of small time-sensitive
/// (tight-slack) interactive jobs interleaved with fewer large batch
/// jobs that have generous deadlines — the motivating workload of the
/// paper's introduction.
///
/// Implemented as a merge of two sub-streams; the merged instance keeps
/// the system slack `eps` (interactive jobs are tight, batch jobs have
/// per-job slack `4 eps`).
pub fn iaas_mix(m: usize, eps: f64, n: usize, seed: u64) -> Instance {
    let interactive = WorkloadSpec {
        m,
        eps,
        n: (n * 3) / 4,
        arrivals: ArrivalLaw::Poisson {
            rate: 2.0 * m as f64,
        },
        sizes: SizeLaw::Uniform { lo: 0.1, hi: 0.5 },
        slack: SlackLaw::Tight,
        seed,
    }
    .generate()
    .expect("interactive stream");
    let batch = WorkloadSpec {
        m,
        eps,
        n: n - (n * 3) / 4,
        arrivals: ArrivalLaw::Poisson {
            rate: 0.5 * m as f64,
        },
        sizes: SizeLaw::BoundedPareto {
            alpha: 1.5,
            lo: 1.0,
            hi: 20.0,
        },
        slack: SlackLaw::Generous { factor: 4.0 * eps },
        seed: seed ^ 0x9e37_79b9_7f4a_7c15,
    }
    .generate()
    .expect("batch stream");
    merge(m, eps, &interactive, &batch)
}

/// A flood of identical small tight jobs followed by a few huge tight
/// jobs — the pattern behind the greedy lower bound (small jobs poison
/// the machines, then the valuable work arrives).
pub fn small_job_flood(m: usize, eps: f64, seed: u64) -> Instance {
    let flood = WorkloadSpec {
        m,
        eps,
        n: 4 * m,
        arrivals: ArrivalLaw::Simultaneous,
        sizes: SizeLaw::Constant(1.0),
        slack: SlackLaw::Tight,
        seed,
    }
    .generate()
    .expect("flood");
    // Big jobs arrive just after the flood (slightly positive release so
    // the decisions on the flood are already made).
    let mut b = InstanceBuilder::with_capacity(m, eps, flood.len() + m);
    for j in flood.jobs() {
        b.push(j.release, j.proc_time, j.deadline);
    }
    let big = 0.9 / eps;
    for _ in 0..m {
        b.push_tight(Time::new(1e-6), big);
    }
    b.build().expect("flood + big jobs")
}

/// A bursty heavy-tail stream: batches of Pareto-sized jobs with mixed
/// urgency, the stress scenario for threshold admission.
pub fn bursty_heavy_tail(m: usize, eps: f64, n: usize, seed: u64) -> Instance {
    WorkloadSpec {
        m,
        eps,
        n,
        arrivals: ArrivalLaw::Bursty {
            burst: 2 * m,
            rate: 0.5,
        },
        sizes: SizeLaw::BoundedPareto {
            alpha: 1.2,
            lo: 0.2,
            hi: 10.0,
        },
        slack: SlackLaw::UniformIn { max: 1.0 },
        seed,
    }
    .generate()
    .expect("bursty stream")
}

/// A diurnal stream: a nonhomogeneous Poisson process whose rate swings
/// sinusoidally between `0.2 * peak` and `peak` over a period of
/// `day` time units (thinning construction), with uniform job sizes and
/// mixed urgency — the 24h load curve of a real cluster, miniaturized.
pub fn diurnal(m: usize, eps: f64, n: usize, day: f64, seed: u64) -> Instance {
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed ^ 0xd1f2_a3b4_c5d6_e7f8);
    let peak = 2.0 * m as f64;
    let mut b = InstanceBuilder::with_capacity(m, eps, n);
    let mut t = 0.0_f64;
    while b.len() < n {
        // Thinning: candidate arrivals at the peak rate, accepted with
        // probability rate(t)/peak.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / peak;
        let phase = (t / day) * std::f64::consts::TAU;
        let rate_frac = 0.6 + 0.4 * phase.sin(); // in [0.2, 1.0]
        if rng.gen_range(0.0..1.0) <= rate_frac {
            let p = rng.gen_range(0.2..2.0);
            let slack = rng.gen_range(eps..(2.0 * eps + 0.5));
            b.push(Time::new(t), p, Time::new(t + (1.0 + slack) * p));
        }
    }
    b.build().expect("diurnal stream")
}

/// A tiny deterministic smoke-test instance (no randomness), used in
/// examples and doc tests.
pub fn smoke(m: usize, eps: f64) -> Instance {
    let mut b = InstanceBuilder::new(m, eps);
    b.push_tight(Time::ZERO, 1.0);
    b.push_tight(Time::ZERO, 1.0);
    b.push(
        Time::new(0.5),
        2.0,
        Time::new(0.5 + 2.0 * (1.0 + eps) + 1.0),
    );
    b.push_tight(Time::new(1.0), 0.5);
    b.build().expect("smoke instance")
}

/// Merges two instances (same `m`, `eps`) into one stream ordered by
/// release date.
fn merge(m: usize, eps: f64, a: &Instance, b: &Instance) -> Instance {
    let mut all: Vec<_> = a.jobs().iter().chain(b.jobs().iter()).collect();
    all.sort_by_key(|x| x.release);
    let mut builder = InstanceBuilder::with_capacity(m, eps, all.len());
    for j in all {
        builder.push(j.release, j.proc_time, j.deadline);
    }
    builder.build().expect("merged instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iaas_mix_has_both_job_kinds_and_valid_slack() {
        let inst = iaas_mix(4, 0.25, 100, 1);
        assert_eq!(inst.len(), 100);
        let small = inst.jobs().iter().filter(|j| j.proc_time <= 0.5).count();
        let big = inst.jobs().iter().filter(|j| j.proc_time >= 1.0).count();
        assert!(small >= 60, "small={small}");
        assert!(big >= 10, "big={big}");
        for j in inst.jobs() {
            assert!(j.satisfies_slack(0.25));
        }
        // Releases are sorted (merge invariant).
        assert!(inst.jobs().windows(2).all(|w| w[0].release <= w[1].release));
    }

    #[test]
    fn small_job_flood_shape() {
        let m = 3;
        let eps = 0.1;
        let inst = small_job_flood(m, eps, 2);
        assert_eq!(inst.len(), 4 * m + m);
        let big = 0.9 / eps;
        let n_big = inst
            .jobs()
            .iter()
            .filter(|j| (j.proc_time - big).abs() < 1e-12)
            .count();
        assert_eq!(n_big, m);
    }

    #[test]
    fn bursty_stream_is_valid_and_deterministic() {
        let a = bursty_heavy_tail(2, 0.5, 60, 9);
        let b = bursty_heavy_tail(2, 0.5, 60, 9);
        assert_eq!(a, b);
        for j in a.jobs() {
            assert!(j.satisfies_slack(0.5));
        }
    }

    #[test]
    fn smoke_is_tiny_and_valid() {
        let s = smoke(2, 0.5);
        assert_eq!(s.len(), 4);
        assert_eq!(s.machines(), 2);
    }

    #[test]
    fn diurnal_is_valid_and_shows_rate_variation() {
        let day = 50.0;
        let inst = diurnal(4, 0.2, 600, day, 3);
        assert_eq!(inst.len(), 600);
        for j in inst.jobs() {
            assert!(j.satisfies_slack(0.2));
        }
        // Count arrivals in the "peak" vs "trough" half-periods of the
        // first full day present in the stream.
        let (mut peak, mut trough) = (0usize, 0usize);
        for j in inst.jobs() {
            let phase = (j.release.raw() / day) * std::f64::consts::TAU;
            if phase.sin() > 0.0 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak > trough,
            "diurnal rate should concentrate arrivals in the peak ({peak} vs {trough})"
        );
        // Deterministic.
        assert_eq!(diurnal(4, 0.2, 600, day, 3), inst);
    }
}
