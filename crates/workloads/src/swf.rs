//! Standard Workload Format (SWF) import.
//!
//! Real cluster logs — the Parallel Workloads Archive and most
//! production schedulers — ship as SWF: one job per line, 18
//! whitespace-separated fields, `;`-prefixed header comments. Importing
//! them lets the paper's algorithms run on real arrival and size
//! processes.
//!
//! Field usage (1-based SWF numbering):
//!
//! * field 1 — job number (kept for diagnostics),
//! * field 2 — submit time → release date,
//! * field 4 — run time (seconds) → processing time,
//! * field 5 — allocated processors → optionally multiplies the volume
//!   (`procs_scale`), since our model is single-machine-per-job.
//!
//! SWF carries no deadlines; they are synthesized from a [`SlackLaw`]
//! with a seeded RNG (documented substitution: the paper's model needs
//! slack, the trace supplies everything else).

use crate::SlackLaw;
use cslack_kernel::{Instance, InstanceBuilder, KernelError, Time};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// One parsed SWF record (the subset of fields we consume).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwfJob {
    /// SWF job number (field 1).
    pub job_number: i64,
    /// Submit time in seconds (field 2).
    pub submit: f64,
    /// Run time in seconds (field 4); `-1` in SWF means unknown.
    pub run_time: f64,
    /// Allocated processors (field 5); `-1` means unknown.
    pub processors: i64,
}

/// SWF parse errors.
#[derive(Debug, PartialEq)]
pub enum SwfError {
    /// A data line had fewer than 5 fields.
    ShortLine {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed numeric parsing.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 1-based SWF field index.
        field: usize,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::ShortLine { line } => write!(f, "SWF line {line}: fewer than 5 fields"),
            SwfError::BadField { line, field } => {
                write!(f, "SWF line {line}: field {field} is not numeric")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// Parses SWF text: skips `;` comments and blank lines, keeps jobs with
/// positive run time.
pub fn parse_swf(text: &str) -> Result<Vec<SwfJob>, SwfError> {
    let mut jobs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 5 {
            return Err(SwfError::ShortLine { line });
        }
        let num = |idx: usize| -> Result<f64, SwfError> {
            fields[idx - 1]
                .parse::<f64>()
                .map_err(|_| SwfError::BadField { line, field: idx })
        };
        let job = SwfJob {
            job_number: num(1)? as i64,
            submit: num(2)?,
            run_time: num(4)?,
            processors: num(5)? as i64,
        };
        if job.run_time > 0.0 {
            jobs.push(job);
        }
    }
    Ok(jobs)
}

/// Options for turning SWF records into an [`Instance`].
#[derive(Clone, Copy, Debug)]
pub struct SwfImport {
    /// Machine count of the resulting instance.
    pub m: usize,
    /// System slack the synthesized deadlines respect.
    pub eps: f64,
    /// Deadline law for the synthesized deadlines.
    pub slack: SlackLaw,
    /// RNG seed for the deadline synthesis.
    pub seed: u64,
    /// Multiply each job's volume by its processor count (`p = run_time
    /// * procs`); otherwise `p = run_time`.
    pub procs_scale: bool,
    /// Divide all times by this factor (traces are in seconds; the
    /// experiments like O(1) numbers). Must be positive.
    pub time_scale: f64,
}

impl SwfImport {
    /// Reasonable defaults: no processor scaling, time in hours.
    pub fn new(m: usize, eps: f64, seed: u64) -> SwfImport {
        SwfImport {
            m,
            eps,
            slack: SlackLaw::UniformIn { max: 1.0 },
            seed,
            procs_scale: false,
            time_scale: 3600.0,
        }
    }
}

/// Converts parsed SWF records into an instance (jobs sorted by
/// release; deadlines synthesized per the import options).
pub fn swf_to_instance(jobs: &[SwfJob], opts: &SwfImport) -> Result<Instance, KernelError> {
    assert!(opts.time_scale > 0.0);
    let mut rng = ChaCha12Rng::seed_from_u64(opts.seed);
    let mut sorted: Vec<&SwfJob> = jobs.iter().collect();
    sorted.sort_by(|a, b| a.submit.total_cmp(&b.submit));
    let mut b = InstanceBuilder::with_capacity(opts.m, opts.eps, sorted.len());
    for j in sorted {
        let release = (j.submit / opts.time_scale).max(0.0);
        let mut p = j.run_time / opts.time_scale;
        if opts.procs_scale && j.processors > 0 {
            p *= j.processors as f64;
        }
        let slack_factor = match opts.slack {
            SlackLaw::Tight => opts.eps,
            SlackLaw::UniformIn { max } => rng.gen_range(opts.eps..=max.max(opts.eps)),
            SlackLaw::Generous { factor } => factor.max(opts.eps),
        };
        b.push(
            Time::new(release),
            p,
            Time::new(release + (1.0 + slack_factor) * p),
        );
    }
    b.build()
}

/// Serializes jobs back to SWF (unused fields written as `-1`), for
/// round trips and synthetic trace files.
pub fn write_swf(jobs: &[SwfJob]) -> String {
    let mut out = String::from("; generated by cslack-workloads (SWF v2 subset)\n");
    for j in jobs {
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n",
            j.job_number, j.submit, j.run_time, j.processors
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; SWF header comment
; MaxJobs: 4

1 0.0 5 3600.0 4 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
2 60.0 1 1800.0 1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
3 120.0 0 -1 2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
4 30.0 2 7200.0 8 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
";

    #[test]
    fn parses_sample_skipping_comments_and_unknown_runtimes() {
        let jobs = parse_swf(SAMPLE).unwrap();
        assert_eq!(jobs.len(), 3); // job 3 has run_time -1
        assert_eq!(jobs[0].job_number, 1);
        assert_eq!(jobs[0].run_time, 3600.0);
        assert_eq!(jobs[2].job_number, 4);
        assert_eq!(jobs[2].processors, 8);
    }

    #[test]
    fn short_and_malformed_lines_are_reported_with_position() {
        assert_eq!(parse_swf("1 2 3"), Err(SwfError::ShortLine { line: 1 }));
        let bad = "\n; c\n1 abc 3 4 5";
        assert_eq!(
            parse_swf(bad),
            Err(SwfError::BadField { line: 3, field: 2 })
        );
    }

    #[test]
    fn conversion_sorts_scales_and_synthesizes_valid_deadlines() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let opts = SwfImport::new(4, 0.25, 7);
        let inst = swf_to_instance(&jobs, &opts).unwrap();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.machines(), 4);
        // Sorted by submit: job 1 (0s), job 4 (30s), job 2 (60s).
        let releases: Vec<f64> = inst.jobs().iter().map(|j| j.release.raw()).collect();
        assert!(releases.windows(2).all(|w| w[0] <= w[1]));
        assert!((releases[0] - 0.0).abs() < 1e-12);
        assert!((releases[1] - 30.0 / 3600.0).abs() < 1e-12);
        // Hours scaling: 3600 s -> 1.0.
        assert!((inst.jobs()[0].proc_time - 1.0).abs() < 1e-12);
        for j in inst.jobs() {
            assert!(j.satisfies_slack(0.25));
        }
    }

    #[test]
    fn processor_scaling_multiplies_volume() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let opts = SwfImport {
            procs_scale: true,
            ..SwfImport::new(2, 0.25, 7)
        };
        let inst = swf_to_instance(&jobs, &opts).unwrap();
        // Job 1: 1h * 4 procs = 4.0 volume.
        assert!((inst.jobs()[0].proc_time - 4.0).abs() < 1e-12);
    }

    #[test]
    fn swf_round_trip() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let text = write_swf(&jobs);
        let back = parse_swf(&text).unwrap();
        assert_eq!(back, jobs);
    }

    #[test]
    fn same_seed_same_deadlines() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let opts = SwfImport::new(2, 0.1, 42);
        assert_eq!(
            swf_to_instance(&jobs, &opts).unwrap(),
            swf_to_instance(&jobs, &opts).unwrap()
        );
        let other = SwfImport::new(2, 0.1, 43);
        assert_ne!(
            swf_to_instance(&jobs, &opts).unwrap(),
            swf_to_instance(&jobs, &other).unwrap()
        );
    }

    #[test]
    fn imported_trace_runs_through_the_simulator() {
        use cslack_algorithms::{OnlineScheduler, Threshold};
        let jobs = parse_swf(SAMPLE).unwrap();
        let opts = SwfImport::new(2, 0.25, 1);
        let inst = swf_to_instance(&jobs, &opts).unwrap();
        let mut alg = Threshold::new(2, 0.25);
        let mut accepted = 0;
        for j in inst.jobs() {
            if alg.offer(j).is_accept() {
                accepted += 1;
            }
        }
        assert!(accepted > 0);
    }
}
