//! # cslack-workloads
//!
//! Seeded synthetic workload generation for the `cslack` experiments.
//!
//! The paper is motivated by Infrastructure-as-a-Service admission
//! control: streams of jobs with heterogeneous sizes, arrival bursts and
//! per-job urgency (slack). This crate provides reproducible generators
//! for those streams:
//!
//! * [`ArrivalLaw`] — Poisson, bursty, or simultaneous arrivals;
//! * [`SizeLaw`] — uniform, bounded-Pareto (heavy tail), bimodal, or
//!   constant processing times;
//! * [`SlackLaw`] — tight (`d = r + (1+eps) p`), uniform-in-range, or
//!   generous deadlines (every job still satisfies the system slack);
//! * [`WorkloadSpec`] — a serializable bundle of the above plus `m`,
//!   `eps`, job count and seed, turned into an
//!   `Instance` by [`WorkloadSpec::generate`];
//! * [`scenarios`] — named presets used across the experiment binaries
//!   (IaaS service-level mix, small-job floods, smoke tests);
//! * [`trace`] — JSON persistence for instances.
//!
//! Determinism: the same spec (including seed) always generates the same
//! instance, via `rand_chacha::ChaCha12Rng`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod scenarios;
pub mod swf;
pub mod trace;

use cslack_kernel::{Instance, InstanceBuilder, KernelError, Time};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// How job release dates are spaced.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalLaw {
    /// All jobs released at time zero.
    Simultaneous,
    /// Exponential inter-arrival times with the given rate (jobs per
    /// unit time).
    Poisson {
        /// Mean number of arrivals per unit time.
        rate: f64,
    },
    /// Batches of `burst` simultaneous jobs, with exponential gaps of
    /// the given rate between batches.
    Bursty {
        /// Jobs per burst.
        burst: usize,
        /// Mean number of bursts per unit time.
        rate: f64,
    },
}

/// How processing times are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SizeLaw {
    /// Every job has the same size.
    Constant(f64),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Smallest size.
        lo: f64,
        /// Largest size.
        hi: f64,
    },
    /// Bounded Pareto with shape `alpha` on `[lo, hi]` (heavy tail).
    BoundedPareto {
        /// Tail exponent (smaller = heavier tail).
        alpha: f64,
        /// Smallest size.
        lo: f64,
        /// Largest size.
        hi: f64,
    },
    /// With probability `p_small` a small job, otherwise a large one.
    Bimodal {
        /// Probability of drawing `small`.
        p_small: f64,
        /// Small size.
        small: f64,
        /// Large size.
        large: f64,
    },
}

/// How deadlines are assigned (all laws respect the system slack `eps`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SlackLaw {
    /// Tight slack: `d = r + (1 + eps) p` exactly.
    Tight,
    /// Per-job slack uniform in `[eps, max]` (requires `max >= eps`).
    UniformIn {
        /// Upper end of the per-job slack range.
        max: f64,
    },
    /// Fixed generous slack `factor >= eps`: `d = r + (1 + factor) p`.
    Generous {
        /// The per-job slack factor.
        factor: f64,
    },
}

/// A complete, serializable workload description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Machine count of the generated instance.
    pub m: usize,
    /// System slack `eps`.
    pub eps: f64,
    /// Number of jobs.
    pub n: usize,
    /// Arrival process.
    pub arrivals: ArrivalLaw,
    /// Size distribution.
    pub sizes: SizeLaw,
    /// Deadline law.
    pub slack: SlackLaw,
    /// RNG seed (same seed => same instance).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A small sane default: Poisson arrivals of uniform jobs with tight
    /// deadlines.
    pub fn default_spec(m: usize, eps: f64, n: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            m,
            eps,
            n,
            arrivals: ArrivalLaw::Poisson { rate: m as f64 },
            sizes: SizeLaw::Uniform { lo: 0.5, hi: 2.0 },
            slack: SlackLaw::Tight,
            seed,
        }
    }

    /// Generates the instance described by the spec.
    ///
    /// ```
    /// use cslack_workloads::WorkloadSpec;
    ///
    /// let spec = WorkloadSpec::default_spec(2, 0.25, 50, 7);
    /// let inst = spec.generate().unwrap();
    /// assert_eq!(inst.len(), 50);
    /// assert!(inst.jobs().iter().all(|j| j.satisfies_slack(0.25)));
    /// // Same seed, same instance.
    /// assert_eq!(inst, spec.generate().unwrap());
    /// ```
    pub fn generate(&self) -> Result<Instance, KernelError> {
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed);
        let mut builder = InstanceBuilder::with_capacity(self.m, self.eps, self.n);
        let mut t = 0.0_f64;
        let mut in_burst = 0usize;
        for _ in 0..self.n {
            // Arrival.
            match self.arrivals {
                ArrivalLaw::Simultaneous => {}
                ArrivalLaw::Poisson { rate } => {
                    t += exponential(&mut rng, rate);
                }
                ArrivalLaw::Bursty { burst, rate } => {
                    if in_burst == 0 {
                        t += exponential(&mut rng, rate);
                        in_burst = burst.max(1);
                    }
                    in_burst -= 1;
                }
            }
            // Size.
            let p = match self.sizes {
                SizeLaw::Constant(p) => p,
                SizeLaw::Uniform { lo, hi } => rng.gen_range(lo..=hi),
                SizeLaw::BoundedPareto { alpha, lo, hi } => bounded_pareto(&mut rng, alpha, lo, hi),
                SizeLaw::Bimodal {
                    p_small,
                    small,
                    large,
                } => {
                    if rng.gen_bool(p_small.clamp(0.0, 1.0)) {
                        small
                    } else {
                        large
                    }
                }
            };
            // Deadline.
            let slack_factor = match self.slack {
                SlackLaw::Tight => self.eps,
                SlackLaw::UniformIn { max } => rng.gen_range(self.eps..=max.max(self.eps)),
                SlackLaw::Generous { factor } => factor.max(self.eps),
            };
            let release = Time::new(t);
            let deadline = release + (1.0 + slack_factor) * p;
            builder.push(release, p, deadline);
        }
        builder.build()
    }
}

/// Exponentially distributed sample with the given rate.
fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Bounded-Pareto sample on `[lo, hi]` with shape `alpha` (inverse
/// transform of the truncated Pareto CDF).
fn bounded_pareto<R: Rng>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_instance() {
        let spec = WorkloadSpec::default_spec(2, 0.5, 64, 42);
        assert_eq!(spec.generate().unwrap(), spec.generate().unwrap());
    }

    #[test]
    fn different_seed_different_instance() {
        let a = WorkloadSpec::default_spec(2, 0.5, 64, 1)
            .generate()
            .unwrap();
        let b = WorkloadSpec::default_spec(2, 0.5, 64, 2)
            .generate()
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn every_generated_job_satisfies_the_slack_condition() {
        for slack in [
            SlackLaw::Tight,
            SlackLaw::UniformIn { max: 2.0 },
            SlackLaw::Generous { factor: 1.5 },
        ] {
            let spec = WorkloadSpec {
                slack,
                ..WorkloadSpec::default_spec(3, 0.25, 200, 7)
            };
            let inst = spec.generate().unwrap();
            assert_eq!(inst.len(), 200);
            for j in inst.jobs() {
                assert!(j.satisfies_slack(0.25), "{:?}", j);
            }
        }
    }

    #[test]
    fn tight_law_is_actually_tight() {
        let spec = WorkloadSpec::default_spec(1, 0.5, 50, 3);
        let inst = spec.generate().unwrap();
        for j in inst.jobs() {
            assert!(j.has_tight_slack(0.5));
        }
    }

    #[test]
    fn simultaneous_arrivals_all_at_zero() {
        let spec = WorkloadSpec {
            arrivals: ArrivalLaw::Simultaneous,
            ..WorkloadSpec::default_spec(2, 0.5, 20, 9)
        };
        let inst = spec.generate().unwrap();
        assert!(inst.jobs().iter().all(|j| j.release == Time::ZERO));
    }

    #[test]
    fn poisson_arrivals_are_nondecreasing_and_spread() {
        let spec = WorkloadSpec {
            arrivals: ArrivalLaw::Poisson { rate: 1.0 },
            ..WorkloadSpec::default_spec(2, 0.5, 200, 11)
        };
        let inst = spec.generate().unwrap();
        let releases: Vec<f64> = inst.jobs().iter().map(|j| j.release.raw()).collect();
        assert!(releases.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival should be near 1 (rate 1), very loosely.
        let span = releases.last().unwrap() - releases[0];
        assert!(span > 100.0 && span < 400.0, "span={span}");
    }

    #[test]
    fn bursts_share_release_dates() {
        let spec = WorkloadSpec {
            arrivals: ArrivalLaw::Bursty {
                burst: 5,
                rate: 1.0,
            },
            ..WorkloadSpec::default_spec(2, 0.5, 25, 13)
        };
        let inst = spec.generate().unwrap();
        let releases: Vec<f64> = inst.jobs().iter().map(|j| j.release.raw()).collect();
        let distinct: std::collections::BTreeSet<u64> =
            releases.iter().map(|r| r.to_bits()).collect();
        assert_eq!(distinct.len(), 5, "25 jobs in bursts of 5");
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_skew() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut below_mid = 0;
        const N: usize = 4000;
        for _ in 0..N {
            let x = bounded_pareto(&mut rng, 1.1, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x), "x={x}");
            if x < 50.5 {
                below_mid += 1;
            }
        }
        // Heavy skew toward small values.
        assert!(below_mid > (N * 9) / 10, "below_mid={below_mid}");
    }

    #[test]
    fn uniform_sizes_respect_bounds() {
        let spec = WorkloadSpec {
            sizes: SizeLaw::Uniform { lo: 0.5, hi: 2.0 },
            ..WorkloadSpec::default_spec(1, 0.5, 300, 17)
        };
        let inst = spec.generate().unwrap();
        for j in inst.jobs() {
            assert!((0.5..=2.0).contains(&j.proc_time));
        }
    }

    #[test]
    fn bimodal_produces_both_modes() {
        let spec = WorkloadSpec {
            sizes: SizeLaw::Bimodal {
                p_small: 0.7,
                small: 1.0,
                large: 10.0,
            },
            ..WorkloadSpec::default_spec(1, 0.5, 200, 19)
        };
        let inst = spec.generate().unwrap();
        let small = inst.jobs().iter().filter(|j| j.proc_time == 1.0).count();
        let large = inst.jobs().iter().filter(|j| j.proc_time == 10.0).count();
        assert_eq!(small + large, 200);
        assert!(small > large);
        assert!(large > 0);
    }

    #[test]
    fn spec_serde_round_trip() {
        let spec = WorkloadSpec::default_spec(4, 0.125, 10, 23);
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.generate().unwrap(), spec.generate().unwrap());
    }
}
