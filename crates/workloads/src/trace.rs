//! JSON persistence for instances ("traces").
//!
//! Experiments save the exact instances they ran so results can be
//! replayed and debugged; [`save`]/[`load`] wrap `serde_json` with a
//! versioned envelope so old traces fail loudly instead of silently
//! deserializing wrong.

use cslack_kernel::Instance;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Envelope {
    version: u32,
    instance: Instance,
}

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// The file is a trace of an incompatible version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Json(e) => write!(f, "trace JSON error: {e}"),
            TraceError::VersionMismatch { found } => {
                write!(f, "trace version {found} != supported {TRACE_VERSION}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

/// Serializes an instance to a JSON string.
pub fn to_string(instance: &Instance) -> Result<String, TraceError> {
    Ok(serde_json::to_string_pretty(&Envelope {
        version: TRACE_VERSION,
        instance: instance.clone(),
    })?)
}

/// Deserializes an instance from a JSON string.
pub fn from_string(s: &str) -> Result<Instance, TraceError> {
    let env: Envelope = serde_json::from_str(s)?;
    if env.version != TRACE_VERSION {
        return Err(TraceError::VersionMismatch { found: env.version });
    }
    Ok(env.instance)
}

/// Writes an instance trace to `path`.
pub fn save(instance: &Instance, path: &Path) -> Result<(), TraceError> {
    fs::write(path, to_string(instance)?)?;
    Ok(())
}

/// Reads an instance trace from `path`.
pub fn load(path: &Path) -> Result<Instance, TraceError> {
    from_string(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;

    #[test]
    fn string_round_trip() {
        let inst = WorkloadSpec::default_spec(2, 0.5, 10, 3)
            .generate()
            .unwrap();
        let s = to_string(&inst).unwrap();
        assert_eq!(from_string(&s).unwrap(), inst);
    }

    #[test]
    fn file_round_trip() {
        let inst = WorkloadSpec::default_spec(3, 0.25, 20, 4)
            .generate()
            .unwrap();
        let dir = std::env::temp_dir().join("cslack-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        save(&inst, &path).unwrap();
        assert_eq!(load(&path).unwrap(), inst);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_detected() {
        let inst = WorkloadSpec::default_spec(1, 0.5, 2, 5).generate().unwrap();
        let s = to_string(&inst)
            .unwrap()
            .replace("\"version\": 1", "\"version\": 99");
        match from_string(&s) {
            Err(TraceError::VersionMismatch { found: 99 }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn junk_is_a_json_error() {
        assert!(matches!(from_string("not json"), Err(TraceError::Json(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = Path::new("/nonexistent/definitely/not/here.json");
        assert!(matches!(load(p), Err(TraceError::Io(_))));
    }
}
