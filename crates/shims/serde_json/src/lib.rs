//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`Value`](serde::Value) trees as real JSON text and parses JSON text
//! back, with exact `f64` round-tripping (Rust's shortest-repr float
//! formatting is re-parsed bit-for-bit).
//!
//! Supported subset: [`to_string`], [`to_string_pretty`], [`to_writer`],
//! [`from_str`], and the [`Value`]/[`Error`] types. Non-finite floats
//! serialize as `null`, matching real `serde_json`.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// A JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.0)
    }
}

// ---- serialization -----------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest round-trip representation; re-parsing with
        // `str::parse::<f64>` recovers the identical bits.
        out.push_str(&format!("{x}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => push_f64(out, *x),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    const STEP: &str = "  ";
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(e.to_string()))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

// ---- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a typed value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
        assert_eq!(from_str::<f64>("1.25").unwrap(), 1.25);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for &x in &[
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e308,
            -2.2250738585072014e-308,
            123456789.123456789,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), v);
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = Value::Map(vec![
            ("version".to_string(), Value::U64(1)),
            ("items".to_string(), Value::Seq(vec![Value::U64(2)])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"version\": 1"), "{s}");
        assert!(s.starts_with("{\n  "), "{s}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<f64>("1.25 extra").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(to_string(&"héllo").unwrap(), "\"héllo\"");
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
    }
}
