//! Offline stand-in for `parking_lot`.
//!
//! Non-poisoning [`Mutex`] and [`RwLock`] wrappers over `std::sync`.
//! A panic while a guard is held simply clears the poison flag on the
//! next acquisition, matching parking_lot's "no poisoning" semantics
//! closely enough for this workspace.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
