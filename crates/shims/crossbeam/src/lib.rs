//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces this workspace uses: [`channel`] (bounded
//! and unbounded MPMC channels over `std::sync::mpsc`, with cloneable
//! receivers via an internal mutex) and [`scope`] (scoped threads over
//! `std::thread::scope`, returning `Err` instead of propagating child
//! panics, like crossbeam does).

pub mod channel {
    //! MPMC channels with `crossbeam-channel`'s API shape.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> SendError<T> {
        /// Recovers the unsent message.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the unsent message.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True if the failure was a full buffer.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        /// True if the failure was a disconnected channel.
        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// No message was ready.
        Empty,
        /// All senders have been dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders have been dropped and the buffer is drained.
        Disconnected,
    }

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Tx<T> {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    // Real crossbeam renders channel halves opaquely; match it so
    // structs embedding a Sender can keep `#[derive(Debug)]`.
    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let res = match &self.0 {
                Tx::Bounded(s) => s.send(msg),
                Tx::Unbounded(s) => s.send(msg),
            };
            res.map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Sends without blocking; fails with `Full` at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
                Tx::Unbounded(s) => s
                    .send(msg)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
            }
        }
    }

    /// The receiving half of a channel. Cloneable (receivers share the
    /// stream; each message is delivered to exactly one receiver).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            match self.0.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(Tx::Unbounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    /// Creates a bounded channel with the given capacity (`0` gives a
    /// rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(Arc::new(Mutex::new(rx))))
    }
}

pub mod thread {
    //! Scoped threads with `crossbeam-utils`' API shape.

    use std::panic::AssertUnwindSafe;

    /// A scope within which threads borrowing local data can run.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads (crossbeam's one-argument shape).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                handle: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        handle: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            // std's ScopedJoinHandle::join already catches the panic.
            self.handle.join()
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before
    /// this returns. Returns `Err` if `f` or any unjoined child thread
    /// panicked, instead of propagating the panic.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

pub use thread::{scope, Scope, ScopedJoinHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = channel::bounded(1);
        tx.try_send(10).unwrap();
        let err = tx.try_send(11).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 11);
        assert_eq!(rx.try_recv(), Ok(10));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = channel::bounded::<i32>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Disconnected);
    }

    #[test]
    fn cloned_receivers_partition_stream() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen = Vec::new();
        scope(|s| {
            let h1 = s.spawn(|_| rx.iter().collect::<Vec<i32>>());
            let h2 = s.spawn(|_| rx2.iter().collect::<Vec<i32>>());
            seen.extend(h1.join().unwrap());
            seen.extend(h2.join().unwrap());
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn scope_joins_and_sums() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let res = scope(|s| {
            s.spawn(|_| panic!("child dies"));
        });
        assert!(res.is_err());
    }
}
