//! Offline stand-in for `rand_chacha`.
//!
//! Exposes [`ChaCha8Rng`], [`ChaCha12Rng`], and [`ChaCha20Rng`] type
//! names over the shim `rand` crate's xoshiro256++ core. The generated
//! streams are NOT the real ChaCha streams; callers in this workspace
//! only require same-seed determinism and statistical uniformity. Each
//! alias perturbs the seed differently so the three types produce
//! distinct streams, as the real crate would.

use rand::{RngCore, SeedableRng, Xoshiro256};

macro_rules! chacha_like {
    ($name:ident, $tweak:expr) => {
        /// Deterministic seeded generator (see crate docs for caveats).
        #[derive(Clone, Debug)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> $name {
                $name(Xoshiro256::from_u64_seed(seed ^ $tweak))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    };
}

chacha_like!(ChaCha8Rng, 0x8A5C_D789_635D_2DFF);
chacha_like!(ChaCha12Rng, 0x2B99_2DDF_A232_49D6);
chacha_like!(ChaCha20Rng, 0x1715_60A5_07DC_EDE4);

/// Re-export so `rand_chacha::rand_core::SeedableRng` resolves.
pub mod rand_core {
    pub use rand::rand_core::{RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(99);
        let mut b = ChaCha12Rng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn flavors_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha12Rng::seed_from_u64(5);
        let mut c = ChaCha20Rng::seed_from_u64(5);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert!(x != y && y != z && x != z);
    }
}
