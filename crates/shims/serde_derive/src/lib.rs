//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! The macros parse the item declaration directly from the token stream
//! (no `syn`/`quote` — the build environment is offline) and emit impls
//! of the shim's `serde::Serialize` / `serde::Deserialize` traits
//! following serde's external data model:
//!
//! * named struct        -> map of fields
//! * newtype struct      -> transparent (the inner value)
//! * tuple struct        -> sequence
//! * unit enum variant   -> the variant name as a string
//! * newtype variant     -> `{ "Variant": inner }`
//! * tuple variant       -> `{ "Variant": [..] }`
//! * struct variant      -> `{ "Variant": { fields } }`
//!
//! `#[serde(...)]` attributes are accepted (so existing annotations such
//! as `#[serde(transparent)]` parse) but ignored: newtype structs are
//! always transparent, which matches every annotation in the workspace.
//! Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Body {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
}

struct Variant {
    name: String,
    body: Body,
}

enum Item {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a token slice on commas that sit outside `<...>` nesting.
fn split_top_level_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses `name: Type` field declarations from a brace group.
fn parse_named_fields(toks: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for field in split_top_level_commas(toks) {
        let i = skip_attrs_and_vis(&field, 0);
        if i >= field.len() {
            continue; // trailing comma
        }
        match &field[i] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found `{other}`")),
        }
        match field.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "expected `:` after field `{}`",
                    names.last().unwrap()
                ))
            }
        }
    }
    Ok(names)
}

/// Counts the fields of a tuple struct/variant paren group.
fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    split_top_level_commas(toks)
        .into_iter()
        .filter(|seg| skip_attrs_and_vis(seg, 0) < seg.len())
        .count()
}

fn parse_variants(toks: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for seg in split_top_level_commas(toks) {
        let i = skip_attrs_and_vis(&seg, 0);
        if i >= seg.len() {
            continue;
        }
        let name = match &seg[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        let body = match seg.get(i + 1) {
            None => Body::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Body::Named(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?,
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Body::Tuple(
                count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("discriminant on variant `{name}` is unsupported"))
            }
            Some(other) => return Err(format!("unexpected token `{other}` in variant `{name}`")),
        };
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is unsupported by the serde shim derive"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Body::Named(
                    parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?,
                ),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(
                        &g.stream().into_iter().collect::<Vec<_>>(),
                    ))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => return Err(format!("unexpected struct body `{other:?}`")),
            };
            Ok(Item::Struct { name, body })
        }
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(&g.stream().into_iter().collect::<Vec<_>>())?,
            }),
            other => Err(format!("unexpected enum body `{other:?}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

fn emit(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde shim derive produced invalid code: {e}")))
}

// ---- Serialize ---------------------------------------------------------

fn serialize_named(fields: &[String], accessor: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({accessor}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, body } => (name, Some(body)),
        Item::Enum { name, .. } => (name, None),
    };
    let inner = match item {
        Item::Struct { .. } => match body.unwrap() {
            Body::Named(fields) => serialize_named(fields, "&self."),
            Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Body::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
            }
            Body::Unit => "::serde::Value::Null".to_string(),
        },
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.body {
                        Body::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Body::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Body::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Body::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all)]\nimpl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {inner}\n    }}\n}}\n"
    )
}

// ---- Deserialize -------------------------------------------------------

fn deserialize_named(fields: &[String], ctor: &str, source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::get_field({source}, \"{f}\"))?")
        })
        .collect();
    format!("{ctor} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, inner) = match item {
        Item::Struct { name, body } => {
            let inner = match body {
                Body::Named(fields) => format!(
                    "if __v.as_map().is_none() {{ return ::std::result::Result::Err(::serde::DeError(::std::format!(\"expected map for struct {name}, got {{}}\", __v.kind()))); }}\n        ::std::result::Result::Ok({})",
                    deserialize_named(fields, name, "__v")
                ),
                Body::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Body::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                        .collect();
                    format!(
                        "let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError(::std::format!(\"expected sequence for {name}, got {{}}\", __v.kind())))?;\n        if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError(::std::format!(\"expected {n} elements for {name}, got {{}}\", __seq.len()))); }}\n        ::std::result::Result::Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Body::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name, inner)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.body, Body::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.body, Body::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.body {
                        Body::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        Body::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __seq = __inner.as_seq().ok_or_else(|| ::serde::DeError(::std::string::String::from(\"expected sequence for variant {vn}\")))?; if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError(::std::string::String::from(\"wrong arity for variant {vn}\"))); }} ::std::result::Result::Ok({name}::{vn}({})) }},",
                                elems.join(", ")
                            )
                        }
                        Body::Named(fields) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({}),",
                            deserialize_named(fields, &format!("{name}::{vn}"), "__inner")
                        ),
                        Body::Unit => unreachable!(),
                    }
                })
                .collect();
            let inner = format!(
                "match __v {{\n            ::serde::Value::Str(__s) => match __s.as_str() {{\n                {unit}\n                __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n            }},\n            ::serde::Value::Map(__entries) => {{\n                if __entries.len() != 1 {{ return ::std::result::Result::Err(::serde::DeError(::std::string::String::from(\"expected single-key map for enum {name}\"))); }}\n                let (__tag, __inner) = &__entries[0];\n                match __tag.as_str() {{\n                    {data}\n                    __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n                }}\n            }},\n            __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"expected string or map for enum {name}, got {{}}\", __other.kind()))),\n        }}",
                unit = unit_arms.join("\n                "),
                data = data_arms.join("\n                    "),
            );
            (name, inner)
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, unused_variables)]\nimpl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        {inner}\n    }}\n}}\n"
    )
}

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit(gen_serialize(&item)),
        Err(e) => compile_error(&e),
    }
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit(gen_deserialize(&item)),
        Err(e) => compile_error(&e),
    }
}
