//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace ships
//! a minimal, self-consistent (de)serialization framework under the
//! `serde` package name. It keeps the two public touch points the code
//! base actually uses — `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` — source-compatible, while the
//! machinery underneath is a simple value-tree model:
//!
//! * [`Serialize`] renders a type into a [`Value`] tree;
//! * [`Deserialize`] rebuilds a type from a [`Value`] tree;
//! * the `serde_json` shim turns [`Value`] trees into real JSON text
//!   and back.
//!
//! The derive macros (re-exported from the `serde_derive` shim) follow
//! serde's external data model conventions: structs become maps, unit
//! enum variants become strings, data-carrying variants become
//! single-key maps, and single-field tuple structs are transparent.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the shim's data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A deserialization error (message only, like `serde::de::Error`).
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from anything displayable.
    pub fn custom<T: fmt::Display>(msg: T) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetches a struct field from a map value; missing fields surface as
/// [`Value::Null`] so `Option` fields deserialize to `None` while any
/// other type reports a clear error.
pub fn get_field<'a>(v: &'a Value, name: &str) -> &'a Value {
    v.get(name).unwrap_or(&Value::Null)
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError(format!("expected {expected}, got {}", got.kind())))
}

// ---- primitive impls ---------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return type_err("unsigned integer", other),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::U64(x as u64)
                } else {
                    Value::I64(x)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError(format!("integer {u} out of range")))?,
                    other => return type_err("integer", other),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

// ---- generic impls -----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| {
                    DeError(format!("expected sequence, got {}", v.kind()))
                })?;
                let want = [$($i),+].len();
                if seq.len() != want {
                    return Err(DeError(format!(
                        "expected {}-tuple, got {} elements", want, seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$i])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Serializes a map key: scalar values render as their string form, so
/// integer-keyed maps become JSON objects (like real `serde_json`).
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(u) => u.to_string(),
        Value::I64(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::F64(x) => x.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

/// Parses a map key back into the most specific scalar [`Value`].
fn key_from_string(s: &str) -> Value {
    if let Ok(u) = s.parse::<u64>() {
        return Value::U64(u);
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::I64(i);
    }
    if let Ok(x) = s.parse::<f64>() {
        return Value::F64(x);
    }
    match s {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::Str(s.to_string()),
    }
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(String, Value)> = entries
        .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
        .collect();
    // Deterministic output regardless of hash order.
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Map(out)
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<Vec<(K, V)>, DeError> {
    let entries = v
        .as_map()
        .ok_or_else(|| DeError(format!("expected map, got {}", v.kind())))?;
    entries
        .iter()
        .map(|(ks, vv)| {
            let key = K::from_value(&key_from_string(ks))
                .or_else(|_| K::from_value(&Value::Str(ks.clone())))?;
            Ok((key, V::from_value(vv)?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries_from_value(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries_from_value(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_missing_fields() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)).unwrap(), Some(3));
        let map = Value::Map(vec![]);
        assert_eq!(get_field(&map, "absent"), &Value::Null);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u32::from_value(&Value::U64(u64::MAX)).is_err());
        assert_eq!(i32::from_value(&Value::I64(-5)).unwrap(), -5);
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn hashmap_round_trip_is_sorted_and_exact() {
        let mut m = HashMap::new();
        m.insert(10u32, 1.5f64);
        m.insert(2u32, -0.25f64);
        let v = m.to_value();
        let keys: Vec<&str> = v
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["10", "2"]); // lexicographic, deterministic
        let back: HashMap<u32, f64> = HashMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
