//! Offline stand-in for the `rand` crate.
//!
//! Provides the slice of the `rand` 0.8 API the workspace uses —
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] — backed by a
//! xoshiro256++ generator seeded through SplitMix64. The streams differ
//! from upstream `rand`, but every consumer in this workspace only
//! relies on determinism (same seed, same stream) and on reasonable
//! statistical uniformity, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Core trait: types that can produce random bits.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `rand_core` subset used here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range, e.g. `rng.gen_range(0.0..1.0)`
    /// or `rng.gen_range(1..=6)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a canonical "uniform over all values" distribution.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let x = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start.max(f64_prev(self.end))
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Largest float strictly below `x` (for half-open range clamping).
fn f64_prev(x: f64) -> f64 {
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else {
        f64::from_bits(x.to_bits() + 1)
    }
}

/// SplitMix64: seed expansion (also a fine standalone generator).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ core shared by the shim's named generators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Builds the state by SplitMix64-expanding a 64-bit seed.
    pub fn from_u64_seed(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be degenerate; SplitMix64 of any seed
        // never produces four zeros, but keep the guard explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The shim's standard generator (xoshiro256++; upstream uses
    /// ChaCha12 — only determinism and uniformity are relied on here).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng(Xoshiro256::from_u64_seed(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The `rand_core` facade (`rand_chacha::rand_core` re-exports this).
pub mod rand_core {
    pub use super::{RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: usize = rng.gen_range(3..7);
            assert!((3..7).contains(&y));
            let z: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
            let w: f64 = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn tiny_positive_lower_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
            assert!(u.ln().is_finite());
        }
    }
}
