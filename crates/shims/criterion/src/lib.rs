//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `bench_with_input` /
//! `bench_function`, [`BenchmarkId`], [`Throughput`], [`black_box`],
//! and the `criterion_group!` / `criterion_main!` macros — with plain
//! `Instant`-based timing instead of statistical analysis. Each
//! benchmark runs a short warm-up, then a fixed number of timed
//! iterations, and prints mean time per iteration (plus element
//! throughput when configured).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures the body's total time over `iters` iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets a target measurement time. Accepted for API compatibility;
    /// this shim always runs a fixed iteration count.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Configures derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| routine(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| routine(b));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: F) {
        // Warm-up: a few untimed iterations to populate caches.
        let mut warm = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        routine(&mut warm);

        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let mut line = format!(
            "{}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            id,
            per_iter * 1e3,
            b.iters
        );
        if let Some(tp) = self.throughput {
            let units = match tp {
                Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / per_iter),
                Throughput::Bytes(n) => format!("{:.0} B/s", n as f64 / per_iter),
            };
            line.push_str(&format!(", {units}"));
        }
        println!("{line}");
        self.criterion.results.push(line);
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<String>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        group.finish();
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(10).throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100u32), &100u32, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u32>())
        });
        group.bench_with_input(BenchmarkId::new("sum", 7), &7u32, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs_and_records() {
        benches();
        let mut c = Criterion::default();
        tiny_bench(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].contains("tiny/100"));
        assert!(c.results[0].contains("elem/s"));
        assert!(c.results[1].contains("tiny/sum/7"));
    }
}
