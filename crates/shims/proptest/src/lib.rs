//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use as a
//! deterministic random-sampling runner: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`strategy::Just`], [`strategy::OneOf`],
//! `prop::collection::vec`, `any::<T>()`, and the [`proptest!`] /
//! [`prop_oneof!`] / `prop_assert*!` macros. No shrinking: a failing
//! case fails the test directly with the assertion message. Every run
//! uses a fixed seed, so failures reproduce exactly.

pub mod test_runner {
    //! The deterministic RNG driving each `proptest!` block.

    pub use rand::Rng;
    use rand::{rngs::StdRng, RngCore, SeedableRng};

    /// RNG handed to strategies. A fixed seed keeps case generation
    /// reproducible across runs (this shim does not shrink).
    pub struct TestRng(StdRng);

    impl TestRng {
        /// The runner's canonical generator.
        pub fn deterministic() -> TestRng {
            TestRng(StdRng::seed_from_u64(0x70726f70_74657374))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Per-block configuration (only `cases` is meaningful here).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test function runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent second-stage strategy from each value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Boxes a strategy (used by `prop_oneof!` for type unification).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, W> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W;
        fn sample(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty alternative list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// Types with a canonical `any::<T>()` strategy.
    pub trait ArbitraryValue: Sized {
        /// Draws an unconstrained value.
        fn any_sample(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn any_sample(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn any_sample(rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for f64 {
        fn any_sample(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = rng.gen_range(-9.0f64..9.0);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            sign * 10f64.powf(mag)
        }
    }

    /// Strategy for [`ArbitraryValue`] types; see [`crate::arbitrary::any`].
    pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::any_sample(rng)
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::{AnyStrategy, ArbitraryValue};

    /// Strategy producing unconstrained values of `T`.
    pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    //! `prop::collection` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a vec-length specification.
    pub trait SizeBounds {
        /// Inclusive `(lo, hi)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeBounds for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates vectors whose elements come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..=self.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(args in strategies) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            @cfg (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
}

/// `assert!` under a proptest-flavoured name (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-flavoured name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Law {
        A,
        B(f64),
    }

    fn arb_law() -> impl Strategy<Value = Law> {
        prop_oneof![Just(Law::A), (0.5f64..1.5).prop_map(Law::B),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuple_and_ranges(m in 1usize..=4, eps in 0.05f64..=1.0, k in 0usize..3) {
            prop_assert!((1..=4).contains(&m));
            prop_assert!((0.05..=1.0).contains(&eps));
            prop_assert!(k < 3);
        }

        #[test]
        fn vec_and_any(xs in prop::collection::vec((0.0f64..5.0, 0.1f64..2.0), 1..20), seed in any::<u64>()) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (a, b) in &xs {
                prop_assert!((0.0..5.0).contains(a) && (0.1..2.0).contains(b));
            }
            let _ = seed;
        }

        #[test]
        fn tuple_pattern_destructuring((a, b) in (0u32..10, 10u32..20)) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assert_ne!(a, b);
        }

        #[test]
        fn oneof_and_flat_map(law in arb_law(), pair in (1usize..5).prop_flat_map(|n| (Just(n), 0usize..5))) {
            match law {
                Law::A => {}
                Law::B(x) => prop_assert!((0.5..1.5).contains(&x)),
            }
            prop_assert!(pair.1 < 5);
            prop_assert_eq!(pair.0, pair.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let s = prop::collection::vec(0.0f64..1.0, 0..10);
        let mut r1 = crate::test_runner::TestRng::deterministic();
        let mut r2 = crate::test_runner::TestRng::deterministic();
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
