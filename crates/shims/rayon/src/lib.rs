//! Offline stand-in for `rayon`.
//!
//! Implements the data-parallel subset this workspace uses:
//! `slice.par_iter()` followed by `map` / `enumerate` / `for_each` /
//! `for_each_with` / `collect`. Each adapter stage runs eagerly,
//! splitting its items into contiguous chunks across
//! `available_parallelism()` scoped threads; result order is
//! preserved, matching rayon's indexed collect semantics.

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// `0` means "use every core".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The effective worker count for the calling thread.
fn current_threads() -> usize {
    let configured = POOL_THREADS.with(Cell::get);
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder` (thread count only).
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (all cores) configuration.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Caps the pool at `n` worker threads; `0` means all cores.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the shim, but keeps rayon's
    /// fallible signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type matching `rayon::ThreadPoolBuildError` (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count policy: parallel work run under
/// [`ThreadPool::install`] uses this pool's thread cap.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it executes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }
}

/// Runs `f` over `items` on a pool of scoped threads, preserving
/// order. Falls back to the current thread for tiny inputs.
fn run_parallel<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let threads = current_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut iter = items.into_iter();
    let chunks: Vec<Vec<I>> = (0..threads)
        .map(|_| iter.by_ref().take(chunk).collect())
        .collect();
    let fref = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(fref).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// An eager "parallel iterator" holding its items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Applies `f` to every item in parallel, keeping order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParIter {
            items: run_parallel(self.items, f),
        }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Consumes every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        run_parallel(self.items, |item| f(item));
    }

    /// Like [`ParIter::for_each`], but each worker thread gets its own
    /// clone of `init` (rayon's `for_each_with`).
    pub fn for_each_with<S, F>(self, init: S, f: F)
    where
        S: Clone + Send,
        F: Fn(&mut S, I) + Sync,
    {
        let n = self.items.len();
        let threads = current_threads().min(n);
        if threads <= 1 {
            let mut state = init;
            for item in self.items {
                f(&mut state, item);
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        let mut iter = self.items.into_iter();
        let chunks: Vec<Vec<I>> = (0..threads)
            .map(|_| iter.by_ref().take(chunk).collect())
            .collect();
        let fref = &f;
        std::thread::scope(|s| {
            for c in chunks {
                let mut state = init.clone();
                s.spawn(move || {
                    for item in c {
                        fref(&mut state, item);
                    }
                });
            }
        });
    }

    /// Collects the (already ordered) items into any collection.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Extension trait putting `.par_iter()` on slices (and, via deref,
/// on `Vec`).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| (x as u64) * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn enumerate_for_each_sees_all_indices() {
        let xs = vec![10u32; 257];
        let sum = AtomicU64::new(0);
        xs.par_iter().enumerate().for_each(|(i, &x)| {
            sum.fetch_add(i as u64 + x as u64, Ordering::Relaxed);
        });
        let expect: u64 = (0..257).map(|i| i + 10).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn for_each_with_clones_state() {
        let (tx, rx) = std::sync::mpsc::channel();
        let xs: Vec<u32> = (0..100).collect();
        xs.par_iter().for_each_with(tx, |tx, &x| {
            tx.send(x).unwrap();
        });
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn thread_pool_install_caps_parallelism() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let xs: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = pool.install(|| xs.par_iter().map(|&x| x + 1).collect());
        assert_eq!(out, (1..=100).collect::<Vec<u32>>());
        // The override is scoped to the install call.
        assert_eq!(super::POOL_THREADS.with(std::cell::Cell::get), 0);
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        xs.par_iter().for_each(|_| panic!("must not run"));
    }
}
