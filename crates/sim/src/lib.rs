//! # cslack-sim
//!
//! The event-driven simulation driver for `cslack`: it replays an
//! [`Instance`] through an [`OnlineScheduler`], treats every returned
//! [`Decision`] as an *irrevocable commitment* (committing it to the
//! authoritative [`Schedule`] and failing the run on any violation), and
//! produces a [`SimReport`] with the objective value and diagnostics.
//!
//! The driver is deliberately paranoid: algorithms are untrusted. A
//! commitment that starts before the release date, misses the deadline,
//! overlaps another commitment, or reuses a job id aborts the simulation
//! with [`SimError`] — the test suite injects misbehaving schedulers to
//! verify each path.
//!
//! [`sweep`] runs (algorithm × parameter grid × seed) experiments in
//! parallel with rayon.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod audit;
pub mod fault;
pub mod sweep;

use cslack_algorithms::{Decision, OnlineScheduler};
use cslack_kernel::{
    validate_schedule, Instance, Job, JobId, KernelError, Schedule, ValidationReport,
};
use serde::Serialize;
use std::fmt;

/// A failed simulation: the algorithm violated the commitment contract.
#[derive(Debug)]
pub enum SimError {
    /// The algorithm schedules a different machine count than the
    /// instance provides.
    MachineMismatch {
        /// Machines the algorithm claims to use.
        algorithm: usize,
        /// Machines in the instance.
        instance: usize,
    },
    /// A commitment was rejected by the authoritative schedule.
    BadCommitment {
        /// The job whose commitment failed.
        job: JobId,
        /// The underlying kernel error.
        source: KernelError,
    },
    /// The final schedule failed independent validation.
    InvalidSchedule(ValidationReport),
    /// A trace-driven audit of the run found invariant violations.
    AuditFailed {
        /// Number of violations found.
        violations: usize,
        /// The first violation, rendered.
        first: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MachineMismatch {
                algorithm,
                instance,
            } => write!(
                f,
                "algorithm schedules {algorithm} machines, instance has {instance}"
            ),
            SimError::BadCommitment { job, source } => {
                write!(f, "invalid commitment for {job}: {source}")
            }
            SimError::InvalidSchedule(report) => {
                write!(f, "final schedule invalid: {:?}", report.violations)
            }
            SimError::AuditFailed { violations, first } => {
                write!(
                    f,
                    "flight audit found {violations} violation(s), first: {first}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of one simulated run.
#[derive(Clone, Debug, Serialize)]
pub struct SimReport {
    /// Name of the algorithm that produced the run.
    pub algorithm: String,
    /// The final committed schedule.
    pub schedule: Schedule,
    /// Per-job decisions in submission order (`None` start = rejected).
    pub decisions: Vec<JobDecision>,
    /// Total offered processing volume (`sum p_j` over all jobs).
    pub offered_load: f64,
}

/// One recorded decision.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct JobDecision {
    /// The job the decision concerns.
    pub job: JobId,
    /// `true` iff accepted.
    pub accepted: bool,
}

impl SimReport {
    /// The objective value `sum p_j (1 - U_j)`.
    pub fn accepted_load(&self) -> f64 {
        self.schedule.accepted_load()
    }

    /// Number of accepted jobs.
    pub fn accepted_count(&self) -> usize {
        self.schedule.len()
    }

    /// Number of rejected jobs.
    pub fn rejected_count(&self) -> usize {
        self.decisions.len() - self.schedule.len()
    }

    /// Fraction of jobs accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.decisions.is_empty() {
            1.0
        } else {
            self.accepted_count() as f64 / self.decisions.len() as f64
        }
    }

    /// Fraction of the offered volume that was accepted.
    pub fn load_fraction(&self) -> f64 {
        if self.offered_load <= 0.0 {
            1.0
        } else {
            self.accepted_load() / self.offered_load
        }
    }

    /// The measured competitive ratio against a given optimum (or bound).
    pub fn ratio_against(&self, opt: f64) -> f64 {
        if self.accepted_load() <= 0.0 {
            if opt <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            opt / self.accepted_load()
        }
    }
}

/// Applies one irrevocable [`Decision`] to the authoritative schedule,
/// enforcing the commitment contract.
///
/// Returns `Ok(true)` if the job was accepted and committed, `Ok(false)`
/// if it was rejected, and [`SimError::BadCommitment`] if the decision
/// violates any schedule invariant (release, deadline, overlap,
/// duplicate id). This is the single contract-check shared by the
/// sequential [`simulate`] driver and the sharded service engine: both
/// treat algorithms as untrusted.
pub fn apply_decision(
    schedule: &mut Schedule,
    job: &Job,
    decision: Decision,
) -> Result<bool, SimError> {
    match decision {
        Decision::Accept { machine, start } => {
            schedule
                .commit(*job, machine, start)
                .map_err(|source| SimError::BadCommitment {
                    job: job.id,
                    source,
                })?;
            Ok(true)
        }
        Decision::Reject => Ok(false),
    }
}

/// Replays `instance` through `algorithm`, enforcing commitments.
pub fn simulate(
    instance: &Instance,
    algorithm: &mut dyn OnlineScheduler,
) -> Result<SimReport, SimError> {
    if algorithm.machines() != instance.machines() {
        return Err(SimError::MachineMismatch {
            algorithm: algorithm.machines(),
            instance: instance.machines(),
        });
    }
    let mut schedule = Schedule::new(instance.machines());
    let mut decisions = Vec::with_capacity(instance.len());
    for job in instance.jobs() {
        let decision = algorithm.offer(job);
        let accepted = apply_decision(&mut schedule, job, decision)?;
        decisions.push(JobDecision {
            job: job.id,
            accepted,
        });
    }
    let validation = validate_schedule(instance, &schedule);
    if !validation.is_valid() {
        return Err(SimError::InvalidSchedule(validation));
    }
    Ok(SimReport {
        algorithm: algorithm.name().to_string(),
        schedule,
        decisions,
        offered_load: instance.total_load(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_algorithms::{Greedy, Threshold};
    use cslack_kernel::{InstanceBuilder, Job, MachineId, Time};

    fn smoke_instance() -> Instance {
        InstanceBuilder::new(2, 0.5)
            .tight_job(Time::ZERO, 1.0)
            .tight_job(Time::ZERO, 1.0)
            .tight_job(Time::ZERO, 1.0)
            .job(Time::new(0.5), 2.0, Time::new(10.0))
            .build()
            .unwrap()
    }

    #[test]
    fn greedy_run_produces_valid_report() {
        let inst = smoke_instance();
        let mut alg = Greedy::new(2);
        let report = simulate(&inst, &mut alg).unwrap();
        assert_eq!(report.algorithm, "greedy");
        assert_eq!(report.decisions.len(), 4);
        assert!(report.accepted_load() > 0.0);
        assert!(report.acceptance_rate() > 0.0 && report.acceptance_rate() <= 1.0);
        assert!(report.load_fraction() <= 1.0 + 1e-12);
        assert_eq!(
            report.accepted_count() + report.rejected_count(),
            inst.len()
        );
    }

    #[test]
    fn threshold_run_is_reproducible() {
        let inst = smoke_instance();
        let r1 = simulate(&inst, &mut Threshold::for_instance(&inst)).unwrap();
        let r2 = simulate(&inst, &mut Threshold::for_instance(&inst)).unwrap();
        assert_eq!(r1.decisions, r2.decisions);
        assert_eq!(r1.accepted_load(), r2.accepted_load());
    }

    #[test]
    fn machine_mismatch_is_rejected() {
        let inst = smoke_instance(); // m = 2
        let mut alg = Greedy::new(3);
        assert!(matches!(
            simulate(&inst, &mut alg),
            Err(SimError::MachineMismatch { .. })
        ));
    }

    #[test]
    fn ratio_against_handles_zero_load() {
        let inst = smoke_instance();
        let report = simulate(&inst, &mut Greedy::new(2)).unwrap();
        assert!(report.ratio_against(report.accepted_load()) - 1.0 < 1e-12);
        let empty = SimReport {
            algorithm: "x".into(),
            schedule: Schedule::new(1),
            decisions: vec![],
            offered_load: 0.0,
        };
        assert_eq!(empty.ratio_against(5.0), f64::INFINITY);
        assert_eq!(empty.ratio_against(0.0), 1.0);
    }

    // ---- failure injection: misbehaving schedulers -------------------

    /// A scheduler that commits the job before its release date.
    struct StartsEarly;
    impl OnlineScheduler for StartsEarly {
        fn name(&self) -> &'static str {
            "starts-early"
        }
        fn machines(&self) -> usize {
            2
        }
        fn offer(&mut self, job: &Job) -> Decision {
            Decision::Accept {
                machine: MachineId(0),
                start: job.release - 1.0,
            }
        }
        fn reset(&mut self) {}
    }

    /// A scheduler that overlaps everything on machine 0 at time 0.
    struct Overlapper;
    impl OnlineScheduler for Overlapper {
        fn name(&self) -> &'static str {
            "overlapper"
        }
        fn machines(&self) -> usize {
            2
        }
        fn offer(&mut self, _job: &Job) -> Decision {
            Decision::Accept {
                machine: MachineId(0),
                start: Time::ZERO,
            }
        }
        fn reset(&mut self) {}
    }

    /// A scheduler that misses deadlines deliberately.
    struct MissesDeadline;
    impl OnlineScheduler for MissesDeadline {
        fn name(&self) -> &'static str {
            "misses-deadline"
        }
        fn machines(&self) -> usize {
            2
        }
        fn offer(&mut self, job: &Job) -> Decision {
            Decision::Accept {
                machine: MachineId(1),
                start: job.deadline, // completes p after the deadline
            }
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn early_start_is_caught() {
        // Release at 1.0 so `release - 1.0` is a valid Time (>= 0).
        let inst = InstanceBuilder::new(2, 0.5)
            .tight_job(Time::new(1.0), 1.0)
            .build()
            .unwrap();
        match simulate(&inst, &mut StartsEarly) {
            Err(SimError::BadCommitment { job, source }) => {
                assert_eq!(job, JobId(0));
                assert!(matches!(source, KernelError::StartBeforeRelease { .. }));
            }
            other => panic!("expected BadCommitment, got {other:?}"),
        }
    }

    #[test]
    fn overlap_is_caught() {
        let inst = InstanceBuilder::new(2, 0.5)
            .job(Time::ZERO, 1.0, Time::new(9.0))
            .job(Time::ZERO, 1.0, Time::new(9.0))
            .build()
            .unwrap();
        match simulate(&inst, &mut Overlapper) {
            Err(SimError::BadCommitment { source, .. }) => {
                assert!(matches!(source, KernelError::Overlap { .. }));
            }
            other => panic!("expected overlap error, got {other:?}"),
        }
    }

    #[test]
    fn deadline_miss_is_caught() {
        let inst = smoke_instance();
        match simulate(&inst, &mut MissesDeadline) {
            Err(SimError::BadCommitment { source, .. }) => {
                assert!(matches!(source, KernelError::DeadlineMiss { .. }));
            }
            other => panic!("expected deadline miss, got {other:?}"),
        }
    }

    #[test]
    fn sim_error_display_is_informative() {
        let e = SimError::MachineMismatch {
            algorithm: 3,
            instance: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
    }
}
