//! Parallel experiment sweeps: (algorithm × parameter grid × seed).
//!
//! The experiment binaries sample many `(m, eps, seed)` cells and
//! several algorithms per cell; the cells are independent, so the sweep
//! fans them out with rayon. Results stream into a shared vector behind
//! a `parking_lot::Mutex` (cheap, uncontended — each cell pushes once);
//! [`run_streaming`] instead forwards rows through a `crossbeam`
//! channel as they complete, for progress reporting in long sweeps.

use crate::{simulate, SimError};
use cslack_algorithms::{
    ablation, Greedy, LeeClassify, OnlineScheduler, RandomizedClassifySelect, Threshold,
};
use cslack_kernel::Instance;
use cslack_opt as opt;
use cslack_workloads::WorkloadSpec;
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Algorithm selector for sweeps (a factory: one fresh algorithm per
/// cell, so cells never share mutable state).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AlgoKind {
    /// The paper's Algorithm 1.
    Threshold,
    /// Accept-everything best fit.
    Greedy,
    /// Lee-style class reservation.
    LeeClassify,
    /// Corollary-1 randomized single-machine algorithm (ignores `m`,
    /// always one real machine).
    RandomizedClassifySelect,
    /// Ablation: Threshold with forced `k = 1`.
    ThresholdK1,
    /// Ablation: Threshold with forced `k = m`.
    ThresholdKm,
    /// Ablation: flat factors.
    ThresholdConstantF,
    /// Ablation: worst-fit allocation.
    ThresholdWorstFit,
    /// Ablation: latest-start allocation.
    ThresholdLatestStart,
}

impl AlgoKind {
    /// Instantiates the algorithm for a cell.
    pub fn build(self, m: usize, eps: f64, seed: u64) -> Box<dyn OnlineScheduler + Send> {
        match self {
            AlgoKind::Threshold => Box::new(Threshold::new(m, eps)),
            AlgoKind::Greedy => Box::new(Greedy::new(m)),
            AlgoKind::LeeClassify => Box::new(LeeClassify::new(m, eps)),
            AlgoKind::RandomizedClassifySelect => {
                Box::new(RandomizedClassifySelect::new(eps, seed))
            }
            AlgoKind::ThresholdK1 => Box::new(ablation::forced_k(m, eps, 1)),
            AlgoKind::ThresholdKm => Box::new(ablation::forced_k(m, eps, m)),
            AlgoKind::ThresholdConstantF => Box::new(ablation::constant_factors(m, eps)),
            AlgoKind::ThresholdWorstFit => Box::new(ablation::worst_fit(m, eps)),
            AlgoKind::ThresholdLatestStart => Box::new(ablation::latest_start(m, eps)),
        }
    }

    /// The CLI-vocabulary name of the algorithm — the same strings
    /// `cslack` commands accept and the flight-recorder header records.
    pub fn as_str(self) -> &'static str {
        match self {
            AlgoKind::Threshold => "threshold",
            AlgoKind::Greedy => "greedy",
            AlgoKind::LeeClassify => "lee",
            AlgoKind::RandomizedClassifySelect => "randomized",
            AlgoKind::ThresholdK1 => "threshold-k1",
            AlgoKind::ThresholdKm => "threshold-km",
            AlgoKind::ThresholdConstantF => "threshold-constant-f",
            AlgoKind::ThresholdWorstFit => "threshold-worst-fit",
            AlgoKind::ThresholdLatestStart => "threshold-latest-start",
        }
    }

    /// Parses a CLI-vocabulary algorithm name (the inverse of
    /// [`AlgoKind::as_str`]).
    pub fn parse(name: &str) -> Option<AlgoKind> {
        let all = [
            AlgoKind::Threshold,
            AlgoKind::Greedy,
            AlgoKind::LeeClassify,
            AlgoKind::RandomizedClassifySelect,
            AlgoKind::ThresholdK1,
            AlgoKind::ThresholdKm,
            AlgoKind::ThresholdConstantF,
            AlgoKind::ThresholdWorstFit,
            AlgoKind::ThresholdLatestStart,
        ];
        all.into_iter().find(|k| k.as_str() == name)
    }

    /// All deterministic multi-machine algorithms.
    pub fn baselines() -> &'static [AlgoKind] {
        &[AlgoKind::Threshold, AlgoKind::Greedy, AlgoKind::LeeClassify]
    }

    /// The Threshold ablation family (paper's algorithm first).
    pub fn ablations() -> &'static [AlgoKind] {
        &[
            AlgoKind::Threshold,
            AlgoKind::ThresholdK1,
            AlgoKind::ThresholdKm,
            AlgoKind::ThresholdConstantF,
            AlgoKind::ThresholdWorstFit,
            AlgoKind::ThresholdLatestStart,
        ]
    }
}

/// One sweep cell: which algorithm on which generated instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// The algorithm to run.
    pub algo: AlgoKind,
    /// The workload to generate.
    pub spec: WorkloadSpec,
}

/// The measured outcome of one cell.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Algorithm name (from the instantiated scheduler).
    pub algorithm: String,
    /// Machine count.
    pub m: usize,
    /// System slack.
    pub eps: f64,
    /// Workload seed.
    pub seed: u64,
    /// Jobs in the instance.
    pub n: usize,
    /// Online objective value.
    pub online_load: f64,
    /// Offline estimate used as denominator (exact when available,
    /// else the flow upper bound).
    pub opt_denominator: f64,
    /// Whether the denominator is exact.
    pub opt_is_exact: bool,
    /// Measured ratio `opt_denominator / online_load`.
    pub ratio: f64,
    /// Acceptance rate.
    pub acceptance_rate: f64,
}

/// Runs one cell (generation + simulation + offline estimate).
pub fn run_cell(cell: &Cell, exact_limit: usize) -> Result<Row, SimError> {
    let instance = cell
        .spec
        .generate()
        .expect("workload specs in sweeps must be valid");
    // The randomized algorithm runs on a single real machine regardless
    // of the spec's m; everything else matches the instance.
    let mut algo = cell
        .algo
        .build(instance.machines(), instance.slack(), cell.spec.seed);
    let (report, instance) = if algo.machines() != instance.machines() {
        let single = remachine(&instance, algo.machines());
        (simulate(&single, algo.as_mut())?, single)
    } else {
        (simulate(&instance, algo.as_mut())?, instance)
    };
    let est = opt::estimate(&instance, exact_limit);
    let denom = est.denominator();
    Ok(Row {
        algorithm: report.algorithm.clone(),
        m: instance.machines(),
        eps: instance.slack(),
        seed: cell.spec.seed,
        n: instance.len(),
        online_load: report.accepted_load(),
        opt_denominator: denom,
        opt_is_exact: est.exact.is_some(),
        ratio: report.ratio_against(denom),
        acceptance_rate: report.acceptance_rate(),
    })
}

/// Rebuilds an instance with a different machine count (same jobs).
fn remachine(instance: &Instance, m: usize) -> Instance {
    let mut b = cslack_kernel::InstanceBuilder::with_capacity(m, instance.slack(), instance.len());
    for j in instance.jobs() {
        b.push(j.release, j.proc_time, j.deadline);
    }
    b.build().expect("remachined instance stays valid")
}

/// Runs all cells in parallel, preserving input order in the output.
pub fn run(cells: &[Cell], exact_limit: usize) -> Vec<Row> {
    let rows: Mutex<Vec<(usize, Row)>> = Mutex::new(Vec::with_capacity(cells.len()));
    cells.par_iter().enumerate().for_each(|(i, cell)| {
        let row = run_cell(cell, exact_limit).expect("sweep cell must simulate cleanly");
        rows.lock().push((i, row));
    });
    let mut indexed = rows.into_inner();
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Runs all cells in parallel, streaming rows to `on_row` as they finish
/// (unordered). Uses a crossbeam channel between the rayon pool and the
/// caller's thread.
pub fn run_streaming<F: FnMut(Row)>(cells: &[Cell], exact_limit: usize, mut on_row: F) {
    let (tx, rx) = crossbeam::channel::unbounded::<Row>();
    crossbeam::scope(|scope| {
        scope.spawn(move |_| {
            cells.par_iter().for_each_with(tx, |tx, cell| {
                let row = run_cell(cell, exact_limit).expect("sweep cell must simulate cleanly");
                let _ = tx.send(row);
            });
        });
        for row in rx.iter() {
            on_row(row);
        }
    })
    .expect("sweep worker thread panicked");
}

/// Builds the full cross product of algorithms × slacks × seeds over a
/// base spec.
pub fn grid(base: &WorkloadSpec, algos: &[AlgoKind], epss: &[f64], seeds: &[u64]) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(algos.len() * epss.len() * seeds.len());
    for &algo in algos {
        for &eps in epss {
            for &seed in seeds {
                let mut spec = base.clone();
                spec.eps = eps;
                spec.seed = seed;
                cells.push(Cell { algo, spec });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> WorkloadSpec {
        WorkloadSpec::default_spec(2, 0.5, 10, 1)
    }

    #[test]
    fn run_cell_produces_sane_row() {
        let cell = Cell {
            algo: AlgoKind::Threshold,
            spec: base_spec(),
        };
        let row = run_cell(&cell, 16).unwrap();
        assert_eq!(row.algorithm, "threshold");
        assert_eq!(row.n, 10);
        assert!(row.opt_is_exact);
        assert!(row.ratio >= 1.0 - 1e-9, "ratio {} < 1", row.ratio);
        assert!(row.online_load <= row.opt_denominator + 1e-9);
    }

    #[test]
    fn parallel_run_preserves_order_and_determinism() {
        let cells = grid(
            &base_spec(),
            AlgoKind::baselines(),
            &[0.25, 0.5],
            &[1, 2, 3],
        );
        assert_eq!(cells.len(), 3 * 2 * 3);
        let a = run(&cells, 12);
        let b = run(&cells, 12);
        assert_eq!(a.len(), cells.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.algorithm, y.algorithm);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.online_load, y.online_load);
            assert_eq!(x.ratio, y.ratio);
        }
    }

    #[test]
    fn streaming_run_delivers_every_row() {
        let cells = grid(&base_spec(), &[AlgoKind::Greedy], &[0.5], &[1, 2, 3, 4]);
        let mut n = 0;
        run_streaming(&cells, 12, |_row| n += 1);
        assert_eq!(n, 4);
    }

    #[test]
    fn randomized_algorithm_runs_on_one_machine() {
        let cell = Cell {
            algo: AlgoKind::RandomizedClassifySelect,
            spec: base_spec(), // spec says m = 2; algorithm forces m = 1
        };
        let row = run_cell(&cell, 12).unwrap();
        assert_eq!(row.m, 1);
        assert!(row.ratio >= 1.0 - 1e-9);
    }

    #[test]
    fn threshold_never_loses_to_its_theorem2_bound_on_small_grids() {
        let cells = grid(
            &WorkloadSpec::default_spec(2, 0.5, 12, 0),
            &[AlgoKind::Threshold],
            &[0.2, 0.5, 1.0],
            &[10, 20, 30],
        );
        for row in run(&cells, 14) {
            // Per-row RatioFn construction is cheap: the corner values
            // and parameter solves come from cslack_ratio::table's
            // process-wide cache, not a fresh recursion per row.
            let bound = cslack_ratio::RatioFn::new(row.m).threshold_upper_bound(row.eps);
            assert!(
                row.ratio <= bound + 1e-6,
                "eps={} seed={}: measured {} > bound {}",
                row.eps,
                row.seed,
                row.ratio,
                bound
            );
        }
    }

    #[test]
    fn ablation_list_contains_paper_algorithm_first() {
        assert_eq!(AlgoKind::ablations()[0], AlgoKind::Threshold);
        assert!(AlgoKind::ablations().len() >= 5);
    }
}
