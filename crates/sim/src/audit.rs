//! Trace-driven **replay** and **invariant auditing** of flight
//! recordings.
//!
//! A [`FlightSnapshot`] (the `.cfr` payload produced by the engine's
//! flight recorder) carries everything this module needs:
//!
//! * [`reconstruct_instance`] rebuilds the [`Instance`] from the
//!   recorded submissions and decisions;
//! * [`replay_snapshot`] re-runs a freshly built scheduler per shard
//!   over the recorded per-shard submission order and verifies the
//!   regenerated decision stream is **bit-identical** to the recorded
//!   one (f64 fields compared via `to_bits`), reporting the first
//!   diverging index otherwise — any engine bug becomes a one-file
//!   repro;
//! * [`audit_snapshot`] re-checks, from the trace alone, every
//!   invariant the paper's immediate-commitment model relies on: no
//!   lane overlap, `r_j <= s_j <= d_j - p_j` per commitment, the slack
//!   condition at admission, threshold accepts/rejects consistent with
//!   the recorded load and the `c(eps, m)` factor table, and reported
//!   counters equal to recomputed ones.
//!
//! The shard layout is mirrored from the engine (contiguous machine
//! groups, `shard_of = id mod shards`); [`shard_group_bounds`] is the
//! single place the formula is duplicated, and the engine's test suite
//! pins the two against each other.

use crate::SimError;
use cslack_algorithms::OnlineScheduler;
use cslack_kernel::{tol, Instance, Job, JobId, MachineId, Schedule, Time};
use cslack_obs::flight::{FlightEvent, FlightSnapshot};
use cslack_obs::{DecisionEvent, RejectCounts, RejectReason};
use serde::Serialize;
use std::collections::BTreeMap;

/// The machine-id range `[lo, hi)` owned by `shard` — the same
/// contiguous split as the engine's `machine_groups` (leading
/// `m mod shards` groups get the extra machine).
pub fn shard_group_bounds(m: usize, shards: usize, shard: usize) -> (usize, usize) {
    let lo = shard * m / shards.max(1);
    let hi = (shard + 1) * m / shards.max(1);
    (lo, hi)
}

// ---------------------------------------------------------------------
// Instance reconstruction
// ---------------------------------------------------------------------

/// Rebuilds the problem instance from a flight recording.
///
/// Job parameters are taken from submission events and decision events
/// (both carry `(r_j, p_j, d_j)`); when a job appears in both, the two
/// records must agree bit-for-bit. Fails if the recording dropped
/// events for some job entirely (ids must come out dense) or if two
/// records disagree about a job.
pub fn reconstruct_instance(snap: &FlightSnapshot) -> Result<Instance, String> {
    let mut jobs: BTreeMap<u32, Job> = BTreeMap::new();
    let mut insert = |job: Job| -> Result<(), String> {
        if let Some(prev) = jobs.get(&job.id.0) {
            if prev.release.raw().to_bits() != job.release.raw().to_bits()
                || prev.proc_time.to_bits() != job.proc_time.to_bits()
                || prev.deadline.raw().to_bits() != job.deadline.raw().to_bits()
            {
                return Err(format!(
                    "recording is self-inconsistent: {} appears with different parameters",
                    job.id
                ));
            }
        } else {
            jobs.insert(job.id.0, job);
        }
        Ok(())
    };
    for shard in &snap.shards {
        for event in &shard.events {
            match event {
                FlightEvent::Submission {
                    job,
                    release,
                    proc_time,
                    deadline,
                    ..
                } => insert(Job::new(
                    JobId(*job),
                    Time::new(*release),
                    *proc_time,
                    Time::new(*deadline),
                ))?,
                FlightEvent::Decision(d) => insert(Job::new(
                    JobId(d.job),
                    Time::new(d.release),
                    d.proc_time,
                    Time::new(d.deadline),
                ))?,
                FlightEvent::Commitment { .. } => {}
            }
        }
    }
    Instance::from_parts(
        snap.header.m as usize,
        snap.header.eps,
        jobs.into_values().collect(),
    )
    .map_err(|e| format!("cannot reconstruct instance: {e}"))
}

// ---------------------------------------------------------------------
// Deterministic replay
// ---------------------------------------------------------------------

/// Where and how a replay diverged from the recording.
#[derive(Clone, Debug, Serialize)]
pub struct ReplayDivergence {
    /// The shard whose stream diverged.
    pub shard: u32,
    /// The per-shard decision index (seq) of the first mismatch.
    pub seq: u64,
    /// The job being decided at the divergence.
    pub job: u32,
    /// The decision field that differs.
    pub field: &'static str,
    /// The recorded value, rendered.
    pub recorded: String,
    /// The regenerated value, rendered.
    pub regenerated: String,
}

/// The outcome of a deterministic replay.
#[derive(Clone, Debug, Serialize)]
pub struct ReplayReport {
    /// Decisions re-derived and compared across all shards.
    pub decisions_replayed: u64,
    /// The first divergence found, if any (`None` = bit-identical).
    pub divergence: Option<ReplayDivergence>,
}

impl ReplayReport {
    /// Whether the regenerated stream matched the recording exactly.
    pub fn is_identical(&self) -> bool {
        self.divergence.is_none()
    }
}

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

fn render<T: std::fmt::Debug>(v: &T) -> String {
    format!("{v:?}")
}

/// Bit-exact comparison of one recorded decision against a freshly
/// regenerated one (f64 fields via `to_bits`). `machine`/`start` are
/// the regenerated placement already remapped to global machine ids.
/// Returns the first differing field, `None` when identical.
fn compare_decision(
    shard: u32,
    rec: &DecisionEvent,
    accepted: bool,
    machine: Option<u32>,
    start: Option<f64>,
    info: &cslack_algorithms::DecisionInfo,
) -> Option<ReplayDivergence> {
    let diverge = |field: &'static str, recorded: String, regenerated: String| ReplayDivergence {
        shard,
        seq: rec.seq,
        job: rec.job,
        field,
        recorded,
        regenerated,
    };
    if rec.accepted != accepted {
        Some(diverge(
            "accepted",
            render(&rec.accepted),
            render(&accepted),
        ))
    } else if rec.machine != machine {
        Some(diverge("machine", render(&rec.machine), render(&machine)))
    } else if opt_bits(rec.start) != opt_bits(start) {
        Some(diverge("start", render(&rec.start), render(&start)))
    } else if opt_bits(rec.threshold) != opt_bits(info.threshold) {
        Some(diverge(
            "threshold",
            render(&rec.threshold),
            render(&info.threshold),
        ))
    } else if opt_bits(rec.min_load) != opt_bits(info.min_load) {
        Some(diverge(
            "min_load",
            render(&rec.min_load),
            render(&info.min_load),
        ))
    } else if rec.candidates != info.candidates {
        Some(diverge(
            "candidates",
            render(&rec.candidates),
            render(&info.candidates),
        ))
    } else if rec.reject_reason != info.reject_reason {
        Some(diverge(
            "reject_reason",
            render(&rec.reject_reason),
            render(&info.reject_reason),
        ))
    } else {
        None
    }
}

/// Replays one shard's recorded event stream through a fresh scheduler
/// and rebuilds the shard-local committed schedule — the state-handoff
/// primitive behind shard recovery: a replacement worker calls this
/// with the dead shard's flight ring contents and a scheduler built by
/// the same builder the original run used.
///
/// Verifies the regenerated decision stream is **bit-identical** to
/// the recording (the same comparison [`replay_snapshot`] uses); any
/// divergence — or a gap in the seq stream — is an error, because a
/// schedule rebuilt from a diverging replay would not match the
/// commitments the dead worker actually made. On success the returned
/// schedule holds exactly the pre-crash accepts (machine ids
/// shard-local, as the worker keeps them) and the scheduler's internal
/// load state matches the dead worker's at the instant of the crash,
/// so it can keep deciding from decision `seq = decisions` onward.
///
/// `group_lo` is the shard's first global machine id (recorded
/// placements are global; the rebuild maps them back).
pub fn rebuild_shard_state(
    events: &[FlightEvent],
    shard: u32,
    group_lo: usize,
    group_len: usize,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<(Schedule, u64), String> {
    let mut decisions: Vec<&DecisionEvent> = events
        .iter()
        .filter_map(|e| match e {
            FlightEvent::Decision(d) => Some(&d.event),
            _ => None,
        })
        .collect();
    decisions.sort_by_key(|d| d.seq);
    let mut schedule = Schedule::new(group_len.max(1));
    for (i, rec) in decisions.iter().enumerate() {
        if rec.seq != i as u64 {
            return Err(format!(
                "shard {shard} decision stream has a gap at seq {i} (found {}); \
                 recovery requires a complete recording",
                rec.seq
            ));
        }
        let job = Job::new(
            JobId(rec.job),
            Time::new(rec.release),
            rec.proc_time,
            Time::new(rec.deadline),
        );
        let (decision, info) = scheduler.offer_explained(&job);
        let (accepted, machine, start) = match decision {
            cslack_algorithms::Decision::Accept { machine, start } => {
                (true, Some(group_lo as u32 + machine.0), Some(start.raw()))
            }
            cslack_algorithms::Decision::Reject => (false, None, None),
        };
        if let Some(d) = compare_decision(shard, rec, accepted, machine, start, &info) {
            return Err(format!(
                "replay diverged at shard {} seq {} (J{}): field {} recorded {} \
                 but regenerated {}",
                d.shard, d.seq, d.job, d.field, d.recorded, d.regenerated
            ));
        }
        crate::apply_decision(&mut schedule, &job, decision)
            .map_err(|e| format!("replayed decision failed to re-commit: {e}"))?;
    }
    Ok((schedule, decisions.len() as u64))
}

/// Re-runs the recorded run and compares decision streams bit for bit.
///
/// `builder(shard, group_size)` must construct the scheduler exactly as
/// the original run did (same algorithm, parameters, and per-shard seed
/// derivation) — the CLI passes the same closure here and to
/// `Engine::start`. Replay requires a complete recording: a shard with
/// dropped events cannot be replayed faithfully and is an error.
pub fn replay_snapshot<F>(snap: &FlightSnapshot, builder: F) -> Result<ReplayReport, String>
where
    F: Fn(usize, usize) -> Box<dyn OnlineScheduler>,
{
    let m = snap.header.m as usize;
    let shards = snap.header.shards as usize;
    if m == 0 || shards == 0 || shards > m {
        return Err(format!(
            "recording has an invalid layout: m={m}, shards={shards}"
        ));
    }
    let mut replayed = 0u64;
    for block in &snap.shards {
        if block.dropped > 0 {
            return Err(format!(
                "shard {} dropped {} events; replay requires a complete recording \
                 (raise --flight-cap)",
                block.shard, block.dropped
            ));
        }
        let shard = block.shard as usize;
        let (lo, hi) = shard_group_bounds(m, shards, shard);
        let mut scheduler = builder(shard, hi - lo);
        let mut decisions: Vec<&DecisionEvent> = block
            .events
            .iter()
            .filter_map(|e| match e {
                FlightEvent::Decision(d) => Some(&d.event),
                _ => None,
            })
            .collect();
        decisions.sort_by_key(|d| d.seq);
        for (i, rec) in decisions.iter().enumerate() {
            if rec.seq != i as u64 {
                return Err(format!(
                    "shard {} decision stream has a gap at seq {} (found {}); \
                     replay requires a complete recording",
                    block.shard, i, rec.seq
                ));
            }
            let job = Job::new(
                JobId(rec.job),
                Time::new(rec.release),
                rec.proc_time,
                Time::new(rec.deadline),
            );
            let (decision, info) = scheduler.offer_explained(&job);
            let (accepted, machine, start) = match decision {
                cslack_algorithms::Decision::Accept { machine, start } => {
                    (true, Some(lo as u32 + machine.0), Some(start.raw()))
                }
                cslack_algorithms::Decision::Reject => (false, None, None),
            };
            replayed += 1;
            if let Some(d) = compare_decision(block.shard, rec, accepted, machine, start, &info) {
                return Ok(ReplayReport {
                    decisions_replayed: replayed,
                    divergence: Some(d),
                });
            }
        }
    }
    Ok(ReplayReport {
        decisions_replayed: replayed,
        divergence: None,
    })
}

// ---------------------------------------------------------------------
// Invariant audit
// ---------------------------------------------------------------------

/// One invariant violation found by [`audit_snapshot`].
#[derive(Clone, Debug, Serialize)]
pub struct AuditViolation {
    /// Which check failed (`commitment`, `slack`, `threshold`,
    /// `ctable`, `consistency`, `counters`, `stamps`).
    pub check: &'static str,
    /// The shard the offending event came from (`None` for run-level
    /// checks such as counters).
    pub shard: Option<u32>,
    /// The job involved, when one is.
    pub job: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

/// The outcome of a trace-driven invariant audit.
#[derive(Clone, Debug, Serialize)]
pub struct AuditReport {
    /// Decisions examined.
    pub decisions_checked: u64,
    /// Commitments re-committed into a fresh schedule.
    pub commitments_checked: u64,
    /// Whether the header counters could be recomputed and compared
    /// (`false` when the rings dropped events, making totals
    /// unrecoverable).
    pub counters_checked: bool,
    /// Events the bounded rings dropped (a nonzero value weakens the
    /// audit: only the surviving window is checked).
    pub dropped: u64,
    /// Everything that failed.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether every checked invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The factor `f_m` (largest graded factor) the Threshold engine uses
/// for a group of `g` machines under slack `eps` — shared through the
/// memoized ratio table, exactly as the engine derives it.
fn threshold_last_factor(g: usize, eps: f64) -> f64 {
    let eps_params = eps.min(1.0);
    let k = cslack_ratio::RatioFn::new(g).phase(eps_params);
    let f = cslack_ratio::table::solve(g, k, eps_params).f;
    *f.last().expect("factor table is never empty")
}

/// Audits a flight recording against the immediate-commitment model.
///
/// All checks run from the trace alone — no live engine state. The
/// `c(eps, m)` consistency check is gated to `algorithm == "threshold"`
/// (ablated variants deliberately alter the factor table).
pub fn audit_snapshot(snap: &FlightSnapshot) -> AuditReport {
    let m = snap.header.m as usize;
    let shards = snap.header.shards as usize;
    let eps = snap.header.eps;
    let mut report = AuditReport {
        decisions_checked: 0,
        commitments_checked: 0,
        counters_checked: false,
        dropped: snap.total_dropped(),
        violations: Vec::new(),
    };
    if m == 0 || shards == 0 || shards > m {
        report.violations.push(AuditViolation {
            check: "consistency",
            shard: None,
            job: None,
            message: format!("invalid layout: m={m}, shards={shards}"),
        });
        return report;
    }

    // Job parameters by id, for re-committing commitments that lost
    // their decision event to ring pressure.
    let mut params: BTreeMap<u32, Job> = BTreeMap::new();
    for shard in &snap.shards {
        for event in &shard.events {
            let job = match event {
                FlightEvent::Submission {
                    job,
                    release,
                    proc_time,
                    deadline,
                    ..
                } => Job::new(
                    JobId(*job),
                    Time::new(*release),
                    *proc_time,
                    Time::new(*deadline),
                ),
                FlightEvent::Decision(d) => Job::new(
                    JobId(d.job),
                    Time::new(d.release),
                    d.proc_time,
                    Time::new(d.deadline),
                ),
                FlightEvent::Commitment { .. } => continue,
            };
            if let Some(prev) = params.get(&job.id.0) {
                if prev != &job {
                    report.violations.push(AuditViolation {
                        check: "consistency",
                        shard: Some(event.shard()),
                        job: Some(job.id.0),
                        message: format!("{} recorded with conflicting parameters", job.id),
                    });
                }
            } else {
                params.insert(job.id.0, job);
            }
        }
    }

    // Re-commit every commitment into a fresh authoritative schedule:
    // Schedule::commit enforces the machine range, the window
    // r_j <= s_j <= d_j - p_j, lane overlap, and commitment uniqueness.
    let mut schedule = Schedule::new(m);
    let mut accepted_recomputed = 0u64;
    let mut rejected_recomputed = RejectCounts::default();
    for block in &snap.shards {
        let shard = block.shard as usize;
        let (lo, hi) = shard_group_bounds(m, shards, shard);
        let threshold_algo = snap.header.algorithm == "threshold";
        let f_last = if threshold_algo {
            Some(threshold_last_factor(hi - lo, eps))
        } else {
            None
        };
        for event in &block.events {
            match event {
                FlightEvent::Submission { job, .. } => {
                    if *job as usize % shards != shard {
                        report.violations.push(AuditViolation {
                            check: "consistency",
                            shard: Some(block.shard),
                            job: Some(*job),
                            message: format!(
                                "J{job} was routed to shard {shard}, expected {}",
                                *job as usize % shards
                            ),
                        });
                    }
                }
                FlightEvent::Decision(d) => {
                    report.decisions_checked += 1;
                    if d.accepted {
                        accepted_recomputed += 1;
                    } else {
                        rejected_recomputed
                            .bump(d.reject_reason.unwrap_or(RejectReason::Unattributed));
                    }
                    audit_decision(d, block.shard, lo, eps, f_last, &mut report);
                    // Stage stamps, when present, must respect pipeline
                    // order on the server's clock. v1 recordings carry
                    // no stamps and pass vacuously.
                    if !d.stamps.server_monotone() {
                        report.violations.push(AuditViolation {
                            check: "stamps",
                            shard: Some(block.shard),
                            job: Some(d.job),
                            message: format!(
                                "J{} timeline stamps are not monotone: {:?}",
                                d.job, d.stamps.0
                            ),
                        });
                    }
                }
                FlightEvent::Commitment {
                    job,
                    machine,
                    start,
                    ..
                } => {
                    report.commitments_checked += 1;
                    if (*machine as usize) < lo || (*machine as usize) >= hi {
                        report.violations.push(AuditViolation {
                            check: "commitment",
                            shard: Some(block.shard),
                            job: Some(*job),
                            message: format!(
                                "J{job} committed to machine {machine}, outside the \
                                 shard's group [{lo}, {hi})"
                            ),
                        });
                    }
                    match params.get(job) {
                        Some(j) => {
                            if let Err(e) =
                                schedule.commit(*j, MachineId(*machine), Time::new(*start))
                            {
                                report.violations.push(AuditViolation {
                                    check: "commitment",
                                    shard: Some(block.shard),
                                    job: Some(*job),
                                    message: e.to_string(),
                                });
                            }
                        }
                        None => {
                            // Without the job's parameters the window
                            // checks are impossible; only a complete
                            // recording makes this a hard violation.
                            if report.dropped == 0 {
                                report.violations.push(AuditViolation {
                                    check: "consistency",
                                    shard: Some(block.shard),
                                    job: Some(*job),
                                    message: format!(
                                        "commitment for J{job} has no matching \
                                         submission or decision"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Counter cross-check: only meaningful when nothing was dropped.
    if report.dropped == 0 {
        report.counters_checked = true;
        let h = &snap.header;
        if h.submitted != report.decisions_checked {
            report.violations.push(AuditViolation {
                check: "counters",
                shard: None,
                job: None,
                message: format!(
                    "engine reported {} submissions, trace holds {} decisions",
                    h.submitted, report.decisions_checked
                ),
            });
        }
        if h.accepted != accepted_recomputed {
            report.violations.push(AuditViolation {
                check: "counters",
                shard: None,
                job: None,
                message: format!(
                    "engine reported {} accepts, trace recomputes {}",
                    h.accepted, accepted_recomputed
                ),
            });
        }
        if h.rejected != rejected_recomputed {
            report.violations.push(AuditViolation {
                check: "counters",
                shard: None,
                job: None,
                message: format!(
                    "engine reported rejects {:?}, trace recomputes {:?}",
                    h.rejected, rejected_recomputed
                ),
            });
        }
    }
    report
}

/// Per-decision checks: slack at admission, commitment window,
/// threshold-rule consistency, and the `c(eps, m)` lower bound on the
/// recorded threshold.
fn audit_decision(
    d: &DecisionEvent,
    shard: u32,
    group_lo: usize,
    eps: f64,
    f_last: Option<f64>,
    report: &mut AuditReport,
) {
    let mut flag = |check: &'static str, message: String| {
        report.violations.push(AuditViolation {
            check,
            shard: Some(shard),
            job: Some(d.job),
            message,
        });
    };
    let job = Job::new(
        JobId(d.job),
        Time::new(d.release),
        d.proc_time,
        Time::new(d.deadline),
    );
    if d.accepted {
        // Admission is only legal for jobs satisfying the slack
        // condition d_j >= r_j + (1 + eps) p_j.
        if !job.satisfies_slack(eps) {
            flag(
                "slack",
                format!(
                    "J{} accepted but violates the slack condition: d={} < r + (1+eps)p = {}",
                    d.job,
                    d.deadline,
                    d.release + (1.0 + eps) * d.proc_time
                ),
            );
        }
        match (d.machine, d.start) {
            (Some(machine), Some(start)) => {
                if (machine as usize) < group_lo {
                    flag(
                        "commitment",
                        format!(
                            "J{} accepted on machine {machine} below its shard group",
                            d.job
                        ),
                    );
                }
                // r_j <= s_j <= d_j - p_j, with the kernel tolerance.
                if !job.feasible_start(Time::new(start)) {
                    flag(
                        "commitment",
                        format!(
                            "J{} start {start} outside the feasible window [{}, {}]",
                            d.job,
                            d.release,
                            job.latest_start()
                        ),
                    );
                }
            }
            _ => flag(
                "consistency",
                format!("J{} accepted without a recorded placement", d.job),
            ),
        }
    }
    if let Some(threshold) = d.threshold {
        // The threshold rule (paper line 5): accept iff d_j >= d_lim.
        if d.accepted && !tol::approx_ge(d.deadline, threshold) {
            flag(
                "threshold",
                format!(
                    "J{} accepted with d={} below the recorded threshold {threshold}",
                    d.job, d.deadline
                ),
            );
        }
        if d.reject_reason == Some(RejectReason::ThresholdExceeded)
            && tol::approx_ge(d.deadline, threshold)
        {
            flag(
                "threshold",
                format!(
                    "J{} rejected as ThresholdExceeded although d={} meets the \
                     recorded threshold {threshold}",
                    d.job, d.deadline
                ),
            );
        }
        // d_lim = max_h (r_j + l(m_h) f_h) can never undercut r_j ...
        if !tol::approx_ge(threshold, d.release) {
            flag(
                "ctable",
                format!(
                    "J{} threshold {threshold} below the release date {}",
                    d.job, d.release
                ),
            );
        }
        // ... nor r_j + l(m_m) f_m, the least-loaded machine's term
        // (f_k < ... < f_m, and min_load is l(m_m)).
        if let (Some(f_last), Some(min_load)) = (f_last, d.min_load) {
            let bound = d.release + min_load * f_last;
            if !tol::approx_ge(threshold, bound) {
                flag(
                    "ctable",
                    format!(
                        "J{} threshold {threshold} below the c(eps,m) lower bound \
                         {bound} = r + min_load * f_m",
                        d.job
                    ),
                );
            }
        }
    }
}

/// Convenience: audits and converts a dirty report into a [`SimError`]
/// — the shape the engine's background audit mode wants.
pub fn audit_as_sim_error(snap: &FlightSnapshot) -> Result<AuditReport, Box<SimError>> {
    let report = audit_snapshot(snap);
    if report.is_clean() {
        Ok(report)
    } else {
        Err(Box::new(SimError::AuditFailed {
            violations: report.violations.len(),
            first: report.violations[0].message.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_algorithms::Threshold;
    use cslack_obs::flight::{FlightHeader, ShardFlight};

    fn record_run(m: usize, shards: usize, eps: f64, jobs: &[(f64, f64, f64)]) -> FlightSnapshot {
        // A miniature in-process engine: per-shard Threshold schedulers
        // over contiguous machine groups, exactly the engine layout.
        let mut blocks: Vec<ShardFlight> = (0..shards)
            .map(|s| ShardFlight {
                shard: s as u32,
                dropped: 0,
                events: Vec::new(),
            })
            .collect();
        let mut schedulers: Vec<Threshold> = (0..shards)
            .map(|s| {
                let (lo, hi) = shard_group_bounds(m, shards, s);
                Threshold::new(hi - lo, eps)
            })
            .collect();
        let mut seqs = vec![0u64; shards];
        let mut accepted = 0u64;
        let mut rejected = RejectCounts::default();
        for (id, &(r, p, d)) in jobs.iter().enumerate() {
            let shard = id % shards;
            let (lo, _) = shard_group_bounds(m, shards, shard);
            let seq = seqs[shard];
            seqs[shard] += 1;
            let job = Job::new(JobId(id as u32), Time::new(r), p, Time::new(d));
            blocks[shard].events.push(FlightEvent::Submission {
                seq,
                shard: shard as u32,
                job: id as u32,
                release: r,
                proc_time: p,
                deadline: d,
            });
            let (decision, info) = schedulers[shard].offer_explained(&job);
            let (acc, machine, start) = match decision {
                cslack_algorithms::Decision::Accept { machine, start } => {
                    (true, Some(lo as u32 + machine.0), Some(start.raw()))
                }
                cslack_algorithms::Decision::Reject => (false, None, None),
            };
            if acc {
                accepted += 1;
            } else {
                rejected.bump(info.reject_reason.unwrap_or(RejectReason::Unattributed));
            }
            blocks[shard].events.push(FlightEvent::Decision(
                DecisionEvent {
                    seq,
                    job: id as u32,
                    shard,
                    release: r,
                    proc_time: p,
                    deadline: d,
                    candidates: info.candidates,
                    threshold: info.threshold,
                    min_load: info.min_load,
                    accepted: acc,
                    machine,
                    start,
                    reject_reason: info.reject_reason,
                    latency_ns: 5,
                    queue_wait_ns: 1,
                }
                .into(),
            ));
            if let (Some(machine), Some(start)) = (machine, start) {
                blocks[shard].events.push(FlightEvent::Commitment {
                    seq,
                    shard: shard as u32,
                    job: id as u32,
                    machine,
                    start,
                });
            }
        }
        FlightSnapshot {
            header: FlightHeader {
                m: m as u32,
                shards: shards as u32,
                eps,
                seed: 0,
                algorithm: "threshold".to_string(),
                submitted: jobs.len() as u64,
                accepted,
                rejected,
            },
            shards: blocks,
        }
    }

    fn workload() -> Vec<(f64, f64, f64)> {
        (0..40)
            .map(|i| {
                let r = (i / 4) as f64 * 0.5;
                let p = 0.5 + (i % 5) as f64 * 0.4;
                let d = r + 1.6 * p + (i % 3) as f64;
                (r, p, d)
            })
            .collect()
    }

    #[test]
    fn clean_run_replays_bit_identically_and_audits_clean() {
        for shards in [1usize, 2, 4] {
            let snap = record_run(4, shards, 0.5, &workload());
            let report = replay_snapshot(&snap, |_s, g| Box::new(Threshold::new(g, 0.5)))
                .expect("replay should run");
            assert!(
                report.is_identical(),
                "shards={shards}: diverged at {:?}",
                report.divergence
            );
            assert_eq!(report.decisions_replayed, 40);
            let audit = audit_snapshot(&snap);
            assert!(audit.is_clean(), "shards={shards}: {:?}", audit.violations);
            assert!(audit.counters_checked);
            assert_eq!(audit.decisions_checked, 40);
        }
    }

    #[test]
    fn reconstruction_matches_original_parameters() {
        let jobs = workload();
        let snap = record_run(4, 2, 0.5, &jobs);
        let inst = reconstruct_instance(&snap).unwrap();
        assert_eq!(inst.machines(), 4);
        assert_eq!(inst.len(), jobs.len());
        for (j, &(r, p, d)) in inst.jobs().iter().zip(jobs.iter()) {
            assert_eq!(j.release.raw(), r);
            assert_eq!(j.proc_time, p);
            assert_eq!(j.deadline.raw(), d);
        }
    }

    #[test]
    fn rebuild_shard_state_recommits_exactly_the_recorded_accepts() {
        let snap = record_run(4, 2, 0.5, &workload());
        for block in &snap.shards {
            let shard = block.shard as usize;
            let (lo, hi) = shard_group_bounds(4, 2, shard);
            let mut scheduler = Threshold::new(hi - lo, 0.5);
            let (schedule, replayed) =
                rebuild_shard_state(&block.events, block.shard, lo, hi - lo, &mut scheduler)
                    .expect("clean recording rebuilds");
            assert_eq!(replayed, 20);
            let accepts = block
                .events
                .iter()
                .filter(|e| matches!(e, FlightEvent::Decision(d) if d.accepted))
                .count();
            assert_eq!(schedule.len(), accepts);
        }
    }

    #[test]
    fn rebuild_shard_state_rejects_divergence_and_gaps() {
        let mut snap = record_run(4, 1, 0.5, &workload());
        // Tampered accept: the rebuild must refuse to fabricate state.
        if let Some(d) = snap.shards[0].events.iter_mut().find_map(|e| match e {
            FlightEvent::Decision(d) if d.accepted => Some(d),
            _ => None,
        }) {
            d.accepted = false;
            d.machine = None;
            d.start = None;
        }
        let mut scheduler = Threshold::new(4, 0.5);
        let err = rebuild_shard_state(&snap.shards[0].events, 0, 0, 4, &mut scheduler)
            .expect_err("tampering must be detected");
        assert!(err.contains("diverged"), "unexpected error: {err}");

        // A seq gap is equally fatal.
        let snap = record_run(4, 1, 0.5, &workload());
        let gappy: Vec<FlightEvent> = snap.shards[0]
            .events
            .iter()
            .filter(|e| match e {
                FlightEvent::Decision(d) => d.seq != 3,
                _ => true,
            })
            .cloned()
            .collect();
        let mut scheduler = Threshold::new(4, 0.5);
        let err = rebuild_shard_state(&gappy, 0, 0, 4, &mut scheduler)
            .expect_err("gaps must be detected");
        assert!(err.contains("gap"), "unexpected error: {err}");
    }

    #[test]
    fn replay_detects_a_tampered_decision() {
        let mut snap = record_run(4, 2, 0.5, &workload());
        // Flip the first recorded accept on shard 0 into a reject.
        let tampered = snap.shards[0]
            .events
            .iter_mut()
            .find_map(|e| match e {
                FlightEvent::Decision(d) if d.accepted => Some(d),
                _ => None,
            })
            .expect("run accepts something");
        tampered.accepted = false;
        tampered.machine = None;
        tampered.start = None;
        let report = replay_snapshot(&snap, |_s, g| Box::new(Threshold::new(g, 0.5))).unwrap();
        let div = report.divergence.expect("tampering must be detected");
        assert_eq!(div.field, "accepted");
        assert_eq!(div.shard, 0);
    }

    #[test]
    fn replay_refuses_incomplete_recordings() {
        let mut snap = record_run(4, 2, 0.5, &workload());
        snap.shards[1].dropped = 3;
        let err = replay_snapshot(&snap, |_s, g| Box::new(Threshold::new(g, 0.5))).unwrap_err();
        assert!(err.contains("dropped"), "unexpected error: {err}");
    }

    #[test]
    fn audit_catches_overlap_window_slack_and_threshold_violations() {
        let mut snap = record_run(4, 1, 0.5, &workload());
        // Clone the first commitment onto the same machine and start:
        // lane overlap (or duplicate id — both are commitment checks).
        let first = snap.shards[0]
            .events
            .iter()
            .find(|e| matches!(e, FlightEvent::Commitment { .. }))
            .cloned()
            .expect("run commits something");
        snap.shards[0].events.push(first);
        let report = audit_snapshot(&snap);
        assert!(!report.is_clean());
        assert!(report.violations.iter().any(|v| v.check == "commitment"));

        // A fabricated accept below its recorded threshold.
        let mut snap = record_run(4, 1, 0.5, &workload());
        for e in snap.shards[0].events.iter_mut() {
            if let FlightEvent::Decision(d) = e {
                if !d.accepted && d.reject_reason == Some(RejectReason::ThresholdExceeded) {
                    d.accepted = true;
                    d.machine = Some(0);
                    d.start = Some(d.release);
                    d.reject_reason = None;
                    break;
                }
            }
        }
        let report = audit_snapshot(&snap);
        assert!(report.violations.iter().any(|v| v.check == "threshold"));
    }

    #[test]
    fn audit_catches_counter_mismatch() {
        let mut snap = record_run(4, 2, 0.5, &workload());
        snap.header.accepted += 1;
        let report = audit_snapshot(&snap);
        assert!(report.counters_checked);
        assert!(report.violations.iter().any(|v| v.check == "counters"));
    }

    #[test]
    fn audit_catches_a_threshold_undercutting_the_ctable_bound() {
        // One machine: after the first accept the (only) machine is the
        // least loaded, so the second decision records min_load > 0 and
        // a threshold r + min_load * f_1.
        let mut snap = record_run(1, 1, 0.5, &[(0.0, 1.0, 100.0), (0.0, 1.0, 100.0)]);
        let mut tampered = false;
        for e in snap.shards[0].events.iter_mut() {
            if let FlightEvent::Decision(d) = e {
                if let (Some(t), Some(l)) = (d.threshold, d.min_load) {
                    if l > 0.0 && t > d.release {
                        // Shrink the recorded threshold below the
                        // provable lower bound r + min_load * f_m.
                        d.threshold = Some(d.release + (t - d.release) * 1e-6);
                        tampered = true;
                        break;
                    }
                }
            }
        }
        assert!(tampered, "workload never produced min_load > 0");
        let report = audit_snapshot(&snap);
        assert!(
            report.violations.iter().any(|v| v.check == "ctable"),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn audit_as_sim_error_wraps_dirty_reports() {
        let snap = record_run(4, 2, 0.5, &workload());
        assert!(audit_as_sim_error(&snap).is_ok());
        let mut bad = snap.clone();
        bad.header.submitted += 7;
        let err = audit_as_sim_error(&bad).unwrap_err();
        assert!(matches!(*err, SimError::AuditFailed { .. }));
    }
}
