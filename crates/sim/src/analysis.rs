//! Post-run analysis in the vocabulary of the paper's Theorem-2 proof:
//! *covered intervals*, per-interval load, and machine utilization.
//!
//! Definition 1 of the paper calls an interval *uncovered* when it
//! intersects no rejected job's window `[r_j, d_j)`; removing the
//! uncovered intervals from the horizon leaves the *covered intervals*
//! (Definition 2), and the performance analysis bounds each covered
//! interval separately: inside a covered interval the adversary "kept
//! pressure up", so the online load there is what the competitive ratio
//! is made of.
//!
//! This module computes the covered-interval decomposition of a
//! simulated run and per-interval statistics. It is a diagnostic: the
//! full Definition-3 performance ratio needs the unmeasurable `P⁻`
//! term, but the measurable parts (interval capacity `m·|I|` vs online
//! load inside `I`) already show where a run concentrated its losses.

use crate::SimReport;
use cslack_kernel::Instance;

/// A half-open interval `[start, end)` on the time axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Inclusive start.
    pub start: f64,
    /// Exclusive end.
    pub end: f64,
}

impl Interval {
    /// Interval length.
    pub fn len(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// Whether the interval has zero length.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Length of the overlap with `[a, b)`.
    pub fn overlap(&self, a: f64, b: f64) -> f64 {
        (self.end.min(b) - self.start.max(a)).max(0.0)
    }
}

/// Merges a set of (possibly overlapping, unsorted) windows into
/// disjoint sorted intervals.
pub fn merge_windows(mut windows: Vec<Interval>) -> Vec<Interval> {
    windows.retain(|w| !w.is_empty());
    windows.sort_by(|a, b| a.start.total_cmp(&b.start));
    let mut merged: Vec<Interval> = Vec::with_capacity(windows.len());
    for w in windows {
        match merged.last_mut() {
            Some(last) if w.start <= last.end + 1e-12 => {
                last.end = last.end.max(w.end);
            }
            _ => merged.push(w),
        }
    }
    merged
}

/// One covered interval with its measured load statistics.
#[derive(Clone, Debug)]
pub struct CoveredInterval {
    /// The interval itself.
    pub interval: Interval,
    /// Rejected jobs whose windows intersect the interval.
    pub rejected_jobs: usize,
    /// Rejected processing volume whose windows intersect the interval.
    pub rejected_volume: f64,
    /// Online executed work inside the interval (over all machines).
    pub online_load: f64,
    /// Capacity `m * |I|`.
    pub capacity: f64,
}

impl CoveredInterval {
    /// Fraction of the interval's machine-time capacity the online
    /// schedule used.
    pub fn utilization(&self) -> f64 {
        if self.capacity <= 0.0 {
            0.0
        } else {
            self.online_load / self.capacity
        }
    }
}

/// The covered/uncovered decomposition of one run.
#[derive(Clone, Debug)]
pub struct CoverAnalysis {
    /// Covered intervals in time order.
    pub covered: Vec<CoveredInterval>,
    /// Uncovered intervals in time order (within `[0, horizon)`).
    pub uncovered: Vec<Interval>,
    /// The analysis horizon (largest finite deadline).
    pub horizon: f64,
}

impl CoverAnalysis {
    /// Total covered time.
    pub fn covered_time(&self) -> f64 {
        self.covered.iter().map(|c| c.interval.len()).sum()
    }

    /// Total online load inside covered intervals.
    pub fn covered_load(&self) -> f64 {
        self.covered.iter().map(|c| c.online_load).sum()
    }
}

/// Computes the covered-interval decomposition of a run.
pub fn cover_analysis(instance: &Instance, report: &SimReport) -> CoverAnalysis {
    let horizon = instance.horizon().raw();
    let m = instance.machines() as f64;

    // Rejected windows.
    let mut windows = Vec::new();
    for d in &report.decisions {
        if !d.accepted {
            let job = instance.job(d.job);
            let end = job.deadline.raw().min(horizon);
            windows.push(Interval {
                start: job.release.raw(),
                end,
            });
        }
    }
    let covered_iv = merge_windows(windows);

    // Uncovered = complement within [0, horizon).
    let mut uncovered = Vec::new();
    let mut cursor = 0.0;
    for iv in &covered_iv {
        if iv.start > cursor + 1e-12 {
            uncovered.push(Interval {
                start: cursor,
                end: iv.start,
            });
        }
        cursor = cursor.max(iv.end);
    }
    if cursor < horizon - 1e-12 {
        uncovered.push(Interval {
            start: cursor,
            end: horizon,
        });
    }

    // Per-interval statistics.
    let covered = covered_iv
        .into_iter()
        .map(|interval| {
            let mut online_load = 0.0;
            for c in report.schedule.iter() {
                online_load += interval.overlap(c.start.raw(), c.completion().raw());
            }
            let mut rejected_jobs = 0;
            let mut rejected_volume = 0.0;
            for d in &report.decisions {
                if !d.accepted {
                    let job = instance.job(d.job);
                    if interval.overlap(job.release.raw(), job.deadline.raw()) > 0.0 {
                        rejected_jobs += 1;
                        rejected_volume += job.proc_time;
                    }
                }
            }
            CoveredInterval {
                interval,
                rejected_jobs,
                rejected_volume,
                online_load,
                capacity: m * interval.len(),
            }
        })
        .collect();

    CoverAnalysis {
        covered,
        uncovered,
        horizon,
    }
}

/// A step function over time: value `values[i]` holds on
/// `[times[i], times[i+1])` (and the last value onward).
#[derive(Clone, Debug, PartialEq)]
pub struct StepSeries {
    /// Breakpoints, strictly increasing.
    pub times: Vec<f64>,
    /// Values, one per breakpoint.
    pub values: Vec<f64>,
}

impl StepSeries {
    /// The value at time `t` (0 before the first breakpoint).
    pub fn at(&self, t: f64) -> f64 {
        match self.times.partition_point(|&x| x <= t) {
            0 => 0.0,
            i => self.values[i - 1],
        }
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// The number of busy machines over time (step function with
/// breakpoints at every commitment start/end).
pub fn occupancy_timeline(report: &SimReport) -> StepSeries {
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(2 * report.schedule.len());
    for c in report.schedule.iter() {
        events.push((c.start.raw(), 1));
        events.push((c.completion().raw(), -1));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut times: Vec<f64> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut busy = 0i64;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && (events[i].0 - t).abs() <= 1e-12 {
            busy += events[i].1;
            i += 1;
        }
        if times.last().map(|&lt| t > lt).unwrap_or(true) {
            times.push(t);
            values.push(busy as f64);
        } else {
            *values.last_mut().expect("non-empty") = busy as f64;
        }
    }
    StepSeries { times, values }
}

/// Cumulative accepted load as a function of *decision* time (jumps at
/// each accepted job's release date).
pub fn accepted_load_timeline(instance: &Instance, report: &SimReport) -> StepSeries {
    let mut times: Vec<f64> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut total = 0.0;
    for d in &report.decisions {
        if d.accepted {
            let job = instance.job(d.job);
            total += job.proc_time;
            if times
                .last()
                .map(|&lt| job.release.raw() > lt)
                .unwrap_or(true)
            {
                times.push(job.release.raw());
                values.push(total);
            } else {
                *values.last_mut().expect("non-empty") = total;
            }
        }
    }
    StepSeries { times, values }
}

/// Per-machine utilization over `[0, makespan)` of a run.
pub fn machine_utilization(report: &SimReport) -> Vec<f64> {
    let span = report.schedule.makespan().raw().max(1e-12);
    (0..report.schedule.machines())
        .map(|i| {
            let busy: f64 = report
                .schedule
                .lane(cslack_kernel::MachineId(i as u32))
                .iter()
                .map(|c| c.job.proc_time)
                .sum();
            busy / span
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use cslack_algorithms::Threshold;
    use cslack_kernel::{InstanceBuilder, Time};

    fn iv(a: f64, b: f64) -> Interval {
        Interval { start: a, end: b }
    }

    #[test]
    fn merge_windows_merges_and_sorts() {
        let merged = merge_windows(vec![iv(3.0, 4.0), iv(0.0, 1.0), iv(0.5, 2.0), iv(4.0, 5.0)]);
        assert_eq!(merged, vec![iv(0.0, 2.0), iv(3.0, 5.0)]);
    }

    #[test]
    fn merge_windows_drops_empties() {
        assert!(merge_windows(vec![iv(1.0, 1.0), iv(2.0, 1.0)]).is_empty());
    }

    #[test]
    fn all_accepted_run_has_no_covered_intervals() {
        let inst = InstanceBuilder::new(2, 1.0)
            .job(Time::ZERO, 1.0, Time::new(10.0))
            .job(Time::ZERO, 1.0, Time::new(10.0))
            .build()
            .unwrap();
        let report = simulate(&inst, &mut Threshold::for_instance(&inst)).unwrap();
        assert_eq!(report.rejected_count(), 0);
        let a = cover_analysis(&inst, &report);
        assert!(a.covered.is_empty());
        assert_eq!(a.uncovered.len(), 1);
        assert_eq!(a.uncovered[0], iv(0.0, 10.0));
    }

    #[test]
    fn rejected_window_becomes_a_covered_interval() {
        // One machine, eps = 0.5 (f_1 = 3): a long job then a tight one
        // that gets rejected.
        let inst = InstanceBuilder::new(1, 0.5)
            .job(Time::ZERO, 2.0, Time::new(100.0))
            .tight_job(Time::ZERO, 1.0) // d = 1.5 < dlim = 6 -> rejected
            .build()
            .unwrap();
        let report = simulate(&inst, &mut Threshold::for_instance(&inst)).unwrap();
        assert_eq!(report.rejected_count(), 1);
        let a = cover_analysis(&inst, &report);
        assert_eq!(a.covered.len(), 1);
        let c = &a.covered[0];
        assert_eq!(c.interval, iv(0.0, 1.5));
        assert_eq!(c.rejected_jobs, 1);
        assert_eq!(c.rejected_volume, 1.0);
        // The accepted job runs [0, 2): overlap with [0, 1.5) is 1.5.
        assert!((c.online_load - 1.5).abs() < 1e-9);
        assert!((c.capacity - 1.5).abs() < 1e-9);
        assert!((c.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn covered_and_uncovered_partition_the_horizon() {
        let inst = cslack_workloads::WorkloadSpec::default_spec(2, 0.2, 60, 5)
            .generate()
            .unwrap();
        let report = simulate(&inst, &mut Threshold::for_instance(&inst)).unwrap();
        let a = cover_analysis(&inst, &report);
        let total: f64 = a.covered_time() + a.uncovered.iter().map(Interval::len).sum::<f64>();
        assert!(
            (total - a.horizon).abs() < 1e-6 * a.horizon,
            "covered {total} vs horizon {}",
            a.horizon
        );
        // Intervals are disjoint and ordered.
        let mut all: Vec<Interval> = a
            .covered
            .iter()
            .map(|c| c.interval)
            .chain(a.uncovered.iter().copied())
            .collect();
        all.sort_by(|x, y| x.start.total_cmp(&y.start));
        for w in all.windows(2) {
            assert!(w[0].end <= w[1].start + 1e-9);
        }
        // Load inside covered intervals never exceeds capacity.
        for c in &a.covered {
            assert!(c.online_load <= c.capacity + 1e-9);
        }
    }

    #[test]
    fn every_rejected_window_is_inside_covered_time() {
        let inst = cslack_workloads::WorkloadSpec::default_spec(1, 0.1, 40, 9)
            .generate()
            .unwrap();
        let report = simulate(&inst, &mut Threshold::for_instance(&inst)).unwrap();
        let a = cover_analysis(&inst, &report);
        for d in &report.decisions {
            if !d.accepted {
                let job = inst.job(d.job);
                let (r, dl) = (job.release.raw(), job.deadline.raw().min(a.horizon));
                let inside: f64 = a.covered.iter().map(|c| c.interval.overlap(r, dl)).sum();
                assert!(
                    (inside - (dl - r)).abs() < 1e-9 * (dl - r).max(1.0),
                    "{}'s window not fully covered",
                    d.job
                );
            }
        }
    }

    #[test]
    fn utilization_per_machine() {
        let inst = InstanceBuilder::new(2, 1.0)
            .job(Time::ZERO, 4.0, Time::new(100.0))
            .job(Time::ZERO, 2.0, Time::new(100.0))
            .build()
            .unwrap();
        let report = simulate(&inst, &mut cslack_algorithms::Greedy::new(2)).unwrap();
        let u = machine_utilization(&report);
        assert_eq!(u.len(), 2);
        // Best fit stacks both on machine 0 (6 units / makespan 6).
        assert!((u[0] - 1.0).abs() < 1e-9, "{u:?}");
        assert_eq!(u[1], 0.0);
    }

    #[test]
    fn occupancy_timeline_tracks_busy_counts() {
        let inst = InstanceBuilder::new(2, 1.0)
            .job(Time::ZERO, 2.0, Time::new(100.0))
            .job(Time::ZERO, 1.0, Time::new(3.0))
            .build()
            .unwrap();
        let report = simulate(&inst, &mut cslack_algorithms::Greedy::new(2)).unwrap();
        let occ = occupancy_timeline(&report);
        // J0 on M0 [0,2); J1 tight-ish: best fit M0? 2+1 = 3 <= 3: stacks
        // on M0 -> busy count 1 throughout [0,3).
        assert_eq!(occ.at(0.5), 1.0);
        assert_eq!(occ.at(2.5), 1.0);
        assert_eq!(occ.at(3.5), 0.0);
        assert_eq!(occ.at(-1.0), 0.0);
        // Consistency with the schedule's own counter at breakpoints.
        for (i, &t) in occ.times.iter().enumerate() {
            assert_eq!(
                occ.values[i] as usize,
                report.schedule.busy_machines_at(Time::new(t)),
                "mismatch at breakpoint {t}"
            );
        }
    }

    #[test]
    fn accepted_load_timeline_is_monotone_and_ends_at_total() {
        let inst = cslack_workloads::WorkloadSpec::default_spec(2, 0.3, 40, 8)
            .generate()
            .unwrap();
        let report = simulate(&inst, &mut Threshold::for_instance(&inst)).unwrap();
        let series = accepted_load_timeline(&inst, &report);
        assert!(series.values.windows(2).all(|w| w[0] <= w[1]));
        assert!(series.times.windows(2).all(|w| w[0] < w[1]));
        let last = series.values.last().copied().unwrap_or(0.0);
        assert!((last - report.accepted_load()).abs() < 1e-9);
        assert_eq!(series.at(f64::INFINITY), last);
    }
}
