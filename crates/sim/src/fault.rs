//! Fault injection for chaos-testing the service engine.
//!
//! [`FaultyScheduler`] wraps any [`OnlineScheduler`] and misbehaves on
//! cue: panic on the Nth offer, return a contract-violating commitment
//! on the Nth offer, or delay every decision by a fixed amount. The
//! wrapper is transparent until the trigger — decisions before job N
//! are the inner algorithm's own, so a crash snapshot taken at the
//! fault replays bit-identically against the clean algorithm.
//!
//! [`FaultSpec`] parses the CLI's `--inject <kind>@<n>` syntax:
//!
//! - `panic@N` — panic while deciding the shard's Nth offer (0-based),
//! - `contract@N` — return a deadline-missing accept on the Nth offer,
//! - `delay@MICROS` — sleep that many microseconds before every
//!   decision (a slow shard, not a dead one).

use cslack_algorithms::{Decision, DecisionInfo, OnlineScheduler};
use cslack_kernel::{Job, MachineId, Time};
use std::fmt;
use std::str::FromStr;

/// The kinds of misbehavior [`FaultyScheduler`] can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic while deciding the trigger offer.
    Panic,
    /// Return a commitment that misses the job's deadline on the
    /// trigger offer — the engine's contract check must catch it.
    Contract,
    /// Sleep before every decision (the parameter is microseconds).
    Delay,
}

impl FaultKind {
    /// The CLI spelling of this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Contract => "contract",
            FaultKind::Delay => "delay",
        }
    }
}

/// A parsed `--inject` directive: what to do and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// For [`FaultKind::Panic`] / [`FaultKind::Contract`]: the 0-based
    /// offer index (within the wrapped scheduler) to fault on. For
    /// [`FaultKind::Delay`]: microseconds of sleep per decision.
    pub at: u64,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind.as_str(), self.at)
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultSpec, String> {
        let (kind, at) = s
            .split_once('@')
            .ok_or_else(|| format!("fault spec `{s}` is not of the form <kind>@<n>"))?;
        let kind = match kind {
            "panic" => FaultKind::Panic,
            "contract" => FaultKind::Contract,
            "delay" => FaultKind::Delay,
            other => {
                return Err(format!(
                    "unknown fault kind `{other}` (expected panic, contract, or delay)"
                ))
            }
        };
        let at = at
            .parse::<u64>()
            .map_err(|e| format!("fault spec `{s}`: bad count `{at}`: {e}"))?;
        Ok(FaultSpec { kind, at })
    }
}

/// An [`OnlineScheduler`] wrapper that injects the configured fault,
/// transparent otherwise (same name, same machine count, and — until
/// the trigger — the inner algorithm's own decisions).
pub struct FaultyScheduler {
    inner: Box<dyn OnlineScheduler>,
    spec: FaultSpec,
    offers: u64,
}

impl FaultyScheduler {
    /// Wraps `inner` with the fault described by `spec`.
    pub fn new(inner: Box<dyn OnlineScheduler>, spec: FaultSpec) -> FaultyScheduler {
        FaultyScheduler {
            inner,
            spec,
            offers: 0,
        }
    }

    /// Runs the pre-decision fault hook: panics or returns the bad
    /// decision when the trigger offer is reached, sleeps on delay.
    fn trip(&mut self, job: &Job) -> Option<(Decision, DecisionInfo)> {
        let n = self.offers;
        self.offers += 1;
        match self.spec.kind {
            FaultKind::Panic if n == self.spec.at => {
                panic!("injected fault: panic at offer {n} (job {})", job.id)
            }
            FaultKind::Contract if n == self.spec.at => {
                // Starting past twice the deadline misses it by more
                // than the deadline itself — a violation that scales
                // with the job's own magnitudes, so the kernel's
                // *relative* tolerance can never absorb it, and the
                // trigger does not depend on prior load.
                Some((
                    Decision::Accept {
                        machine: MachineId(0),
                        start: Time::new(job.deadline.raw() * 2.0 + 1.0),
                    },
                    DecisionInfo::default(),
                ))
            }
            FaultKind::Delay => {
                std::thread::sleep(std::time::Duration::from_micros(self.spec.at));
                None
            }
            _ => None,
        }
    }
}

impl OnlineScheduler for FaultyScheduler {
    fn name(&self) -> &'static str {
        // Transparent: a crash snapshot's header names the algorithm
        // whose pre-fault decisions it holds, so replay rebuilds the
        // clean inner scheduler.
        self.inner.name()
    }

    fn machines(&self) -> usize {
        self.inner.machines()
    }

    fn offer(&mut self, job: &Job) -> Decision {
        match self.trip(job) {
            Some((decision, _)) => decision,
            None => self.inner.offer(job),
        }
    }

    fn offer_explained(&mut self, job: &Job) -> (Decision, DecisionInfo) {
        match self.trip(job) {
            Some(faulted) => faulted,
            None => self.inner.offer_explained(job),
        }
    }

    fn reset(&mut self) {
        self.offers = 0;
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply_decision, SimError};
    use cslack_algorithms::Greedy;
    use cslack_kernel::{Schedule, Time};

    fn job(id: u32) -> Job {
        Job::new(cslack_kernel::JobId(id), Time::ZERO, 1.0, Time::new(100.0))
    }

    #[test]
    fn spec_parses_and_rejects() {
        assert_eq!(
            "panic@100".parse::<FaultSpec>().unwrap(),
            FaultSpec {
                kind: FaultKind::Panic,
                at: 100
            }
        );
        assert_eq!(
            "contract@3".parse::<FaultSpec>().unwrap(),
            FaultSpec {
                kind: FaultKind::Contract,
                at: 3
            }
        );
        assert_eq!(
            "delay@250".parse::<FaultSpec>().unwrap().kind,
            FaultKind::Delay
        );
        assert!("panic".parse::<FaultSpec>().is_err());
        assert!("explode@5".parse::<FaultSpec>().is_err());
        assert!("panic@many".parse::<FaultSpec>().is_err());
        assert_eq!(
            "panic@7".parse::<FaultSpec>().unwrap().to_string(),
            "panic@7"
        );
    }

    #[test]
    fn transparent_before_the_trigger() {
        let mut clean = Greedy::new(2);
        let mut faulty = FaultyScheduler::new(
            Box::new(Greedy::new(2)),
            FaultSpec {
                kind: FaultKind::Panic,
                at: 5,
            },
        );
        assert_eq!(faulty.name(), "greedy");
        assert_eq!(faulty.machines(), 2);
        for id in 0..5 {
            let j = job(id);
            assert_eq!(faulty.offer(&j), clean.offer(&j));
        }
    }

    #[test]
    fn panics_at_the_trigger_offer() {
        let mut faulty = FaultyScheduler::new(
            Box::new(Greedy::new(2)),
            FaultSpec {
                kind: FaultKind::Panic,
                at: 2,
            },
        );
        faulty.offer(&job(0));
        faulty.offer(&job(1));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| faulty.offer(&job(2))));
        assert!(result.is_err());
    }

    #[test]
    fn contract_fault_is_caught_by_the_commitment_check() {
        let mut faulty = FaultyScheduler::new(
            Box::new(Greedy::new(2)),
            FaultSpec {
                kind: FaultKind::Contract,
                at: 0,
            },
        );
        let j = job(0);
        let (decision, _) = faulty.offer_explained(&j);
        let mut schedule = Schedule::new(2);
        match apply_decision(&mut schedule, &j, decision) {
            Err(SimError::BadCommitment { .. }) => {}
            other => panic!("expected BadCommitment, got {other:?}"),
        }
    }

    #[test]
    fn reset_rearms_the_trigger() {
        let mut faulty = FaultyScheduler::new(
            Box::new(Greedy::new(2)),
            FaultSpec {
                kind: FaultKind::Contract,
                at: 1,
            },
        );
        faulty.offer(&job(0));
        faulty.reset();
        // After reset the next offer is offer 0 again, not the trigger.
        let (decision, _) = faulty.offer_explained(&job(1));
        let mut schedule = Schedule::new(2);
        assert!(apply_decision(&mut schedule, &job(1), decision).is_ok());
    }
}
