//! # cslack-ratio
//!
//! The competitive-ratio function `c(eps, m)` of *Commitment and Slack for
//! Online Load Maximization* (SPAA 2020), Section 2.
//!
//! For `m` machines and slack `eps` in `(0, 1]` the paper defines a family
//! of parameters `f_q(eps, m)` for `q` in `{k, ..., m}` by the recursion
//!
//! ```text
//! f_m(eps, m) = (1 + eps) / eps                                  (4)
//! c(eps, m)   = (1 + m * f_q) / (k + sum_{h=k}^{q-1} (f_h - 1))  (5)
//! ```
//!
//! where (5) must hold *simultaneously for every* `q`, which pins down
//! `f_k, ..., f_{m-1}` and `c` given the anchor (4). The integer phase
//! index `k` is the unique value making every parameter satisfy
//! `f_q >= 2` (6); its breakpoints are the *corner values* `eps_{k,m}`
//! defined by `f_k(eps_{k,m}, m) = 2` (7), which partition `(0, 1]` into
//! `m` phases.
//!
//! This crate computes all of it:
//!
//! * [`recursion`] — the forward recursion and the bisection solver
//!   (works for every `m`, `k`).
//! * [`closed`] — the analytic closed forms the paper states: `m = 1`
//!   (Goldwasser–Kerbikov's `2 + 1/eps`), Equation (1) for `m = 2`, and
//!   the quadratic/cubic forms for the last three phases
//!   `k in {m-2, m-1, m}`.
//! * [`RatioFn`] — the cached, user-facing evaluator, including the
//!   Theorem-2 upper bound and the Proposition-1 asymptote `ln(1/eps)`.
//! * [`table`] — process-wide memoized solve/corner tables behind
//!   `RatioFn`, so engines, shards, sweeps and the adversary never
//!   re-run the bisection for parameters already derived.
//!
//! ## Derivation used by the solver
//!
//! Write `D_q = k + sum_{h=k}^{q-1} (f_h - 1)` (so `D_k = k`). Then (5)
//! reads `c * D_q = 1 + m * f_q`, i.e. `f_q = (c * D_q - 1) / m`, and
//! `D_{q+1} = D_q + f_q - 1`. Given a candidate `c` this produces all
//! `f_q` forward in `O(m)`; `c` itself is the root of
//! `f_m(c) = (1 + eps)/eps`, which is strictly increasing in `c` on the
//! relevant bracket, so bisection converges unconditionally.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod closed;
pub mod continuous;
pub mod dd;
pub mod poly;
pub mod recursion;
pub mod table;

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The additive gap `(3 - e)/(e - 1)` of Theorem 2 for phases `k > 3`.
pub const THEOREM2_GAP: f64 = (3.0 - std::f64::consts::E) / (std::f64::consts::E - 1.0);

/// Everything `c(eps, m)` evaluates to at one point: the phase `k`, the
/// ratio `c`, and the parameters `f_k ..= f_m`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Number of machines.
    pub m: usize,
    /// Slack the parameters were computed for.
    pub eps: f64,
    /// Phase index `k` with `eps` in `(eps_{k-1,m}, eps_{k,m}]`.
    pub k: usize,
    /// The competitive ratio `c(eps, m) = (m * f_k + 1)/k`.
    pub c: f64,
    /// `f[h - k]` is `f_h(eps, m)` for `h` in `k ..= m` (paper's 1-based
    /// machine index).
    f: Vec<f64>,
}

impl Params {
    /// The parameter `f_h(eps, m)` for `h` in `k ..= m` (paper indexing).
    ///
    /// # Panics
    /// Panics if `h < k` (those parameters do not exist: machines below
    /// `k` never determine the threshold) or `h > m`.
    #[inline]
    pub fn f(&self, h: usize) -> f64 {
        assert!(
            h >= self.k && h <= self.m,
            "f_h defined only for h in {}..={}, got {}",
            self.k,
            self.m,
            h
        );
        self.f[h - self.k]
    }

    /// All parameters `f_k ..= f_m` in order.
    #[inline]
    pub fn f_all(&self) -> &[f64] {
        &self.f
    }
}

/// Cached evaluator of `c(eps, m)` for a fixed machine count.
///
/// Construction precomputes the `m` corner values `eps_{k,m}`; evaluation
/// then resolves the phase by lookup and solves the recursion for `c`.
///
/// ```
/// use cslack_ratio::RatioFn;
///
/// let r2 = RatioFn::new(2);
/// // Equation (1), second phase: c(1, 2) = 3/2 + 1 = 5/2.
/// assert!((r2.lower_bound(1.0) - 2.5).abs() < 1e-9);
/// // Phase transition of m = 2 sits at eps = 2/7.
/// assert!((r2.corner(1) - 2.0 / 7.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct RatioFn {
    m: usize,
    /// `corners[k - 1] = eps_{k,m}` for `k = 1 ..= m`; strictly increasing,
    /// with `corners[m - 1] = 1`. Shared through the process-wide
    /// [`table`], so repeated construction for the same `m` is cheap.
    corners: Arc<Vec<f64>>,
}

impl RatioFn {
    /// Builds the evaluator for `m >= 1` machines.
    ///
    /// The corner values come from the memoized [`table`]: only the first
    /// construction for a given `m` in the process pays the `O(m^2)`
    /// corner computation.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> RatioFn {
        assert!(m >= 1, "need at least one machine");
        RatioFn {
            m,
            corners: table::corners(m),
        }
    }

    /// Number of machines.
    #[inline]
    pub fn machines(&self) -> usize {
        self.m
    }

    /// The corner value `eps_{k,m}` for `k` in `1 ..= m`
    /// (`eps_{m,m} = 1`).
    #[inline]
    pub fn corner(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.m, "corner index out of range");
        self.corners[k - 1]
    }

    /// All corner values `eps_{1,m} .. eps_{m,m}`.
    #[inline]
    pub fn corners(&self) -> &[f64] {
        &self.corners
    }

    /// The phase index `k` with `eps` in `(eps_{k-1,m}, eps_{k,m}]`.
    ///
    /// Slack values above 1 are clamped to phase `m` (the paper restricts
    /// the analysis to `(0, 1]`; for larger slack constant-competitive
    /// greedy algorithms exist).
    pub fn phase(&self, eps: f64) -> usize {
        assert!(eps > 0.0, "slack must be positive");
        match self
            .corners
            .iter()
            .position(|&corner| eps <= corner + 1e-15)
        {
            Some(idx) => idx + 1,
            None => self.m,
        }
    }

    /// Full evaluation: phase, ratio and parameters at `eps`.
    ///
    /// The recursion solution is served from the memoized [`table`];
    /// repeated evaluation at the same `(m, eps)` does no float work.
    pub fn eval(&self, eps: f64) -> Params {
        let k = self.phase(eps);
        let solved = table::solve(self.m, k, eps);
        Params {
            m: self.m,
            eps,
            k,
            c: solved.c,
            f: (*solved.f).clone(),
        }
    }

    /// The lower bound `c(eps, m)` of Theorem 1 — conjectured tight.
    #[inline]
    pub fn lower_bound(&self, eps: f64) -> f64 {
        self.eval(eps).c
    }

    /// The upper bound of Theorem 2 for Algorithm 1 (Threshold):
    /// `c(eps, m)` when `k <= 3`, and `c(eps, m) + (3 - e)/(e - 1)` when
    /// `k > 3` (delayed execution, Lemma 11).
    pub fn threshold_upper_bound(&self, eps: f64) -> f64 {
        let p = self.eval(eps);
        if p.k <= 3 {
            p.c
        } else {
            p.c + THEOREM2_GAP
        }
    }

    /// The Proposition-1 asymptote `ln(1/eps)`: the limit of `c(eps, m)`
    /// as `m -> infinity` *on the first phase* `eps <= eps_{1,m}` (note
    /// that `eps_{1,m} -> 0` roughly like `m * e^{-2m}`, so this regime
    /// requires the slack to shrink with `m`).
    #[inline]
    pub fn asymptote(eps: f64) -> f64 {
        (1.0 / eps).ln()
    }

    /// The interior asymptote `2 + ln(1/eps)`: the limit of `c(eps, m)`
    /// as `m -> infinity` for a *fixed* slack `eps`.
    ///
    /// For fixed `eps` the phase index `k` grows with `m` such that
    /// `f_k -> 2` (the boundary of constraint (6)); taking the continuous
    /// limit of the recursion `g' = c g - 1` with boundary `f(x_0) = 2`
    /// (i.e. `x_0 = 2/c`) and anchor `f(1) = (1+eps)/eps` yields
    /// `e^{c - 2} = 1/eps`, hence `c = 2 + ln(1/eps)`. This is the same
    /// differential equation as in the proof of Proposition 1, evaluated
    /// at the interior phase boundary instead of `k = 1`; experiment E7
    /// verifies both regimes numerically.
    #[inline]
    pub fn asymptote_interior(eps: f64) -> f64 {
        2.0 + (1.0 / eps).ln()
    }

    /// Samples the curve `eps -> c(eps, m)` on a logarithmic grid of
    /// `n` points over `[eps_lo, eps_hi]` — the raw series behind Fig. 1.
    pub fn curve(&self, eps_lo: f64, eps_hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(eps_lo > 0.0 && eps_hi >= eps_lo && n >= 2);
        let (l0, l1) = (eps_lo.ln(), eps_hi.ln());
        (0..n)
            .map(|i| {
                let eps = (l0 + (l1 - l0) * i as f64 / (n - 1) as f64).exp();
                (eps, self.lower_bound(eps))
            })
            .collect()
    }
}

/// Lee'03's multi-machine guarantee `1 + m + m * eps^{-1/m}` (commitment
/// on admission) — the prior bound the paper's Section 1.1 compares
/// against.
pub fn lee_bound(eps: f64, m: usize) -> f64 {
    1.0 + m as f64 + m as f64 * eps.powf(-1.0 / m as f64)
}

/// DasGupta–Palis' preemptive (no-migration) guarantee `1 + 1/eps`.
pub fn dasgupta_palis_bound(eps: f64) -> f64 {
    1.0 + 1.0 / eps
}

/// Goldwasser–Kerbikov's optimal single-machine deterministic ratio
/// `2 + 1/eps` (equals `c(eps, 1)`).
pub fn goldwasser_kerbikov_bound(eps: f64) -> f64 {
    2.0 + 1.0 / eps
}

/// Schwiegelshohn²'16 preemption+migration bound
/// `(1 + eps) * log((1 + eps)/eps)` (large `m`), cited for context.
pub fn migration_bound(eps: f64) -> f64 {
    (1.0 + eps) * ((1.0 + eps) / eps).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_matches_goldwasser_kerbikov_everywhere() {
        let r = RatioFn::new(1);
        for &eps in &[0.01, 0.1, 0.25, 0.5, 0.9, 1.0] {
            let c = r.lower_bound(eps);
            assert!(
                (c - goldwasser_kerbikov_bound(eps)).abs() < 1e-9,
                "eps={eps}: {c}"
            );
        }
    }

    #[test]
    fn m2_matches_equation_1() {
        let r = RatioFn::new(2);
        // First phase: eps < 2/7.
        for &eps in &[0.01, 0.1, 0.2, 0.28] {
            let want = 2.0 * (25.0 / 16.0_f64 + 1.0 / eps).sqrt() + 0.5;
            assert!((r.lower_bound(eps) - want).abs() < 1e-8, "eps={eps}");
        }
        // Second phase: 2/7 <= eps <= 1.
        for &eps in &[2.0 / 7.0, 0.3, 0.5, 0.75, 1.0] {
            let want = 1.5 + 1.0 / eps;
            assert!((r.lower_bound(eps) - want).abs() < 1e-8, "eps={eps}");
        }
    }

    #[test]
    fn corner_of_m2_is_two_sevenths_and_last_corner_is_one() {
        let r = RatioFn::new(2);
        assert!((r.corner(1) - 2.0 / 7.0).abs() < 1e-10);
        assert!((r.corner(2) - 1.0).abs() < 1e-10);
        for m in 1..=8 {
            let r = RatioFn::new(m);
            assert!((r.corner(m) - 1.0).abs() < 1e-9, "eps_mm should be 1");
        }
    }

    #[test]
    fn corners_strictly_increase() {
        for m in 2..=10 {
            let r = RatioFn::new(m);
            for k in 2..=m {
                assert!(
                    r.corner(k) > r.corner(k - 1),
                    "m={m}: corners not increasing"
                );
            }
            assert!(r.corner(1) > 0.0);
        }
    }

    #[test]
    fn phase_lookup_brackets_correctly() {
        let r = RatioFn::new(3);
        let e1 = r.corner(1);
        let e2 = r.corner(2);
        assert_eq!(r.phase(e1 * 0.5), 1);
        assert_eq!(r.phase(e1), 1); // right-closed interval
        assert_eq!(r.phase(e1 + 1e-6), 2);
        assert_eq!(r.phase(e2), 2);
        assert_eq!(r.phase(1.0), 3);
        assert_eq!(r.phase(2.0), 3); // clamped above 1
    }

    #[test]
    fn continuity_at_corners() {
        // (5) evaluated with variant k and k+1 agree at eps_{k,m}.
        for m in 2..=6 {
            let r = RatioFn::new(m);
            for k in 1..m {
                let eps = r.corner(k);
                let (c_left, _) = recursion::solve(m, k, eps);
                let (c_right, _) = recursion::solve(m, k + 1, eps);
                assert!(
                    (c_left - c_right).abs() < 1e-7,
                    "m={m} k={k}: c discontinuous at corner ({c_left} vs {c_right})"
                );
            }
        }
    }

    #[test]
    fn ratio_decreases_in_eps_and_in_m() {
        for m in 1..=5 {
            let r = RatioFn::new(m);
            let mut prev = f64::INFINITY;
            for i in 1..=60 {
                let eps = i as f64 / 60.0;
                let c = r.lower_bound(eps);
                assert!(c <= prev + 1e-9, "m={m}: c not decreasing at eps={eps}");
                prev = c;
            }
        }
        for &eps in &[0.05, 0.2, 0.6, 1.0] {
            let mut prev = f64::INFINITY;
            for m in 1..=8 {
                let c = RatioFn::new(m).lower_bound(eps);
                assert!(c <= prev + 1e-9, "eps={eps}: c not decreasing at m={m}");
                prev = c;
            }
        }
    }

    #[test]
    fn params_expose_f_with_paper_indexing() {
        let r = RatioFn::new(3);
        let p = r.eval(0.9); // phase 3 => only f_3 exists
        assert_eq!(p.k, 3);
        assert!((p.f(3) - (1.0 + 0.9) / 0.9).abs() < 1e-12);
        let p = r.eval(0.05); // phase 1 => f_1, f_2, f_3
        assert_eq!(p.k, 1);
        assert_eq!(p.f_all().len(), 3);
        assert!(p.f(1) < p.f(2) && p.f(2) < p.f(3), "f must increase in q");
        assert!(p.f(1) >= 2.0 - 1e-9, "constraint (6)");
    }

    #[test]
    #[should_panic(expected = "f_h defined only")]
    fn params_reject_out_of_phase_index() {
        let p = RatioFn::new(3).eval(0.9);
        let _ = p.f(2); // k = 3, so f_2 does not exist
    }

    #[test]
    fn theorem2_upper_bound_adds_gap_only_beyond_k3() {
        let r = RatioFn::new(8);
        // Small eps => k = 1; eps near 1 => k = m = 8 > 3.
        let small = r.eval(r.corner(1) * 0.5);
        assert_eq!(small.k, 1);
        assert_eq!(r.threshold_upper_bound(small.eps), small.c);
        let big = r.eval(0.99);
        assert_eq!(big.k, 8);
        assert!((r.threshold_upper_bound(0.99) - (big.c + THEOREM2_GAP)).abs() < 1e-12);
        assert!((THEOREM2_GAP - 0.1639).abs() < 1e-3);
    }

    #[test]
    fn lower_bound_formula_matches_theorem_1_form() {
        // c = (m f_k + 1)/k must equal the solved c.
        for m in 1..=6 {
            let r = RatioFn::new(m);
            for &eps in &[0.03, 0.11, 0.37, 0.8, 1.0] {
                let p = r.eval(eps);
                let direct = (m as f64 * p.f(p.k) + 1.0) / p.k as f64;
                assert!((p.c - direct).abs() < 1e-7 * p.c, "m={m} eps={eps}");
            }
        }
    }

    #[test]
    fn proposition1_log_asymptote_as_slack_vanishes() {
        // Proposition 1 ("the competitive ratio approaches ln(1/eps) for
        // small slack values as m tends to infinity"): with m large, the
        // relative gap c/ln(1/eps) - 1 decreases toward 0 as eps -> 0.
        // The sharper interior statement is c - ln(1/eps) -> 2 (see
        // `asymptote_interior`); relative to ln(1/eps) the +2 washes out.
        let r = RatioFn::new(1024);
        let mut prev_rel = f64::INFINITY;
        for &eps in &[1e-2, 1e-4, 1e-6, 1e-8] {
            let c = r.lower_bound(eps);
            let rel = c / RatioFn::asymptote(eps) - 1.0;
            assert!(rel > 0.0, "limit approached from above");
            assert!(rel < prev_rel, "eps={eps}: gap {rel} not shrinking");
            let diff = c - RatioFn::asymptote(eps);
            assert!(
                (1.9..=2.3).contains(&diff),
                "eps={eps}: c - ln(1/eps) = {diff}, expected near 2"
            );
            prev_rel = rel;
        }
        assert!(prev_rel < 0.13, "eps=1e-8: relative gap {prev_rel}");
    }

    #[test]
    fn interior_asymptote_for_fixed_eps() {
        // For a *fixed* slack the limit is 2 + ln(1/eps): the phase index
        // grows with m so f_k sits at the boundary-of-(6) value 2.
        let eps = 0.01;
        let target = RatioFn::asymptote_interior(eps);
        let mut prev = f64::INFINITY;
        for &m in &[1usize, 4, 16, 64, 256, 1024] {
            let c = RatioFn::new(m).lower_bound(eps);
            assert!(c < prev, "convergence should be monotone from above");
            prev = c;
        }
        assert!(
            (prev - target) / target < 0.005,
            "m=1024: c={prev}, 2+ln(1/eps)={target}"
        );
        assert!(prev > target, "limit approached from above");
    }

    #[test]
    fn literature_bounds_are_sane() {
        assert!((goldwasser_kerbikov_bound(1.0) - 3.0).abs() < 1e-12);
        assert!((dasgupta_palis_bound(0.5) - 3.0).abs() < 1e-12);
        assert!(lee_bound(1.0, 1) >= goldwasser_kerbikov_bound(1.0));
        // Paper: Threshold "slightly improves" on Lee's bound — equality
        // at m = 1 (both are 2 + 1/eps), strictly better for m >= 2.
        for m in 1..=6 {
            let r = RatioFn::new(m);
            for &eps in &[0.05, 0.3, 1.0] {
                let ours = r.threshold_upper_bound(eps);
                let lee = lee_bound(eps, m);
                if m == 1 {
                    assert!(ours <= lee + 1e-9, "m=1, eps={eps}");
                } else {
                    assert!(ours < lee, "m={m}, eps={eps}: {ours} vs {lee}");
                }
            }
        }
        assert!(migration_bound(0.1) > 0.0);
    }

    #[test]
    fn curve_sampling_is_log_spaced_and_inclusive() {
        let r = RatioFn::new(2);
        let pts = r.curve(0.01, 1.0, 5);
        assert_eq!(pts.len(), 5);
        assert!((pts[0].0 - 0.01).abs() < 1e-12);
        assert!((pts[4].0 - 1.0).abs() < 1e-12);
        assert!((pts[2].0 - 0.1).abs() < 1e-3); // geometric midpoint
        assert!(pts.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
