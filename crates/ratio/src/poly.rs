//! Small real-root solvers for the closed-form phases.
//!
//! The paper gives analytic expressions for `c(eps, m)` only on the last
//! three phases `k in {m-2, m-1, m}`; eliminating the `f_q` from
//! Equation (5) there yields a linear, quadratic and cubic equation in `c`
//! respectively. This module provides numerically careful quadratic and
//! cubic solvers (the cubic via the trigonometric method for three real
//! roots and Cardano otherwise).

/// Real roots of `a x^2 + b x + c = 0`, ascending. Degenerate (`a == 0`)
/// inputs fall back to the linear case.
pub fn quadratic_roots(a: f64, b: f64, c: f64) -> Vec<f64> {
    if a == 0.0 {
        if b == 0.0 {
            return Vec::new();
        }
        return vec![-c / b];
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Vec::new();
    }
    let sq = disc.sqrt();
    // Citardauq form: avoids cancellation when b and the root's sign agree.
    let q = -0.5 * (b + b.signum() * sq);
    let mut roots = if q == 0.0 {
        vec![0.0, 0.0]
    } else {
        vec![q / a, c / q]
    };
    roots.sort_by(|x, y| x.total_cmp(y));
    roots
}

/// Real roots of `a x^3 + b x^2 + c x + d = 0`, ascending.
/// Degenerate leading coefficients fall back to [`quadratic_roots`].
pub fn cubic_roots(a: f64, b: f64, c: f64, d: f64) -> Vec<f64> {
    if a == 0.0 {
        return quadratic_roots(b, c, d);
    }
    // Depressed cubic t^3 + p t + q with x = t - b/(3a).
    let (b, c, d) = (b / a, c / a, d / a);
    let shift = b / 3.0;
    let p = c - b * b / 3.0;
    let q = 2.0 * b * b * b / 27.0 - b * c / 3.0 + d;
    let half_q = q / 2.0;
    let third_p = p / 3.0;
    let disc = half_q * half_q + third_p * third_p * third_p;
    let mut roots = if disc > 0.0 {
        // One real root (Cardano).
        let sq = disc.sqrt();
        let u = (-half_q + sq).cbrt();
        let v = (-half_q - sq).cbrt();
        vec![u + v - shift]
    } else if disc == 0.0 {
        if p == 0.0 {
            vec![-shift]
        } else {
            let u = (-half_q).cbrt();
            vec![2.0 * u - shift, -u - shift]
        }
    } else {
        // Three real roots (trigonometric method); p < 0 here.
        let r = (-third_p).sqrt();
        let phi = (-half_q / (r * r * r)).clamp(-1.0, 1.0).acos();
        (0..3)
            .map(|j| 2.0 * r * ((phi + 2.0 * std::f64::consts::PI * j as f64) / 3.0).cos() - shift)
            .collect()
    };
    roots.sort_by(|x, y| x.total_cmp(y));
    // One Newton polish per root (the closed-form tests compare to 1e-9).
    let f = |x: f64| ((a_horner(x, b) + c) * x) + d;
    let fp = |x: f64| 3.0 * x * x + 2.0 * b * x + c;
    for root in roots.iter_mut() {
        for _ in 0..3 {
            let df = fp(*root);
            if df.abs() > 1e-300 {
                *root -= f(*root) / df;
            }
        }
    }
    roots
}

#[inline]
fn a_horner(x: f64, b: f64) -> f64 {
    (x + b) * x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len(), "{a:?} vs {b:?}");
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9 * y.abs().max(1.0), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn quadratic_simple() {
        assert_close(&quadratic_roots(1.0, -3.0, 2.0), &[1.0, 2.0]);
        assert_close(&quadratic_roots(2.0, 0.0, -8.0), &[-2.0, 2.0]);
        assert!(quadratic_roots(1.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn quadratic_degenerates_to_linear() {
        assert_close(&quadratic_roots(0.0, 2.0, -4.0), &[2.0]);
        assert!(quadratic_roots(0.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn quadratic_avoids_cancellation() {
        // x^2 - 1e8 x + 1 = 0: roots ~1e8 and ~1e-8.
        let r = quadratic_roots(1.0, -1e8, 1.0);
        assert_eq!(r.len(), 2);
        assert!((r[0] - 1e-8).abs() < 1e-16);
        assert!((r[1] - 1e8).abs() < 1.0);
    }

    #[test]
    fn cubic_three_real_roots() {
        // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
        assert_close(&cubic_roots(1.0, -6.0, 11.0, -6.0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn cubic_single_real_root() {
        // (x-2)(x^2+1) = x^3 - 2x^2 + x - 2
        assert_close(&cubic_roots(1.0, -2.0, 1.0, -2.0), &[2.0]);
    }

    #[test]
    fn cubic_with_repeated_root() {
        // (x-1)^2 (x+2) = x^3 - 3x + 2
        let r = cubic_roots(1.0, 0.0, -3.0, 2.0);
        assert_eq!(r.len(), 2);
        assert_close(&r, &[-2.0, 1.0]);
    }

    #[test]
    fn cubic_degenerates_to_quadratic() {
        assert_close(&cubic_roots(0.0, 1.0, -3.0, 2.0), &[1.0, 2.0]);
    }

    #[test]
    fn cubic_triple_root() {
        // (x-2)^3 = x^3 - 6x^2 + 12x - 8
        let r = cubic_roots(1.0, -6.0, 12.0, -8.0);
        assert_eq!(r.len(), 1);
        assert!((r[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cubic_nonmonic() {
        // 2(x-1)(x-2)(x-3)
        assert_close(&cubic_roots(2.0, -12.0, 22.0, -12.0), &[1.0, 2.0, 3.0]);
    }
}
