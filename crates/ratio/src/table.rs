//! Process-wide memoized ratio tables.
//!
//! Solving the parameter recursion is the only expensive step of building
//! a Threshold engine: [`crate::recursion::solve`] runs a ~200-iteration
//! bisection with an `O(m)` forward pass per iteration, and
//! [`crate::RatioFn::new`] computes `m` corner values of `O(m)` each.
//! Both are pure functions of small keys — `(m, k, eps)` and `m` — yet
//! before this module every engine shard, every adversary game, and every
//! sweep row re-derived them from scratch.
//!
//! This module holds one lazily filled, process-wide table per function:
//!
//! * [`solve`] memoizes `recursion::solve(m, k, eps)` keyed by
//!   `(m, k, eps.to_bits())` — exact-bit keying, so two callers share an
//!   entry iff they would have computed bit-identical parameters;
//! * [`corners`] memoizes the corner-value vector `eps_{1,m}..eps_{m,m}`
//!   keyed by `m`.
//!
//! Entries are immutable once inserted and handed out behind [`Arc`], so
//! a cache hit is a lock-guarded `HashMap` lookup plus a refcount bump —
//! no float work at all. The sharded engine constructs its per-shard
//! schedulers sequentially on the caller thread, so the first shard warms
//! the table and the remaining shards (and any later engine, adversary,
//! or sweep using the same parameters) hit it.

use crate::recursion;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A memoized solution of the parameter recursion for one `(m, k, eps)`.
#[derive(Clone, Debug)]
pub struct Solved {
    /// The competitive ratio `c(eps, m)` under phase `k`.
    pub c: f64,
    /// `f[h - k] = f_h(eps, m)` for `h in k ..= m` (shared, immutable).
    pub f: Arc<Vec<f64>>,
}

/// Hit/miss counters of the process-wide tables (both tables combined).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that had to run the underlying computation.
    pub misses: u64,
}

struct Tables {
    solved: Mutex<HashMap<(usize, usize, u64), Solved>>,
    corners: Mutex<HashMap<usize, Arc<Vec<f64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| Tables {
        solved: Mutex::new(HashMap::new()),
        corners: Mutex::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Memoized [`recursion::solve`]: identical inputs return clones of one
/// shared entry (the parameter vector itself is behind an [`Arc`] and is
/// never recomputed).
///
/// # Panics
/// Panics on the same inputs `recursion::solve` panics on (`k` outside
/// `1..=m`, non-positive `eps`).
pub fn solve(m: usize, k: usize, eps: f64) -> Solved {
    let t = tables();
    let key = (m, k, eps.to_bits());
    // Fast path: an existing entry.
    if let Some(hit) = t.solved.lock().unwrap().get(&key) {
        t.hits.fetch_add(1, Ordering::Relaxed);
        return hit.clone();
    }
    // Solve outside the lock: the bisection is the expensive part, and
    // concurrent first requests for the same key are rare and idempotent.
    let (c, f) = recursion::solve(m, k, eps);
    let entry = Solved { c, f: Arc::new(f) };
    t.misses.fetch_add(1, Ordering::Relaxed);
    t.solved.lock().unwrap().entry(key).or_insert(entry).clone()
}

/// Memoized corner-value vector `eps_{1,m} ..= eps_{m,m}` for `m`
/// machines (strictly increasing, last entry `1`).
///
/// # Panics
/// Panics if `m == 0`.
pub fn corners(m: usize) -> Arc<Vec<f64>> {
    assert!(m >= 1, "need at least one machine");
    let t = tables();
    if let Some(hit) = t.corners.lock().unwrap().get(&m) {
        t.hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    let computed: Arc<Vec<f64>> =
        Arc::new((1..=m).map(|k| recursion::corner_value(m, k)).collect());
    t.misses.fetch_add(1, Ordering::Relaxed);
    Arc::clone(t.corners.lock().unwrap().entry(m).or_insert(computed))
}

/// Cumulative hit/miss counters since process start.
pub fn stats() -> TableStats {
    let t = tables();
    TableStats {
        hits: t.hits.load(Ordering::Relaxed),
        misses: t.misses.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share the process-wide table with every other test in
    // the binary, so they assert sharing through `Arc::ptr_eq` on their
    // own unique keys instead of through the global counters.

    #[test]
    fn repeated_solves_share_one_entry() {
        let eps = 0.123_456_789_012; // unlikely to collide with other tests
        let a = solve(5, 2, eps);
        let b = solve(5, 2, eps);
        assert!(Arc::ptr_eq(&a.f, &b.f), "second lookup must hit the table");
        assert_eq!(a.c, b.c);
        // The memoized entry is bit-identical to the direct computation.
        let (c, f) = recursion::solve(5, 2, eps);
        assert_eq!(a.c, c);
        assert_eq!(*a.f, f);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let a = solve(4, 2, 0.111_222_333);
        let b = solve(4, 3, 0.111_222_333);
        let c = solve(4, 2, 0.111_222_334);
        assert!(!Arc::ptr_eq(&a.f, &b.f));
        assert!(!Arc::ptr_eq(&a.f, &c.f));
    }

    #[test]
    fn corners_are_shared_and_correct() {
        let a = corners(37);
        let b = corners(37);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 37);
        for k in 1..=37 {
            assert_eq!(a[k - 1], recursion::corner_value(37, k));
        }
        assert!((a[36] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_move_forward() {
        let before = stats();
        let _ = solve(6, 3, 0.987_654_321);
        let _ = solve(6, 3, 0.987_654_321);
        let after = stats();
        assert!(after.hits + after.misses >= before.hits + before.misses + 2);
    }
}
