//! Double-double arithmetic (~31 significant digits) for verifying the
//! conditioning of the `c(eps, m)` solver.
//!
//! The forward recursion multiplies and accumulates `m` times; for
//! large `m` or tiny `eps` one may reasonably worry about error growth
//! in the `f64` bisection. This module re-implements the recursion and
//! the bisection on *double-double* numbers (an unevaluated sum of two
//! `f64`s, Dekker/Knuth error-free transformations), giving an
//! independent high-precision reference that the tests compare the fast
//! solver against.
//!
//! Only the operations the recursion needs are implemented: `+`, `-`,
//! `*`, `/`, comparisons, and conversions.

use std::cmp::Ordering;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A double-double number `hi + lo` with `|lo| <= ulp(hi)/2`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dd {
    /// Leading component.
    pub hi: f64,
    /// Trailing error component.
    pub lo: f64,
}

/// Error-free transformation: `a + b = s + err` exactly (Knuth).
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let err = (a - (s - bb)) + (b - bb);
    (s, err)
}

/// Error-free transformation for `|a| >= |b|` (Dekker).
#[inline]
fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let err = b - (s - a);
    (s, err)
}

/// Error-free product via FMA: `a * b = p + err` exactly.
#[inline]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let err = f64::mul_add(a, b, -p);
    (p, err)
}

impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };
    /// One.
    pub const ONE: Dd = Dd { hi: 1.0, lo: 0.0 };

    /// Constructs from a single `f64`.
    #[inline]
    pub fn from_f64(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }

    /// Renormalizes a `(hi, lo)` pair.
    #[inline]
    fn renorm(hi: f64, lo: f64) -> Dd {
        let (s, e) = quick_two_sum(hi, lo);
        Dd { hi: s, lo: e }
    }

    /// Rounds to the nearest `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// Absolute value.
    pub fn abs(self) -> Dd {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            -self
        } else {
            self
        }
    }
}

impl From<f64> for Dd {
    fn from(x: f64) -> Dd {
        Dd::from_f64(x)
    }
}

impl Neg for Dd {
    type Output = Dd;
    #[inline]
    fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }
}

impl Add for Dd {
    type Output = Dd;
    #[inline]
    fn add(self, o: Dd) -> Dd {
        let (s1, e1) = two_sum(self.hi, o.hi);
        let (s2, e2) = two_sum(self.lo, o.lo);
        let (s1, e1b) = quick_two_sum(s1, e1 + s2);
        Dd::renorm(s1, e1b + e2)
    }
}

impl Sub for Dd {
    type Output = Dd;
    #[inline]
    fn sub(self, o: Dd) -> Dd {
        self + (-o)
    }
}

impl Mul for Dd {
    type Output = Dd;
    #[inline]
    fn mul(self, o: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, o.hi);
        let e = e + self.hi * o.lo + self.lo * o.hi;
        Dd::renorm(p, e)
    }
}

impl Div for Dd {
    type Output = Dd;
    #[inline]
    fn div(self, o: Dd) -> Dd {
        // Long division with one Newton correction.
        let q1 = self.hi / o.hi;
        let r = self - o * Dd::from_f64(q1);
        let q2 = r.hi / o.hi;
        let r2 = r - o * Dd::from_f64(q2);
        let q3 = r2.hi / o.hi;
        Dd::renorm(q1, q2) + Dd::from_f64(q3)
    }
}

impl PartialEq for Dd {
    fn eq(&self, o: &Dd) -> bool {
        self.hi == o.hi && self.lo == o.lo
    }
}

impl PartialOrd for Dd {
    fn partial_cmp(&self, o: &Dd) -> Option<Ordering> {
        match self.hi.partial_cmp(&o.hi) {
            Some(Ordering::Equal) => self.lo.partial_cmp(&o.lo),
            other => other,
        }
    }
}

/// The forward recursion of Equation (5) in double-double precision:
/// returns `f_m` for phase variant `k` and candidate ratio `c`.
pub fn forward_last_dd(m: usize, k: usize, c: Dd) -> Dd {
    let mf = Dd::from_f64(m as f64);
    let mut d = Dd::from_f64(k as f64);
    let mut fq = Dd::ZERO;
    for _q in k..=m {
        fq = (c * d - Dd::ONE) / mf;
        d = d + fq - Dd::ONE;
    }
    fq
}

/// High-precision bisection solve of the phase-`k` recursion at slack
/// `eps`: the double-double counterpart of
/// [`crate::recursion::solve`]'s ratio output.
pub fn solve_c_dd(m: usize, k: usize, eps: f64) -> Dd {
    let target = (Dd::ONE + Dd::from_f64(eps)) / Dd::from_f64(eps);
    let mut lo = (Dd::from_f64(2.0 * m as f64) + Dd::ONE) / Dd::from_f64(k as f64);
    let mut hi = (Dd::ONE + Dd::from_f64(m as f64) * target) / Dd::from_f64(k as f64)
        * Dd::from_f64(1.0 + 1e-9);
    let mut guard = 0;
    while forward_last_dd(m, k, lo) > target {
        lo = Dd::ONE + (lo - Dd::ONE) * Dd::from_f64(0.5);
        guard += 1;
        assert!(guard < 300, "failed to bracket c from below");
    }
    for _ in 0..300 {
        let mid = (lo + hi) * Dd::from_f64(0.5);
        if forward_last_dd(m, k, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        let width = (hi - lo).abs().to_f64();
        if width <= 1e-28 * hi.to_f64().max(1.0) {
            break;
        }
    }
    (lo + hi) * Dd::from_f64(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{recursion, RatioFn};

    #[test]
    fn error_free_sums_capture_the_lost_bits() {
        // 1 + 2^-60 is not representable in f64; Dd keeps it.
        let a = Dd::from_f64(1.0) + Dd::from_f64(2f64.powi(-60));
        assert_eq!(a.hi, 1.0);
        assert_eq!(a.lo, 2f64.powi(-60));
        assert!((a - Dd::from_f64(1.0)).to_f64() == 2f64.powi(-60));
    }

    #[test]
    fn multiplication_is_exact_for_exact_products() {
        let a = Dd::from_f64(3.0) * Dd::from_f64(7.0);
        assert_eq!(a.to_f64(), 21.0);
        assert_eq!(a.lo, 0.0);
    }

    #[test]
    fn division_round_trips() {
        let x = Dd::from_f64(1.0) / Dd::from_f64(3.0);
        let back = x * Dd::from_f64(3.0);
        assert!((back - Dd::ONE).abs().to_f64() < 1e-30);
    }

    #[test]
    fn comparisons_see_the_low_word() {
        let a = Dd::from_f64(1.0) + Dd::from_f64(1e-25);
        assert!(a > Dd::from_f64(1.0));
        assert!(Dd::from_f64(1.0) < a);
    }

    #[test]
    fn dd_recursion_agrees_with_f64_at_low_precision() {
        for m in [1usize, 2, 4, 8] {
            for k in 1..=m {
                let c = 2.0 + m as f64;
                let fast = recursion::forward_last(m, k, c);
                let precise = forward_last_dd(m, k, Dd::from_f64(c)).to_f64();
                assert!(
                    (fast - precise).abs() <= 1e-12 * precise.abs().max(1.0),
                    "m={m} k={k}: {fast} vs {precise}"
                );
            }
        }
    }

    #[test]
    fn f64_solver_is_well_conditioned() {
        // The production bisection must agree with the double-double
        // reference to ~1e-12 relative across phases and slacks,
        // including the stress cases (large m, tiny eps).
        for &(m, eps) in &[
            (2usize, 0.5f64),
            (2, 0.01),
            (4, 0.1),
            (8, 0.003),
            (16, 0.2),
            (32, 1e-4),
            (64, 0.05),
        ] {
            let r = RatioFn::new(m);
            let k = r.phase(eps);
            let fast = r.lower_bound(eps);
            let precise = solve_c_dd(m, k, eps).to_f64();
            let rel = (fast - precise).abs() / precise;
            assert!(
                rel < 1e-11,
                "m={m} eps={eps}: f64 {fast} vs dd {precise} (rel {rel:.2e})"
            );
        }
    }

    #[test]
    fn eq1_closed_form_verified_at_high_precision() {
        // Equation (1), first phase, in double-double: the solved c
        // satisfies c^2 - c - (6 + 4/eps) = 0 to ~1e-25.
        let eps = 0.1;
        let c = solve_c_dd(2, 1, eps);
        let residual = c * c - c - (Dd::from_f64(6.0) + Dd::from_f64(4.0) / Dd::from_f64(eps));
        assert!(
            residual.abs().to_f64() < 1e-24 * c.to_f64().powi(2),
            "residual {}",
            residual.to_f64()
        );
    }
}
