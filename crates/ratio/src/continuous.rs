//! The continuous relaxation behind Proposition 1.
//!
//! For `m → ∞` the paper replaces the discrete parameters `f_q` by a
//! function `f(x)` of the normalized machine index `x = q/m` and the
//! recursion (5) by the integral identity (8); differentiating yields
//! the linear ODE
//!
//! ```text
//! f'(x) = c · (f(x) − 1),     f(1) = (1 + eps)/eps,
//! ```
//!
//! whose solution is `f(x) = 1 + (f(x₀) − 1) e^{c (x − x₀)}`. Two
//! boundary regimes matter:
//!
//! * `f(x₀) = 2` at `x₀ = 2/c` (constraint (6) active — the interior
//!   phase boundary) gives `e^{c − 2} = 1/eps`, i.e.
//!   `c = 2 + ln(1/eps)`;
//! * `x₀ → 0` with the paper's `1/m ↦ f(0)/c` normalization and
//!   `f(0) = 2` gives `e^c = 1/eps`, i.e. `c = ln(1/eps)` —
//!   Proposition 1's constant.
//!
//! This module integrates the ODE numerically (RK4) so the closed-form
//! manipulations above are themselves machine-checked, and provides the
//! continuous profile `f(x)` for comparison against the discrete
//! `f_q(eps, m)` at large `m` (the error is `O(c/m)`).

/// Integrates `f' = c (f - 1)` from `x0` (value `f0`) to `x1` with RK4.
pub fn integrate_f(c: f64, x0: f64, f0: f64, x1: f64, steps: usize) -> f64 {
    assert!(steps > 0 && x1 >= x0);
    let h = (x1 - x0) / steps as f64;
    let deriv = |f: f64| c * (f - 1.0);
    let mut f = f0;
    for _ in 0..steps {
        let k1 = deriv(f);
        let k2 = deriv(f + 0.5 * h * k1);
        let k3 = deriv(f + 0.5 * h * k2);
        let k4 = deriv(f + h * k3);
        f += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    }
    f
}

/// The exact solution `f(x) = 1 + (f0 - 1) e^{c (x - x0)}`.
pub fn exact_f(c: f64, x0: f64, f0: f64, x: f64) -> f64 {
    1.0 + (f0 - 1.0) * (c * (x - x0)).exp()
}

/// Solves the interior continuous limit: the `c` with boundary
/// `f(2/c) = 2` and anchor `f(1) = (1 + eps)/eps` — analytically
/// `c = 2 + ln(1/eps)`.
pub fn interior_c(eps: f64) -> f64 {
    assert!(eps > 0.0);
    2.0 + (1.0 / eps).ln()
}

/// Solves the first-phase continuous limit with the paper's
/// normalization (`f(0) = 2`): `c = ln(1/eps)` (Proposition 1).
pub fn proposition1_c(eps: f64) -> f64 {
    assert!(eps > 0.0);
    (1.0 / eps).ln()
}

/// The continuous parameter profile at normalized index `x` in
/// `[2/c, 1]` for the interior regime.
pub fn interior_profile(eps: f64, x: f64) -> f64 {
    let c = interior_c(eps);
    let x0 = 2.0 / c;
    assert!(x >= x0 - 1e-12 && x <= 1.0 + 1e-12);
    exact_f(c, x0, 2.0, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RatioFn;

    #[test]
    fn rk4_matches_the_exact_solution() {
        let (c, x0, f0) = (5.0, 0.1, 2.0);
        for &x1 in &[0.2, 0.5, 1.0] {
            let numeric = integrate_f(c, x0, f0, x1, 2000);
            let exact = exact_f(c, x0, f0, x1);
            assert!(
                (numeric - exact).abs() < 1e-9 * exact,
                "x1={x1}: {numeric} vs {exact}"
            );
        }
    }

    #[test]
    fn interior_boundary_reproduces_the_anchor() {
        // With c = 2 + ln(1/eps) and f(2/c) = 2, the ODE must hit
        // f(1) = (1 + eps)/eps... in the eps -> 0 limit; at finite eps
        // the anchor is matched up to the (1 + eps) factor's log.
        for &eps in &[1e-3, 1e-6, 1e-9] {
            let c = interior_c(eps);
            let f1 = exact_f(c, 2.0 / c, 2.0, 1.0);
            let anchor = (1.0 + eps) / eps;
            let rel = (f1 - anchor).abs() / anchor;
            assert!(rel < 2.0 * eps + 1e-12, "eps={eps}: rel={rel}");
        }
    }

    #[test]
    fn discrete_parameters_approach_the_interior_profile() {
        // Large m, moderate eps: the discrete f_q at x = q/m should sit
        // close to the continuous profile.
        let eps = 0.01;
        let m = 2048;
        let params = RatioFn::new(m).eval(eps);
        let k = params.k;
        // Compare at a few interior sample points.
        for &frac in &[0.25, 0.5, 0.75, 1.0] {
            let q = k + ((m - k) as f64 * frac) as usize;
            let x = q as f64 / m as f64;
            let discrete = params.f(q);
            let continuous = interior_profile(eps, x.clamp(2.0 / interior_c(eps), 1.0));
            let rel = (discrete - continuous).abs() / continuous;
            assert!(
                rel < 0.08,
                "q={q} (x={x:.3}): discrete {discrete:.4} vs continuous {continuous:.4}"
            );
        }
    }

    #[test]
    fn interior_c_matches_the_discrete_limit() {
        let eps = 1e-4;
        let c_discrete = RatioFn::new(2048).lower_bound(eps);
        let c_cont = interior_c(eps);
        assert!(
            (c_discrete - c_cont).abs() / c_cont < 0.01,
            "{c_discrete} vs {c_cont}"
        );
    }

    #[test]
    fn proposition1_constant_is_the_x0_to_zero_limit() {
        // As the boundary x0 -> 0 (with f(x0) = 2), the solved c drops
        // from 2 + ln(1/eps) toward ln(1/eps)... solving
        // e^{c(1 - x0)} = 1/eps at x0 = 0 gives exactly ln(1/eps).
        let eps: f64 = 1e-6;
        // c solves (f(1) - 1) = (2 - 1) e^{c (1 - 0)} = 1/eps.
        let c_at_zero = (1.0 / eps).ln();
        assert!((c_at_zero - proposition1_c(eps)).abs() < 1e-12);
        assert!(proposition1_c(eps) < interior_c(eps));
    }

    #[test]
    fn profile_is_increasing_and_anchored() {
        let eps = 0.05;
        let c = interior_c(eps);
        let x0 = 2.0 / c;
        let mut prev = 0.0;
        for i in 0..=10 {
            let x = x0 + (1.0 - x0) * i as f64 / 10.0;
            let f = interior_profile(eps, x);
            assert!(f > prev, "profile must increase");
            prev = f;
        }
        assert!((interior_profile(eps, x0) - 2.0).abs() < 1e-12);
    }
}
