//! Analytic closed forms for the phases the paper can solve exactly.
//!
//! The paper (Section 1.1) notes that Identity (2)/(5) admits analytic
//! expressions only for the phases represented by `k in {m-2, m-1, m}`;
//! everything else requires numerical evaluation. This module implements
//! those closed forms — they serve both as a fast path and as independent
//! ground truth for validating the bisection solver (experiment E2).
//!
//! Derivations (with `F = f_m = (1+eps)/eps` and `D_q` as in
//! [`crate::recursion`]):
//!
//! * `k = m`: the single equation `c = (1 + m F)/m = 1/m + F`.
//! * `k = m-1`: substituting `f_{m-1} = (c (m-1) - 1)/m` into
//!   `c (m - 2 + f_{m-1}) = 1 + m F` gives
//!   `(m-1) c^2 + (m^2 - 2m - 1) c - (m + m^2 F) = 0`.
//! * `k = m-2` (requires `m >= 3`): one more substitution gives the cubic
//!   `(B/m) c^3 + (B + A/m) c^2 + (A - 1 - 1/m) c - (1 + m F) = 0` with
//!   `A = (m(m-3) - 1)/m` and `B = (m-2)/m`.
//! * `m = 1`: `c = 2 + 1/eps` (Goldwasser–Kerbikov).
//! * `m = 2`: Equation (1) of the paper.

use crate::poly;

/// `c(eps, 1) = 2 + 1/eps` — the single-machine closed form.
pub fn c_m1(eps: f64) -> f64 {
    assert!(eps > 0.0);
    2.0 + 1.0 / eps
}

/// Equation (1): the closed form of `c(eps, 2)` with its phase transition
/// at `eps = 2/7`.
pub fn c_m2(eps: f64) -> f64 {
    assert!(eps > 0.0);
    if eps < 2.0 / 7.0 {
        2.0 * (25.0 / 16.0 + 1.0 / eps).sqrt() + 0.5
    } else {
        1.5 + 1.0 / eps
    }
}

/// Closed form of the last phase `k = m`: `c = 1/m + (1+eps)/eps`.
pub fn c_phase_m(eps: f64, m: usize) -> f64 {
    assert!(eps > 0.0 && m >= 1);
    1.0 / m as f64 + (1.0 + eps) / eps
}

/// Closed form of phase `k = m - 1` (quadratic; requires `m >= 2`).
///
/// Returns the unique root above `(2m+1)/(m-1)`'s natural range — i.e. the
/// positive root of `(m-1) c^2 + (m^2 - 2m - 1) c - (m + m^2 F) = 0`.
pub fn c_phase_m1(eps: f64, m: usize) -> f64 {
    assert!(eps > 0.0 && m >= 2);
    let mf = m as f64;
    let big_f = (1.0 + eps) / eps;
    let a = mf - 1.0;
    let b = mf * mf - 2.0 * mf - 1.0;
    let c = -(mf + mf * mf * big_f);
    let roots = poly::quadratic_roots(a, b, c);
    *roots
        .iter()
        .find(|&&r| r > 0.0)
        .expect("phase m-1 quadratic must have a positive root")
}

/// Closed form of phase `k = m - 2` (cubic; requires `m >= 3`).
///
/// The positive root of
/// `(B/m) c^3 + (B + A/m) c^2 + (A - 1 - 1/m) c - (1 + m F) = 0`
/// with `A = (m(m-3) - 1)/m`, `B = (m-2)/m`.
pub fn c_phase_m2(eps: f64, m: usize) -> f64 {
    assert!(eps > 0.0 && m >= 3);
    let mf = m as f64;
    let big_f = (1.0 + eps) / eps;
    let a_coef = (mf * (mf - 3.0) - 1.0) / mf;
    let b_coef = (mf - 2.0) / mf;
    let c3 = b_coef / mf;
    let c2 = b_coef + a_coef / mf;
    let c1 = a_coef - 1.0 - 1.0 / mf;
    let c0 = -(1.0 + mf * big_f);
    let roots = poly::cubic_roots(c3, c2, c1, c0);
    *roots
        .iter()
        .find(|&&r| r > 0.0)
        .expect("phase m-2 cubic must have a positive root")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recursion;

    /// Midpoint of phase `k`'s slack interval for `m` machines.
    fn phase_mid(m: usize, k: usize) -> f64 {
        let lo = if k == 1 {
            0.0
        } else {
            recursion::corner_value(m, k - 1)
        };
        let hi = recursion::corner_value(m, k);
        0.5 * (lo + hi)
    }

    #[test]
    fn m1_closed_form_matches_solver() {
        for &eps in &[0.01, 0.3, 1.0] {
            let (c, _) = recursion::solve(1, 1, eps);
            assert!((c - c_m1(eps)).abs() < 1e-9 * c);
        }
    }

    #[test]
    fn m2_closed_form_matches_solver_on_both_phases() {
        for &eps in &[0.02, 0.15, 2.0 / 7.0 - 1e-6, 2.0 / 7.0, 0.5, 1.0] {
            let k = if eps <= 2.0 / 7.0 { 1 } else { 2 };
            let (c, _) = recursion::solve(2, k, eps);
            assert!((c - c_m2(eps)).abs() < 1e-8 * c, "eps={eps}");
        }
    }

    #[test]
    fn phase_m_closed_form_matches_solver() {
        for m in 1..=10 {
            let eps = phase_mid(m, m);
            let (c, _) = recursion::solve(m, m, eps);
            assert!((c - c_phase_m(eps, m)).abs() < 1e-9 * c, "m={m}");
        }
    }

    #[test]
    fn phase_m1_closed_form_matches_solver() {
        for m in 2..=10 {
            let eps = phase_mid(m, m - 1);
            let (c, _) = recursion::solve(m, m - 1, eps);
            let closed = c_phase_m1(eps, m);
            assert!(
                (c - closed).abs() < 1e-8 * c,
                "m={m}: solver {c} vs closed {closed}"
            );
        }
    }

    #[test]
    fn phase_m2_closed_form_matches_solver() {
        for m in 3..=10 {
            let eps = phase_mid(m, m - 2);
            let (c, _) = recursion::solve(m, m - 2, eps);
            let closed = c_phase_m2(eps, m);
            assert!(
                (c - closed).abs() < 1e-8 * c,
                "m={m}: solver {c} vs closed {closed}"
            );
        }
    }

    #[test]
    fn m2_phase1_is_the_quadratic_special_case() {
        // c_phase_m1 with m = 2 must coincide with Equation (1)'s sqrt form.
        for &eps in &[0.05, 0.2, 0.28] {
            assert!((c_phase_m1(eps, 2) - c_m2(eps)).abs() < 1e-9);
        }
    }

    #[test]
    fn closed_forms_decrease_in_eps() {
        for m in 3..=5 {
            let lo = phase_mid(m, m - 2);
            assert!(c_phase_m2(lo, m) > c_phase_m2(lo * 1.01, m));
            assert!(c_phase_m1(0.3, m) > c_phase_m1(0.31, m));
            assert!(c_phase_m(0.9, m) > c_phase_m(0.95, m));
        }
    }
}
