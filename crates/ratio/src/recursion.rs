//! The forward recursion behind Equation (5) and the bisection solver.
//!
//! With `D_q = k + sum_{h=k}^{q-1} (f_h - 1)` (so `D_k = k`), Equation (5)
//! reads `c * D_q = 1 + m * f_q` for every `q` in `{k, ..., m}`. Given a
//! candidate ratio `c` the sequence is therefore determined forward:
//!
//! ```text
//! D_k = k
//! f_q = (c * D_q - 1) / m
//! D_{q+1} = D_q + f_q - 1
//! ```
//!
//! and the anchor (4), `f_m = (1 + eps)/eps`, becomes a scalar root-finding
//! problem in `c`. On the bracket used here (where every `f_q >= 2 - o(1)`,
//! cf. constraint (6)) the map `c -> f_m(c)` is strictly increasing, so
//! plain bisection is robust for any `(m, k, eps)`.

/// Absolute/relative bisection tolerance on `c`.
const C_TOL: f64 = 1e-13;
/// Hard iteration cap (2^-200 of the initial bracket; unreachable in
/// practice before `C_TOL` stops it).
const MAX_ITERS: usize = 200;

/// Runs the forward recursion for phase variant `k` with candidate ratio
/// `c`, returning the parameters `f_k ..= f_m` (length `m - k + 1`).
pub fn forward(m: usize, k: usize, c: f64) -> Vec<f64> {
    assert!(k >= 1 && k <= m, "phase k must lie in 1..=m");
    let mf = m as f64;
    let mut d = k as f64;
    let mut f = Vec::with_capacity(m - k + 1);
    for _q in k..=m {
        let fq = (c * d - 1.0) / mf;
        f.push(fq);
        d += fq - 1.0;
    }
    f
}

/// The value `f_m` produced by the forward recursion (last element of
/// [`forward`]) without allocating.
pub fn forward_last(m: usize, k: usize, c: f64) -> f64 {
    let mf = m as f64;
    let mut d = k as f64;
    let mut fq = 0.0;
    for _q in k..=m {
        fq = (c * d - 1.0) / mf;
        d += fq - 1.0;
    }
    fq
}

/// Solves the phase-`k` recursion at slack `eps`: returns
/// `(c, [f_k, ..., f_m])` such that (4) and (5) hold.
///
/// The bracket is `[ (2m + 1)/k, (1 + m * f_m^target)/k ]`:
/// * at the left end `f_k = 2`, so by monotonicity of the recursion the
///   produced `f_m` is the corner anchor, which is `<=` the target for any
///   `eps <= eps_{k,m}`;
/// * at the right end `f_k` already equals the target `f_m`, and the
///   remaining parameters only grow, so the produced `f_m` overshoots.
///
/// For `eps > eps_{k,m}` (caller picked a variant left of the slack's true
/// phase) the left end may already overshoot; the bracket is then widened
/// downward so the function still returns the analytic continuation, which
/// is what the corner-continuity tests exercise.
pub fn solve(m: usize, k: usize, eps: f64) -> (f64, Vec<f64>) {
    assert!(eps > 0.0, "slack must be positive");
    let target = (1.0 + eps) / eps; // f_m anchor (4)
    let mut lo = (2.0 * m as f64 + 1.0) / k as f64;
    // At hi the recursion reproduces the target exactly (up to rounding)
    // when k = m; the relative headroom keeps the bracket valid in floats.
    let mut hi = (1.0 + m as f64 * target) / k as f64 * (1.0 + 1e-9);
    // Widen downward if needed (analytic continuation past the corner).
    let mut guard = 0;
    while forward_last(m, k, lo) > target {
        lo = 1.0 + (lo - 1.0) * 0.5;
        guard += 1;
        assert!(guard < 200, "failed to bracket c from below");
    }
    debug_assert!(forward_last(m, k, hi) >= target);
    for _ in 0..MAX_ITERS {
        let mid = 0.5 * (lo + hi);
        if forward_last(m, k, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= C_TOL * hi.max(1.0) {
            break;
        }
    }
    let c = 0.5 * (lo + hi);
    (c, forward(m, k, c))
}

/// The corner value `eps_{k,m}` defined by `f_k(eps_{k,m}, m) = 2` (7).
///
/// At the corner, `c = (m * f_k + 1)/k = (2m + 1)/k`; running the
/// recursion forward from that `c` yields the anchor `f_m`, and inverting
/// (4) gives `eps = 1/(f_m - 1)`.
pub fn corner_value(m: usize, k: usize) -> f64 {
    let c = (2.0 * m as f64 + 1.0) / k as f64;
    let fm = forward_last(m, k, c);
    1.0 / (fm - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_with_k_equals_m_is_just_the_anchor_formula() {
        // Single step: f_m = (c m - 1)/m.
        let f = forward(4, 4, 3.0);
        assert_eq!(f.len(), 1);
        assert!((f[0] - (3.0 * 4.0 - 1.0) / 4.0).abs() < 1e-15);
        assert_eq!(forward_last(4, 4, 3.0), f[0]);
    }

    #[test]
    fn forward_last_agrees_with_forward() {
        for m in 1..=8 {
            for k in 1..=m {
                let c = 2.0 + m as f64;
                let f = forward(m, k, c);
                assert_eq!(*f.last().unwrap(), forward_last(m, k, c));
                assert_eq!(f.len(), m - k + 1);
            }
        }
    }

    #[test]
    fn forward_is_monotone_in_c() {
        for m in 2..=6 {
            for k in 1..=m {
                let base = (2.0 * m as f64 + 1.0) / k as f64;
                let mut prev = forward_last(m, k, base);
                for i in 1..20 {
                    let c = base + i as f64 * 0.5;
                    let cur = forward_last(m, k, c);
                    assert!(cur > prev, "m={m} k={k}: f_m not increasing in c");
                    prev = cur;
                }
            }
        }
    }

    #[test]
    fn solve_reproduces_the_anchor() {
        for m in 1..=8 {
            for k in 1..=m {
                // Pick eps inside phase k.
                let lo = if k == 1 { 0.0 } else { corner_value(m, k - 1) };
                let hi = corner_value(m, k);
                let eps = 0.5 * (lo + hi);
                let (_c, f) = solve(m, k, eps);
                let fm = *f.last().unwrap();
                assert!(
                    (fm - (1.0 + eps) / eps).abs() < 1e-8 * fm,
                    "m={m} k={k}: anchor violated"
                );
            }
        }
    }

    #[test]
    fn solve_parameters_increase_in_q_and_respect_constraint_6() {
        for m in 2..=8 {
            for k in 1..=m {
                let lo = if k == 1 { 0.0 } else { corner_value(m, k - 1) };
                let hi = corner_value(m, k);
                let eps = 0.25 * lo + 0.75 * hi;
                let (_, f) = solve(m, k, eps);
                for w in f.windows(2) {
                    assert!(w[0] < w[1], "m={m} k={k}: f_q not increasing");
                }
                assert!(f[0] >= 2.0 - 1e-9, "m={m} k={k}: f_k < 2 inside phase");
            }
        }
    }

    #[test]
    fn corner_value_m2_k1_is_two_sevenths() {
        assert!((corner_value(2, 1) - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn corner_value_k_equals_m_is_one() {
        for m in 1..=10 {
            assert!((corner_value(m, m) - 1.0).abs() < 1e-12, "m={m}");
        }
    }

    #[test]
    fn at_corner_f_k_is_exactly_two() {
        for m in 2..=8 {
            for k in 1..=m {
                let eps = corner_value(m, k);
                let (_, f) = solve(m, k, eps);
                assert!((f[0] - 2.0).abs() < 1e-7, "m={m} k={k}: f_k={}", f[0]);
            }
        }
    }

    #[test]
    fn solve_handles_tiny_slack() {
        let (c, f) = solve(4, 1, 1e-9);
        assert!(c.is_finite() && c > 0.0);
        assert!((f.last().unwrap() - (1.0 + 1e-9) / 1e-9).abs() / f.last().unwrap() < 1e-6);
    }

    #[test]
    fn analytic_continuation_past_corner_still_solves() {
        // eps beyond the k-phase: solve still matches the anchor.
        let m = 3;
        let eps = 0.9; // true phase is 3, ask for variant 1
        let (_, f) = solve(m, 1, eps);
        let fm = *f.last().unwrap();
        assert!((fm - (1.0 + eps) / eps).abs() < 1e-8 * fm.max(1.0));
    }
}
