//! Property tests for the ratio machinery: structural invariants of
//! `c(eps, m)` and the `f_q` parameters over randomized `(m, eps)`.

use cslack_ratio::{recursion, RatioFn};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The solved parameters satisfy the defining recursion (5): the
    /// ratio (1 + m f_q) / D_q is the same for every q.
    #[test]
    fn recursion_identity_holds(m in 1usize..=10, eps in 0.001f64..=1.0) {
        let r = RatioFn::new(m);
        let p = r.eval(eps);
        let mf = m as f64;
        let mut d = p.k as f64;
        for h in p.k..=m {
            let lhs = (1.0 + mf * p.f(h)) / d;
            prop_assert!(
                (lhs - p.c).abs() < 1e-6 * p.c,
                "m={m} eps={eps} h={h}: {lhs} vs c {}", p.c
            );
            d += p.f(h) - 1.0;
        }
    }

    /// The anchor (4): f_m = (1 + eps)/eps, always.
    #[test]
    fn anchor_holds(m in 1usize..=10, eps in 0.001f64..=1.0) {
        let p = RatioFn::new(m).eval(eps);
        let anchor = (1.0 + eps) / eps;
        prop_assert!((p.f(m) - anchor).abs() < 1e-6 * anchor);
    }

    /// Constraint (6): every parameter in the chosen phase is >= 2, and
    /// the parameters strictly increase in q.
    #[test]
    fn constraint6_and_monotonicity(m in 2usize..=10, eps in 0.001f64..=1.0) {
        let p = RatioFn::new(m).eval(eps);
        let f = p.f_all();
        prop_assert!(f[0] >= 2.0 - 1e-7, "f_k = {} < 2", f[0]);
        for w in f.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12, "f not nondecreasing: {w:?}");
        }
    }

    /// c is decreasing in eps (sampled pairwise).
    #[test]
    fn c_is_decreasing_in_eps(m in 1usize..=8, eps in 0.001f64..=0.9, bump in 0.01f64..=0.1) {
        let r = RatioFn::new(m);
        let a = r.lower_bound(eps);
        let b = r.lower_bound((eps + bump).min(1.0));
        prop_assert!(b <= a + 1e-9, "c increased: c({eps})={a} < c({})={b}", eps + bump);
    }

    /// c is decreasing in m.
    #[test]
    fn c_is_decreasing_in_m(m in 1usize..=9, eps in 0.001f64..=1.0) {
        let a = RatioFn::new(m).lower_bound(eps);
        let b = RatioFn::new(m + 1).lower_bound(eps);
        prop_assert!(b <= a + 1e-9, "c(m={}) = {b} > c(m={m}) = {a}", m + 1);
    }

    /// Theorem 1 form: c = (m f_k + 1)/k.
    #[test]
    fn theorem1_form(m in 1usize..=10, eps in 0.001f64..=1.0) {
        let p = RatioFn::new(m).eval(eps);
        let direct = (m as f64 * p.f(p.k) + 1.0) / p.k as f64;
        prop_assert!((p.c - direct).abs() < 1e-6 * p.c);
    }

    /// Phase lookup agrees with the corner values: eps is inside its
    /// phase's interval.
    #[test]
    fn phase_lookup_consistent(m in 1usize..=10, eps in 0.001f64..=1.0) {
        let r = RatioFn::new(m);
        let k = r.phase(eps);
        prop_assert!(eps <= r.corner(k) + 1e-12);
        if k > 1 {
            prop_assert!(eps > r.corner(k - 1) - 1e-9);
        }
    }

    /// Forward recursion round trip: solving then re-running `forward`
    /// with the solved c reproduces the same parameters.
    #[test]
    fn forward_round_trip(m in 1usize..=10, k_off in 0usize..3, eps in 0.001f64..=1.0) {
        let r = RatioFn::new(m);
        let k_true = r.phase(eps);
        let k = (k_true + k_off).min(m); // also exercise off-phase variants
        let (c, f) = recursion::solve(m, k, eps);
        let f2 = recursion::forward(m, k, c);
        prop_assert_eq!(f.len(), f2.len());
        for (a, b) in f.iter().zip(&f2) {
            prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
        }
    }

    /// The lower bound is always strictly above 1 (no instance is
    /// trivially solvable online) and below 3 + 1/eps + 1/m (sanity
    /// ceiling from the m = 1 curve).
    #[test]
    fn c_is_sane(m in 1usize..=12, eps in 0.001f64..=1.0) {
        let c = RatioFn::new(m).lower_bound(eps);
        prop_assert!(c > 1.0);
        prop_assert!(c <= 2.0 + 1.0 / eps + 1e-9, "c exceeds the m=1 curve");
    }
}
