//! The **delayed commitment** model: given the slack `eps` and a
//! parameter `delta <= eps`, the scheduler may postpone the
//! accept/reject decision for `J_j` until time `r_j + delta * p_j`
//! (Chen–Eberle–Megow–Schewior–Stein's model, cited in the paper's
//! introduction). Once made, the decision is irrevocable and — in our
//! non-preemptive setting — fixes machine and start time like immediate
//! commitment does.
//!
//! The value of the delay window is *information*: jobs released while
//! a decision is pending can change it. The implementation couples a
//! small event-driven driver (release events interleaved with
//! decision-deadline events) with a simple benefit-extracting policy:
//!
//! * jobs wait in a pending pool until their decision deadline;
//! * at a decision deadline the scheduler commits the pending job iff
//!   appending it (best-fit, earliest start *now*) still meets its
//!   deadline **and** no strictly larger pending job would be displaced
//!   by it (larger jobs get first claim on the machines they fit);
//! * `delta = 0` degenerates to the immediate-commitment greedy.
//!
//! Like the other alternative-model comparators, this type drives
//! itself (`offer` + `finish`) and returns an ordinary non-preemptive
//! [`Schedule`] that the kernel validator checks.

use crate::alloc::AllocCore;
use cslack_kernel::{Job, Schedule, Time};

/// Delayed-commitment greedy with parameter `delta`.
#[derive(Clone, Debug)]
pub struct DelayedGreedy {
    m: usize,
    delta: f64,
    now: Time,
    core: AllocCore,
    /// Admitted-to-the-pool jobs with their decision deadlines.
    pending: Vec<(Job, Time)>,
    schedule: Schedule,
    accepted_load: f64,
    rejected: Vec<cslack_kernel::JobId>,
}

impl DelayedGreedy {
    /// Builds the algorithm on `m` machines with decision delay factor
    /// `delta` (must satisfy `0 <= delta <= eps` for the model to be
    /// meaningful; `delta` is not clamped here because the comparison
    /// experiments sweep it).
    pub fn new(m: usize, delta: f64) -> DelayedGreedy {
        assert!(m >= 1 && delta >= 0.0);
        DelayedGreedy {
            m,
            delta,
            now: Time::ZERO,
            core: AllocCore::new(m),
            pending: Vec::new(),
            schedule: Schedule::new(m),
            accepted_load: 0.0,
            rejected: Vec::new(),
        }
    }

    /// The decision-delay factor.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.m
    }

    /// Load committed so far (excludes pending jobs, whose fate is
    /// still open).
    pub fn committed_load(&self) -> f64 {
        self.accepted_load
    }

    /// Processes all decision deadlines up to time `t`.
    fn advance_to(&mut self, t: Time) {
        // Earliest decision deadline at or before t, repeatedly.
        while let Some(pos) = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, (_, dd))| *dd <= t)
            .min_by(|a, b| (a.1).1.cmp(&(b.1).1))
            .map(|(i, _)| i)
        {
            let (job, decision_time) = self.pending.remove(pos);
            self.decide(job, decision_time);
        }
        self.now = self.now.max(t);
    }

    /// Makes the irrevocable decision for `job` at `decision_time`.
    fn decide(&mut self, job: Job, decision_time: Time) {
        self.now = self.now.max(decision_time);
        let now = self.now;
        let candidates = self.core.candidates(&job, now);
        if candidates.is_empty() {
            self.rejected.push(job.id);
            return;
        }
        // Priority rule (the point of the delay window): do not commit
        // this job anywhere it would *kill* a strictly larger pending
        // job — i.e. make a bigger job that currently fits somewhere
        // lose its last feasible machine. Whether a bigger job fits
        // *before* the trial commit is candidate-independent, so that
        // half of the check is hoisted out of the per-candidate loop.
        let bigger: Vec<Job> = self
            .pending
            .iter()
            .filter(|(b, _)| b.proc_time > job.proc_time)
            .map(|(b, _)| *b)
            .collect();
        let bigger_fitting: Vec<Job> = bigger
            .into_iter()
            .filter(|b| !self.core.candidates(b, now).is_empty())
            .collect();
        let chosen = candidates.iter().copied().find(|&machine| {
            let start = self.core.earliest_start(machine, now);
            let mut trial = self.core.clone();
            trial.commit(machine, start, job.proc_time);
            !bigger_fitting
                .iter()
                .any(|bigger| trial.candidates(bigger, now).is_empty())
        });
        let Some(machine) = chosen else {
            self.rejected.push(job.id);
            return;
        };
        let start = self.core.earliest_start(machine, now);
        self.core.commit(machine, start, job.proc_time);
        self.schedule
            .commit(job, machine, start)
            .expect("delayed commit is feasible by construction");
        self.accepted_load += job.proc_time;
    }

    /// Offers a job at its release date; the decision happens by
    /// `min(r + delta * p, d - p)` — the model allows deciding *before*
    /// `r + delta p`, and an acceptance after the latest feasible start
    /// would be worthless, so the window is trimmed to the laxity.
    pub fn offer(&mut self, job: &Job) {
        self.advance_to(job.release);
        let window_end = job.release + self.delta * job.proc_time;
        let decision_deadline = window_end.min(job.latest_start()).max(job.release);
        self.pending.push((*job, decision_deadline));
        if self.delta == 0.0 {
            self.advance_to(job.release);
        }
    }

    /// Flushes all pending decisions and returns the final schedule.
    pub fn finish(mut self) -> Schedule {
        let horizon = self
            .pending
            .iter()
            .map(|(_, dd)| *dd)
            .max()
            .unwrap_or(self.now);
        self.advance_to(horizon);
        debug_assert!(self.pending.is_empty());
        self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::JobId;

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn delta_zero_matches_greedy_decisions() {
        use crate::{Greedy, OnlineScheduler};
        let jobs = [
            job(0, 0.0, 1.0, 1.5),
            job(1, 0.0, 1.0, 1.5),
            job(2, 0.2, 2.0, 10.0),
            job(3, 0.5, 1.0, 1.8),
        ];
        let mut delayed = DelayedGreedy::new(2, 0.0);
        let mut greedy = Greedy::new(2);
        let mut greedy_accepts = Vec::new();
        for j in &jobs {
            delayed.offer(j);
            if greedy.offer(j).is_accept() {
                greedy_accepts.push(j.id);
            }
        }
        let s = delayed.finish();
        let delayed_accepts: Vec<JobId> = jobs
            .iter()
            .filter(|j| s.contains(j.id))
            .map(|j| j.id)
            .collect();
        assert_eq!(delayed_accepts, greedy_accepts);
    }

    #[test]
    fn delay_window_lets_a_big_job_displace_a_small_one() {
        // Single machine. A small tight job arrives, then within its
        // decision window a big tight job arrives that conflicts.
        // Immediate greedy takes the small job and loses the big one;
        // delayed commitment (delta = eps) keeps the big one.
        let eps = 0.5;
        let small = Job::tight(JobId(0), Time::ZERO, 1.0, eps); // window [0, 1.5]
                                                                // Big job whose window truly conflicts with a started small job:
                                                                // after [0, 1) the machine frees at 1, but 1 + 2 > 2.9.
        let big = job(1, 0.1, 2.0, 2.9);
        let mut delayed = DelayedGreedy::new(1, eps);
        delayed.offer(&small); // decision due at 0.5
        delayed.offer(&big); // decision due at 1.1
        let s = delayed.finish();
        assert!(s.contains(JobId(1)), "big job must be kept");
        // The small job was displaced (machine reserved for the big).
        assert!(!s.contains(JobId(0)));

        let mut greedy = crate::Greedy::new(1);
        use crate::OnlineScheduler;
        assert!(greedy.offer(&small).is_accept());
        assert!(!greedy.offer(&big).is_accept(), "greedy is stuck");
    }

    #[test]
    fn non_conflicting_jobs_are_all_kept() {
        let mut a = DelayedGreedy::new(2, 0.3);
        for i in 0..6 {
            a.offer(&job(i, i as f64 * 5.0, 1.0, i as f64 * 5.0 + 4.0));
        }
        let s = a.finish();
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn final_schedule_is_kernel_valid() {
        let mut b = cslack_kernel::InstanceBuilder::new(2, 0.25);
        for i in 0..40 {
            let r = (i % 9) as f64 * 0.5;
            let p = 0.2 + (i % 6) as f64 * 0.5;
            b.push_tight(Time::new(r), p);
        }
        let inst = b.build().unwrap();
        let mut a = DelayedGreedy::new(2, 0.25);
        for j in inst.jobs() {
            a.offer(j);
        }
        let s = a.finish();
        cslack_kernel::validate::assert_valid(&inst, &s);
    }

    #[test]
    fn decision_respects_the_window_not_the_release() {
        // The decision for a long job falls after a later small
        // arrival: the pool sees both.
        let mut a = DelayedGreedy::new(1, 1.0);
        let long = job(0, 0.0, 4.0, 10.0); // decision due at 4.0
        let tight = job(1, 1.0, 1.0, 2.2); // decision due at 2.0
        a.offer(&long);
        a.offer(&tight);
        let s = a.finish();
        // Tight decided first (earlier deadline): committed at 1.0.
        // Long decided at 4.0: starts after tight.
        assert!(s.contains(JobId(0)) && s.contains(JobId(1)));
        let c_tight = s.commitment_of(JobId(1)).unwrap();
        let c_long = s.commitment_of(JobId(0)).unwrap();
        assert!(c_tight.start < c_long.start);
        assert!(
            c_long.start.raw() >= 4.0 - 1e-9,
            "long decided at its window end"
        );
    }

    #[test]
    fn committed_load_excludes_pending() {
        let mut a = DelayedGreedy::new(1, 1.0);
        a.offer(&job(0, 0.0, 2.0, 10.0));
        assert_eq!(a.committed_load(), 0.0); // still pending
        a.advance_to(Time::new(3.0));
        assert_eq!(a.committed_load(), 2.0);
    }
}
