//! Algorithm 1 of the paper: the **Threshold** admission policy.
//!
//! On the submission of job `J_j` at time `r_j`:
//!
//! 1. rank the machines by decreasing outstanding load,
//!    `l(m_1) >= ... >= l(m_m)`;
//! 2. compute the machine-dependent deadline thresholds
//!    `d_{lim,h} = r_j + l(m_h) * f_h` for `h in {k, ..., m}` (Eq. 9) and
//!    the system threshold `d_lim = max_h d_{lim,h}` (Eq. 10);
//! 3. reject iff `d_j < d_lim`;
//! 4. otherwise allocate `J_j` to the **most loaded candidate machine**
//!    (best fit: the most loaded machine that can still complete the job
//!    by its deadline), starting immediately after that machine's
//!    outstanding load.
//!
//! The `k` most loaded machines do not contribute to the threshold —
//! intuitively they are the "workhorses" whose load is allowed to grow
//! freely; only the `m - k + 1` least loaded machines gate admission.
//! The phase index `k` and the factors `f_k < ... < f_m` come from
//! [`cslack_ratio`].
//!
//! The same engine, parameterized by [`ThresholdPolicy`], also powers the
//! ablation variants of [`crate::ablation`].

use crate::alloc::{AllocCore, Placement};
use crate::{Decision, DecisionInfo, OnlineScheduler};
use cslack_kernel::{Instance, Job, Time};
use cslack_obs::RejectReason;
use cslack_ratio::RatioFn;
use std::sync::Arc;

// The policy vocabulary lives in the shared allocator core; re-exported
// here because Threshold is where callers historically found it.
pub use crate::alloc::{AllocPolicy, RankingMode, StartPolicy};

/// Tunable engine behind [`Threshold`] and the ablation variants.
#[derive(Clone, Debug)]
pub struct ThresholdPolicy {
    /// Phase index override (`None` = paper's `k` from the corner values).
    pub forced_k: Option<usize>,
    /// Replace all graded factors by the constant anchor `(1+eps)/eps`.
    pub constant_f: bool,
    /// Allocation rule among candidates.
    pub alloc: AllocPolicy,
    /// Start-time rule for accepted jobs.
    pub start: StartPolicy,
    /// How the machine ranking is produced (decision-identical either
    /// way; [`RankingMode::FullSort`] is the reference/bench baseline).
    pub ranking: RankingMode,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        ThresholdPolicy {
            forced_k: None,
            constant_f: false,
            alloc: AllocPolicy::BestFit,
            start: StartPolicy::Earliest,
            ranking: RankingMode::Incremental,
        }
    }
}

/// The Threshold engine: Algorithm 1 with optional policy overrides.
#[derive(Clone, Debug)]
pub struct ThresholdEngine {
    name: &'static str,
    m: usize,
    eps: f64,
    /// Phase index `k` (1-based, paper notation).
    k: usize,
    /// `f[h - k] = f_h` for `h in k ..= m` — shared through the memoized
    /// [`cslack_ratio::table`], so engines with equal parameters point at
    /// one vector.
    f: Arc<Vec<f64>>,
    policy: ThresholdPolicy,
    core: AllocCore,
}

impl ThresholdEngine {
    /// Builds the engine for `m` machines and slack `eps` under `policy`.
    ///
    /// Parameter derivation (corner values, the `f_q` recursion) is
    /// served from the process-wide [`cslack_ratio::table`]: only the
    /// first engine for a given `(m, k, eps)` pays the bisection; engine
    /// shards, adversary games and sweeps constructed after it share the
    /// cached vectors.
    pub fn with_policy(
        name: &'static str,
        m: usize,
        eps: f64,
        policy: ThresholdPolicy,
    ) -> ThresholdEngine {
        assert!(m >= 1, "need at least one machine");
        assert!(eps > 0.0, "slack must be positive");
        // The theory restricts eps to (0, 1]; for larger slack the phase-m
        // parameters still define a sensible (constant-competitive)
        // policy, so clamp the slack used for parameter derivation.
        let eps_params = eps.min(1.0);
        let ratio = RatioFn::new(m);
        let k = policy.forced_k.unwrap_or_else(|| ratio.phase(eps_params));
        assert!(k >= 1 && k <= m, "phase index must lie in 1..=m");
        let f = if policy.constant_f {
            Arc::new(vec![(1.0 + eps_params) / eps_params; m - k + 1])
        } else {
            cslack_ratio::table::solve(m, k, eps_params).f
        };
        ThresholdEngine {
            name,
            m,
            eps,
            k,
            f,
            core: AllocCore::with_mode(m, policy.ranking),
            policy,
        }
    }

    /// The slack the engine was configured with.
    #[inline]
    pub fn slack(&self) -> f64 {
        self.eps
    }

    /// The phase index `k` in use.
    #[inline]
    pub fn phase_k(&self) -> usize {
        self.k
    }

    /// The factor `f_h` for paper index `h in k ..= m`.
    #[inline]
    pub fn factor(&self, h: usize) -> f64 {
        self.f[h - self.k]
    }

    /// The current system threshold `d_lim` a job released at `now` would
    /// be tested against (Eq. 9 and 10). Exposed for tests and traces.
    ///
    /// This is a `&self` introspection path, so it ranks through the
    /// sort-based reference implementation; the decision path proper
    /// uses the incremental ranking, which produces the identical view.
    pub fn current_dlim(&self, now: Time) -> Time {
        let ranked = self.core.park().ranked(now);
        let mut dlim = now;
        for h in self.k..=self.m {
            let l = ranked[h - 1].load;
            dlim = dlim.max(now + l * self.factor(h));
        }
        dlim
    }

    /// The full Algorithm-1 decision with its trace explanation: the
    /// threshold the job was tested against, the least loaded machine's
    /// outstanding load, how many candidates the allocator evaluated,
    /// and — for rejections — the typed [`RejectReason`].
    fn decide(&mut self, job: &Job) -> (Decision, DecisionInfo) {
        let now = job.release;

        // Decision phase: d_lim = max_{h in k..m} (now + l(m_h) f_h).
        // The ranking computed here stays cached in the core, so the
        // allocation phase below does not rank again.
        let (dlim, min_load) = {
            let _span = cslack_obs::span!("threshold_eval");
            let ranked = self.core.rank(now);
            let mut dlim = now;
            for h in self.k..=self.m {
                let l = ranked[h - 1].load;
                dlim = dlim.max(now + l * self.f[h - self.k]);
            }
            (dlim, ranked[self.m - 1].load)
        };
        let mut info = DecisionInfo {
            candidates: 0,
            threshold: Some(dlim.raw()),
            min_load: Some(min_load),
            reject_reason: None,
        };
        // Accept iff d_j >= d_lim (paper line 5: reject if d_j < d_lim).
        if !job.deadline.approx_ge(dlim) {
            info.reject_reason = Some(RejectReason::ThresholdExceeded);
            return (Decision::Reject, info);
        }

        // Allocation phase, via the shared core: candidate machines can
        // complete the job on time when started right after their
        // outstanding load.
        match self
            .core
            .place(job, now, self.policy.alloc, self.policy.start)
        {
            Placement::Committed {
                machine,
                start,
                evaluated,
            } => {
                info.candidates = evaluated;
                (Decision::Accept { machine, start }, info)
            }
            Placement::Infeasible { evaluated } => {
                // Claim 1 guarantees the least loaded machine is always a
                // candidate for the paper's parameters; ablated parameter
                // sets can break that guarantee, in which case the job
                // must be rejected to preserve commitment feasibility.
                info.candidates = evaluated;
                info.reject_reason = Some(RejectReason::NoFeasibleMachine);
                (Decision::Reject, info)
            }
        }
    }
}

impl OnlineScheduler for ThresholdEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn machines(&self) -> usize {
        self.m
    }

    fn offer(&mut self, job: &Job) -> Decision {
        self.decide(job).0
    }

    fn offer_explained(&mut self, job: &Job) -> (Decision, DecisionInfo) {
        self.decide(job)
    }

    fn reset(&mut self) {
        self.core.reset();
    }
}

/// **Algorithm 1 (Threshold)** — the paper's deterministic online
/// algorithm with immediate commitment; Theorem 2 bounds its competitive
/// ratio by `c(eps, m)` for `k <= 3` and `c(eps, m) + 0.164` otherwise.
///
/// ```
/// use cslack_algorithms::{OnlineScheduler, Threshold};
/// use cslack_kernel::{Job, JobId, Time};
///
/// let mut alg = Threshold::new(1, 0.5); // one machine, slack 1/2
/// // Idle system: a slack-feasible job is accepted.
/// let j0 = Job::tight(JobId(0), Time::ZERO, 1.0, 0.5);
/// assert!(alg.offer(&j0).is_accept());
/// // Outstanding load 1 => threshold d_lim = f_1 * 1 = 3: a deadline
/// // below 3 is rejected even though the machine could fit the job.
/// let j1 = Job::new(JobId(1), Time::ZERO, 1.0, Time::new(2.9));
/// assert!(!alg.offer(&j1).is_accept());
/// ```
#[derive(Clone, Debug)]
pub struct Threshold {
    engine: ThresholdEngine,
}

impl Threshold {
    /// Builds Threshold for `m` machines and slack `eps`.
    pub fn new(m: usize, eps: f64) -> Threshold {
        Threshold {
            engine: ThresholdEngine::with_policy("threshold", m, eps, ThresholdPolicy::default()),
        }
    }

    /// Builds Threshold matching an instance's `m` and `eps`.
    pub fn for_instance(instance: &Instance) -> Threshold {
        Threshold::new(instance.machines(), instance.slack())
    }

    /// The phase index `k` in use.
    pub fn phase_k(&self) -> usize {
        self.engine.phase_k()
    }

    /// The factor `f_h` for `h in k ..= m` (paper indexing).
    pub fn factor(&self, h: usize) -> f64 {
        self.engine.factor(h)
    }

    /// The threshold a job released at `now` would face.
    pub fn current_dlim(&self, now: Time) -> Time {
        self.engine.current_dlim(now)
    }
}

impl OnlineScheduler for Threshold {
    fn name(&self) -> &'static str {
        self.engine.name()
    }
    fn machines(&self) -> usize {
        self.engine.machines()
    }
    fn offer(&mut self, job: &Job) -> Decision {
        self.engine.offer(job)
    }
    fn offer_explained(&mut self, job: &Job) -> (Decision, DecisionInfo) {
        self.engine.offer_explained(job)
    }
    fn reset(&mut self) {
        self.engine.reset();
    }
}

/// Goldwasser–Kerbikov's optimal `2 + 1/eps` single-machine algorithm
/// with immediate commitment.
///
/// On one machine the paper's Threshold degenerates exactly to it: `k = 1`,
/// a single factor `f_1 = (1 + eps)/eps`, i.e. accept `J_j` iff
/// `d_j >= r_j + l * (1 + eps)/eps` and append. This type is that
/// specialization under its historical name.
#[derive(Clone, Debug)]
pub struct GoldwasserKerbikov {
    engine: ThresholdEngine,
}

impl GoldwasserKerbikov {
    /// Builds the single-machine algorithm for slack `eps`.
    pub fn new(eps: f64) -> GoldwasserKerbikov {
        GoldwasserKerbikov {
            engine: ThresholdEngine::with_policy(
                "goldwasser-kerbikov",
                1,
                eps,
                ThresholdPolicy::default(),
            ),
        }
    }
}

impl OnlineScheduler for GoldwasserKerbikov {
    fn name(&self) -> &'static str {
        self.engine.name()
    }
    fn machines(&self) -> usize {
        1
    }
    fn offer(&mut self, job: &Job) -> Decision {
        self.engine.offer(job)
    }
    fn offer_explained(&mut self, job: &Job) -> (Decision, DecisionInfo) {
        self.engine.offer_explained(job)
    }
    fn reset(&mut self) {
        self.engine.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::{InstanceBuilder, JobId, MachineId};

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn empty_system_accepts_anything() {
        let mut t = Threshold::new(3, 0.5);
        let d = t.offer(&job(0, 0.0, 1.0, 1.5));
        match d {
            Decision::Accept { start, .. } => assert_eq!(start, Time::ZERO),
            Decision::Reject => panic!("idle system must accept"),
        }
    }

    #[test]
    fn single_machine_threshold_is_gk_rule() {
        // eps = 0.5 => f_1 = 3. After accepting a length-1 job at t=0,
        // a job released at 0 is accepted iff its deadline >= 3.
        let mut t = Threshold::new(1, 0.5);
        assert_eq!(t.phase_k(), 1);
        assert!((t.factor(1) - 3.0).abs() < 1e-9);
        t.offer(&job(0, 0.0, 1.0, 100.0));
        assert!(t.current_dlim(Time::ZERO).approx_eq(Time::new(3.0)));
        // d = 2.9 < 3 => reject, even though it would fit (1 + 1.5 <= 2.9).
        assert_eq!(t.offer(&job(1, 0.0, 1.5, 2.9)), Decision::Reject);
        // d = 3.0 >= 3 => accept, appended after the load.
        match t.offer(&job(2, 0.0, 2.0, 3.0)) {
            Decision::Accept { start, .. } => assert_eq!(start, Time::new(1.0)),
            Decision::Reject => panic!("threshold met, must accept"),
        }
    }

    #[test]
    fn gk_wrapper_matches_threshold_m1() {
        let jobs = [
            job(0, 0.0, 1.0, 100.0),
            job(1, 0.0, 1.5, 2.9),
            job(2, 0.0, 2.0, 3.0),
            job(3, 0.5, 0.4, 9.5),
        ];
        let mut a = Threshold::new(1, 0.5);
        let mut b = GoldwasserKerbikov::new(0.5);
        for j in &jobs {
            assert_eq!(a.offer(j), b.offer(j));
        }
    }

    #[test]
    fn threshold_ignores_k_most_loaded_machines() {
        // m = 2, eps = 0.5 (phase 2 since eps > 2/7): only the least
        // loaded machine gates admission; f_2 = 3.
        let mut t = Threshold::new(2, 0.5);
        assert_eq!(t.phase_k(), 2);
        t.offer(&job(0, 0.0, 10.0, 100.0)); // load M? <- 10
                                            // Second machine idle => dlim = 0: everything is accepted.
        assert_eq!(t.current_dlim(Time::ZERO), Time::ZERO);
        assert!(t.offer(&job(1, 0.0, 1.0, 1.5)).is_accept());
        // Now both loaded: dlim = 1 * 3 = 3 from the less loaded machine.
        assert!(t.current_dlim(Time::ZERO).approx_eq(Time::new(3.0)));
        assert_eq!(t.offer(&job(2, 0.0, 1.0, 2.0)), Decision::Reject);
    }

    #[test]
    fn best_fit_picks_most_loaded_feasible_machine() {
        let mut t = Threshold::new(2, 1.0);
        t.offer(&job(0, 0.0, 4.0, 100.0)); // M0 load 4
        t.offer(&job(1, 0.0, 1.0, 100.0)); // best fit would pick the
                                           // loaded machine if feasible
                                           // Job 1: deadline 100, start after load 4 => completes at 5: fits
                                           // on the most loaded machine.
        let c = t.engine.core.park().frontier(MachineId(0));
        assert_eq!(c, Time::new(5.0), "both jobs should stack on M0");
    }

    #[test]
    fn best_fit_falls_through_to_less_loaded_machine() {
        let mut t = Threshold::new(2, 1.0);
        t.offer(&job(0, 0.0, 4.0, 100.0)); // M0 load 4
                                           // Deadline 3 can't wait for load 4 — must go to idle M1. The
                                           // threshold is 0 (idle machine present), so it is accepted.
        match t.offer(&job(1, 0.0, 1.0, 3.0)) {
            Decision::Accept { machine, start } => {
                assert_eq!(machine, MachineId(1));
                assert_eq!(start, Time::ZERO);
            }
            Decision::Reject => panic!("must accept on the idle machine"),
        }
    }

    #[test]
    fn accepted_jobs_always_meet_their_deadline() {
        // Claim 1 smoke test on a deterministic stream.
        let eps = 0.25;
        let inst = {
            let mut b = InstanceBuilder::new(3, eps);
            let mut r = 0.0;
            for i in 0..50 {
                let p = 0.5 + ((i * 37) % 10) as f64 * 0.3;
                b.push_tight(Time::new(r), p);
                r += ((i * 13) % 7) as f64 * 0.1;
            }
            b.build().unwrap()
        };
        let mut t = Threshold::for_instance(&inst);
        for j in inst.jobs() {
            if let Decision::Accept { start, .. } = t.offer(j) {
                assert!(start.approx_ge(j.release));
                assert!((start + j.proc_time).approx_le(j.deadline));
            }
        }
    }

    #[test]
    fn tight_jobs_accepted_while_fewer_than_k_machines_busy() {
        // dlim = 0 exactly while fewer than k machines carry load (the
        // ranked machine m_k is idle) — so the first k tight unit jobs
        // are always admitted and the (k+1)-st is gated by f_k >= 2.
        // eps = 0.1 on m = 4 sits in phase k = 2.
        let mut t = Threshold::new(4, 0.1);
        assert_eq!(t.phase_k(), 2);
        for i in 0..2 {
            let j = Job::tight(JobId(i), Time::ZERO, 1.0, 0.1);
            assert!(t.offer(&j).is_accept(), "job {i}: m_k still idle");
        }
        // Third tight job: l(m_2) = 1 => dlim >= f_2 >= 2 > d = 1.1.
        let j = Job::tight(JobId(2), Time::ZERO, 1.0, 0.1);
        assert_eq!(t.offer(&j), Decision::Reject);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut t = Threshold::new(2, 0.5);
        t.offer(&job(0, 0.0, 5.0, 100.0));
        t.offer(&job(1, 0.0, 5.0, 100.0));
        t.reset();
        assert_eq!(t.current_dlim(Time::ZERO), Time::ZERO);
        assert!(t.offer(&job(2, 0.0, 1.0, 1.5)).is_accept());
    }

    #[test]
    fn slack_above_one_is_clamped_for_parameters() {
        // eps = 3 > 1: parameters derive from eps = 1, algorithm still
        // works and accepts a feasible job.
        let mut t = Threshold::new(2, 3.0);
        assert_eq!(t.phase_k(), 2);
        assert!((t.factor(2) - 2.0).abs() < 1e-9); // (1+1)/1
        assert!(t.offer(&job(0, 0.0, 1.0, 4.0)).is_accept());
    }

    #[test]
    fn ranking_modes_are_decision_identical() {
        // The incremental ladder and the full sort must produce the same
        // decision stream — spot check here, property-tested at scale in
        // tests/prop_algorithms.rs.
        let mk = |ranking| {
            ThresholdEngine::with_policy(
                "mode-test",
                4,
                0.3,
                ThresholdPolicy {
                    ranking,
                    ..ThresholdPolicy::default()
                },
            )
        };
        let mut inc = mk(RankingMode::Incremental);
        let mut srt = mk(RankingMode::FullSort);
        let jobs = [
            job(0, 0.0, 2.0, 9.0),
            job(1, 0.0, 2.0, 2.7),
            job(2, 0.4, 1.0, 3.0),
            job(3, 0.4, 3.0, 30.0),
            job(4, 2.5, 0.5, 3.4),
            job(5, 2.5, 2.0, 5.0),
        ];
        for j in &jobs {
            assert_eq!(
                inc.offer_explained(j),
                srt.offer_explained(j),
                "modes diverged on {:?}",
                j.id
            );
        }
    }

    #[test]
    fn deterministic_tie_break_prefers_lower_machine_id() {
        let mut t = Threshold::new(3, 1.0);
        match t.offer(&job(0, 0.0, 1.0, 2.0)) {
            Decision::Accept { machine, .. } => assert_eq!(machine, MachineId(0)),
            _ => panic!(),
        }
    }
}
