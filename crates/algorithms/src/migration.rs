//! The preemption-**with**-migration comparator: immediate-commitment
//! admission on machines that may interrupt jobs and resume them on any
//! machine.
//!
//! This is the machine model of Schwiegelshohn & Schwiegelshohn'16 that
//! the paper's related-work section positions against (their algorithm
//! approaches `(1 + eps) * log((1 + eps)/eps)` for large `m`). The
//! natural greedy admission rule in this model is:
//!
//! > accept an arriving job iff the admitted-and-unfinished work plus
//! > the new job remains feasible on `m` migrating machines —
//!
//! which by Horn's theorem is exactly a max-flow question, answered by
//! [`cslack_opt::flow::migration_plan`]. Execution materializes the
//! flow plan interval by interval with **McNaughton's wrap-around
//! rule**: fill machine 0 from the interval start, wrap overflow onto
//! machine 1, and so on. The per-interval flow capacities guarantee the
//! wrap never makes a job run on two machines at once.
//!
//! Experiment E9 measures this model against the non-preemptive
//! algorithms; under the Theorem-1 adversary its forced ratio lands
//! near the migration bound — far below the non-preemptive `c(eps, m)`,
//! quantifying what commitment to a fixed machine and start time costs.

use crate::preemptive::Slice;
use cslack_kernel::{Job, JobId, MachineId, Time};
use cslack_opt::flow::{migration_plan, IntervalAlloc, Pending};

#[derive(Clone, Debug)]
struct MigJob {
    id: JobId,
    deadline: f64,
    remaining: f64,
}

/// Greedy feasibility admission on preemptive machines with migration.
#[derive(Clone, Debug)]
pub struct MigratoryAdmission {
    m: usize,
    now: f64,
    active: Vec<MigJob>,
    /// Execution plan for `active` from `now` on (interval allocations
    /// reference indices into `active`).
    plan: Vec<IntervalAlloc>,
    slices: Vec<Slice>,
    accepted_load: f64,
    accepted: Vec<JobId>,
}

impl MigratoryAdmission {
    /// Builds the algorithm on `m` machines.
    pub fn new(m: usize) -> MigratoryAdmission {
        assert!(m >= 1);
        MigratoryAdmission {
            m,
            now: 0.0,
            active: Vec::new(),
            plan: Vec::new(),
            slices: Vec::new(),
            accepted_load: 0.0,
            accepted: Vec::new(),
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.m
    }

    /// Total admitted processing time.
    pub fn accepted_load(&self) -> f64 {
        self.accepted_load
    }

    fn pending(&self) -> Vec<Pending> {
        self.active
            .iter()
            .map(|j| Pending {
                remaining: j.remaining,
                deadline: j.deadline,
            })
            .collect()
    }

    /// Executes the current plan up to time `t`.
    fn advance_to(&mut self, t: f64) {
        while self.now < t - 1e-15 {
            let Some(iv) = self.plan.first().cloned() else {
                break; // idle until t
            };
            debug_assert!(iv.start >= self.now - 1e-9);
            if iv.end <= t + 1e-15 {
                self.execute_interval(&iv);
                self.plan.remove(0);
                self.now = iv.end;
            } else {
                // Split the interval proportionally at t.
                let len = iv.end - iv.start;
                let lambda = ((t - iv.start) / len).clamp(0.0, 1.0);
                let head = IntervalAlloc {
                    start: iv.start,
                    end: t,
                    work: iv
                        .work
                        .iter()
                        .map(|&(j, u)| (j, u * lambda))
                        .filter(|&(_, u)| u > 1e-15)
                        .collect(),
                };
                let tail = IntervalAlloc {
                    start: t,
                    end: iv.end,
                    work: iv
                        .work
                        .iter()
                        .map(|&(j, u)| (j, u * (1.0 - lambda)))
                        .filter(|&(_, u)| u > 1e-15)
                        .collect(),
                };
                self.execute_interval(&head);
                self.plan[0] = tail;
                self.now = t;
            }
        }
        self.now = self.now.max(t);
    }

    /// McNaughton wrap-around realization of one interval allocation.
    fn execute_interval(&mut self, iv: &IntervalAlloc) {
        let len = iv.end - iv.start;
        if len <= 0.0 {
            return;
        }
        let mut machine = 0usize;
        let mut cursor = iv.start;
        for &(jidx, units) in &iv.work {
            debug_assert!(units <= len + 1e-9, "allocation exceeds interval");
            let jid = self.active[jidx].id;
            // Clamp against rounding drift: the flow solver guarantees
            // units <= len up to fp noise.
            let units = units.min(len);
            self.active[jidx].remaining = (self.active[jidx].remaining - units).max(0.0);
            let mut left = units;
            while left > 1e-15 {
                if machine >= self.m {
                    // Accumulated fp drift can leave a vanishing residual
                    // after the capacity-exact last machine; drop it.
                    debug_assert!(
                        left < 1e-6 * len.max(1.0),
                        "plan exceeds machine capacity by {left}"
                    );
                    break;
                }
                let room = iv.end - cursor;
                let run = left.min(room);
                if run > 1e-15 {
                    self.slices.push(Slice {
                        job: jid,
                        machine: MachineId(machine as u32),
                        start: Time::new(cursor),
                        end: Time::new(cursor + run),
                    });
                }
                cursor += run;
                left -= run;
                if cursor >= iv.end - 1e-15 && left > 1e-15 {
                    machine += 1;
                    cursor = iv.start;
                }
            }
        }
    }

    /// Offers a job at its release date. Returns `true` iff admitted
    /// (the job is then guaranteed full service by its deadline).
    pub fn offer(&mut self, job: &Job) -> bool {
        self.advance_to(job.release.raw());
        self.active.retain(|j| j.remaining > 1e-15);
        let mut pending = self.pending();
        pending.push(Pending {
            remaining: job.proc_time,
            deadline: job.deadline.raw(),
        });
        match migration_plan(&pending, self.m, self.now) {
            Some(plan) => {
                self.active.push(MigJob {
                    id: job.id,
                    deadline: job.deadline.raw(),
                    remaining: job.proc_time,
                });
                self.plan = plan;
                self.accepted_load += job.proc_time;
                self.accepted.push(job.id);
                true
            }
            None => {
                // Re-plan the unchanged active set from `now` (the old
                // plan may be partially consumed with a stale prefix).
                self.plan = migration_plan(&self.pending(), self.m, self.now)
                    .expect("previously admitted work stays feasible");
                false
            }
        }
    }

    /// Runs everything to completion and returns the execution trace.
    pub fn finish(mut self) -> MigratoryRun {
        let horizon = self
            .active
            .iter()
            .filter(|j| j.remaining > 1e-15)
            .map(|j| j.deadline)
            .fold(self.now, f64::max);
        self.advance_to(horizon);
        debug_assert!(self.active.iter().all(|j| j.remaining <= 1e-9));
        MigratoryRun {
            slices: self.slices,
            accepted_load: self.accepted_load,
            accepted: self.accepted,
        }
    }
}

/// Completed migratory run.
#[derive(Clone, Debug)]
pub struct MigratoryRun {
    /// Executed slices (a job may appear on several machines).
    pub slices: Vec<Slice>,
    /// Total admitted load (objective value).
    pub accepted_load: f64,
    /// Admitted jobs in admission order.
    pub accepted: Vec<JobId>,
}

impl MigratoryRun {
    /// Work executed for one job.
    pub fn job_work(&self, job: JobId) -> f64 {
        self.slices
            .iter()
            .filter(|s| s.job == job)
            .map(Slice::work)
            .sum()
    }

    /// Whether the job ran on more than one machine (migrated).
    pub fn migrated(&self, job: JobId) -> bool {
        let mut machines = self
            .slices
            .iter()
            .filter(|s| s.job == job)
            .map(|s| s.machine);
        match machines.next() {
            None => false,
            Some(first) => machines.any(|m| m != first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::tol;

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn single_job_is_served() {
        let mut a = MigratoryAdmission::new(1);
        assert!(a.offer(&job(0, 0.0, 2.0, 3.0)));
        let run = a.finish();
        assert!(tol::approx_eq(run.job_work(JobId(0)), 2.0));
    }

    #[test]
    fn admits_exactly_the_feasible_volume() {
        let mut a = MigratoryAdmission::new(1);
        assert!(a.offer(&job(0, 0.0, 1.0, 2.0)));
        assert!(a.offer(&job(1, 0.0, 1.0, 2.0))); // 2 units by 2: exact fit
        assert!(!a.offer(&job(2, 0.0, 0.5, 2.0))); // no room left
        assert!(a.offer(&job(3, 0.0, 0.5, 2.5))); // later deadline fits
        assert_eq!(a.accepted_load(), 2.5);
    }

    #[test]
    fn migration_admits_what_no_partition_can() {
        // 3 jobs of 2 units, deadline 3, 2 machines: total 6 = capacity;
        // any non-migrating schedule fits at most 2 whole jobs plus one
        // more only by splitting across machines.
        let mut a = MigratoryAdmission::new(2);
        for i in 0..3 {
            assert!(a.offer(&job(i, 0.0, 2.0, 3.0)), "job {i} must fit");
        }
        let run = a.finish();
        for i in 0..3 {
            assert!(tol::approx_eq(run.job_work(JobId(i)), 2.0), "job {i}");
        }
        assert!(
            (0..3).any(|i| run.migrated(JobId(i))),
            "capacity-exact fit needs at least one migration"
        );
    }

    #[test]
    fn no_machine_overlap_and_no_self_parallelism() {
        let mut a = MigratoryAdmission::new(2);
        let spec = [
            (0u32, 0.0, 2.0, 3.0),
            (1, 0.0, 2.0, 3.0),
            (2, 0.0, 2.0, 3.0),
            (3, 1.0, 0.5, 2.0),
            (4, 2.5, 1.0, 4.0),
        ];
        for (id, r, p, d) in spec {
            a.offer(&job(id, r, p, d));
        }
        let run = a.finish();
        // Per machine: no two slices overlap.
        for m in 0..2u32 {
            let mut lane: Vec<&Slice> = run
                .slices
                .iter()
                .filter(|s| s.machine == MachineId(m))
                .collect();
            lane.sort_by_key(|a| a.start);
            for w in lane.windows(2) {
                assert!(
                    w[0].end.approx_le(w[1].start),
                    "machine {m}: {:?} overlaps {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        // Per job: no two slices overlap in time (no self-parallelism).
        for jid in run.accepted.iter() {
            let mut mine: Vec<&Slice> = run.slices.iter().filter(|s| s.job == *jid).collect();
            mine.sort_by_key(|a| a.start);
            for w in mine.windows(2) {
                assert!(
                    w[0].end.approx_le(w[1].start),
                    "{jid} runs on two machines at once: {:?} / {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn every_admitted_job_is_fully_served_on_time() {
        let mut a = MigratoryAdmission::new(3);
        let mut jobs = Vec::new();
        for i in 0..25u32 {
            let r = (i % 6) as f64 * 0.7;
            let p = 0.3 + (i % 4) as f64 * 0.5;
            jobs.push(Job::tight(JobId(i), Time::new(r), p, 0.3));
        }
        jobs.sort_by_key(|a| a.release);
        let mut admitted = Vec::new();
        for j in &jobs {
            if a.offer(j) {
                admitted.push(*j);
            }
        }
        assert!(!admitted.is_empty());
        let run = a.finish();
        for j in &admitted {
            assert!(
                tol::approx_eq(run.job_work(j.id), j.proc_time),
                "{} got {} of {}",
                j.id,
                run.job_work(j.id),
                j.proc_time
            );
            for s in run.slices.iter().filter(|s| s.job == j.id) {
                assert!(s.start.approx_ge(j.release), "{} ran early", j.id);
                assert!(s.end.approx_le(j.deadline), "{} ran late", j.id);
            }
        }
    }

    #[test]
    fn migration_beats_nonpreemptive_on_the_adversary_pattern() {
        // The m=1 adversary pattern: J_1, then two p~1 d=2p jobs. The
        // migratory model accepts both bait jobs; non-preemptive
        // algorithms accept at most one.
        let eps = 0.25;
        let mut a = MigratoryAdmission::new(1);
        assert!(a.offer(&job(0, 0.0, 1.0, 100.0)));
        assert!(a.offer(&job(1, 0.0, 0.9999, 2.0 * 0.9999)));
        assert!(a.offer(&job(2, 0.0, 0.9999, 2.0 * 0.9999)));
        assert!(a.accepted_load() > 2.9);
        let _ = eps;
    }
}
