//! A size-classified reservation baseline in the spirit of Lee'03.
//!
//! Lee's multi-machine algorithm (`SPAA 2003`, ratio
//! `1 + m + m * eps^{-1/m}`) classifies jobs geometrically by processing
//! time and reserves machines per class, committing on admission. Our
//! machine model requires *immediate* commitment, so this baseline adapts
//! the classification idea to it (substitution documented in DESIGN.md):
//!
//! * Machine `i` (`0..m`) is reserved for size class `i`: jobs whose
//!   processing time lies in `[base * g^i, base * g^{i+1})` with growth
//!   `g = eps^{-1/m}`, where `base` is the size of the first job ever
//!   offered (classes wrap modulo `m`, mirroring Lee's cyclic class
//!   assignment).
//! * A job is admitted iff its reserved machine can complete it by its
//!   deadline, appended after the machine's outstanding load.
//!
//! The reservation protects large-job capacity the way Lee's
//! classification does: a flood of small jobs can clog at most their own
//! class machine. The price is the `1 + m` additive term — visible in
//! experiment E9 as a constant-factor loss on benign workloads.

use crate::alloc::AllocCore;
use crate::{Decision, OnlineScheduler};
use cslack_kernel::{Job, MachineId};

/// Class-reservation baseline (commitment-on-arrival adaptation of
/// Lee'03's classify-by-size approach).
#[derive(Clone, Debug)]
pub struct LeeClassify {
    eps: f64,
    core: AllocCore,
    /// Size of the first offered job; classes are geometric around it.
    base: Option<f64>,
}

impl LeeClassify {
    /// Builds the baseline for `m` machines and slack `eps`.
    pub fn new(m: usize, eps: f64) -> LeeClassify {
        assert!(m >= 1 && eps > 0.0);
        LeeClassify {
            eps,
            core: AllocCore::new(m),
            base: None,
        }
    }

    /// The geometric class growth factor `g = eps^{-1/m}`.
    pub fn growth(&self) -> f64 {
        self.eps
            .min(1.0)
            .powf(-1.0 / self.core.machines() as f64)
            .max(1.0 + 1e-9)
    }

    /// The class (hence machine) a processing time maps to.
    fn class_of(&self, proc_time: f64, base: f64) -> MachineId {
        let g = self.growth();
        let idx = (proc_time / base).ln() / g.ln();
        let m = self.core.machines() as i64;
        let wrapped = (idx.floor() as i64).rem_euclid(m);
        MachineId(wrapped as u32)
    }
}

impl OnlineScheduler for LeeClassify {
    fn name(&self) -> &'static str {
        "lee-classify"
    }

    fn machines(&self) -> usize {
        self.core.machines()
    }

    fn offer(&mut self, job: &Job) -> Decision {
        let base = *self.base.get_or_insert(job.proc_time);
        let machine = self.class_of(job.proc_time, base);
        // Reservation pins the machine, so placement is fixed-lane: no
        // ranking, just a feasibility check on the class machine.
        match self.core.place_on(machine, job, job.release) {
            Some(start) => Decision::Accept { machine, start },
            None => Decision::Reject,
        }
    }

    fn reset(&mut self) {
        self.core.reset();
        self.base = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::{JobId, Time};

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn same_class_jobs_share_a_machine() {
        let mut a = LeeClassify::new(4, 0.0625); // g = 2
        assert!((a.growth() - 2.0).abs() < 1e-9);
        let d0 = a.offer(&job(0, 0.0, 1.0, 100.0));
        let d1 = a.offer(&job(1, 0.0, 1.5, 100.0)); // same class [1, 2)
        match (d0, d1) {
            (Decision::Accept { machine: m0, .. }, Decision::Accept { machine: m1, .. }) => {
                assert_eq!(m0, m1)
            }
            _ => panic!("both should be accepted"),
        }
    }

    #[test]
    fn different_classes_use_different_machines() {
        let mut a = LeeClassify::new(4, 0.0625); // g = 2
        let d0 = a.offer(&job(0, 0.0, 1.0, 100.0)); // class 0
        let d1 = a.offer(&job(1, 0.0, 2.5, 100.0)); // class 1 ([2, 4))
        let d2 = a.offer(&job(2, 0.0, 5.0, 100.0)); // class 2 ([4, 8))
        let ms: Vec<_> = [d0, d1, d2]
            .iter()
            .map(|d| match d {
                Decision::Accept { machine, .. } => *machine,
                _ => panic!(),
            })
            .collect();
        assert_ne!(ms[0], ms[1]);
        assert_ne!(ms[1], ms[2]);
        assert_ne!(ms[0], ms[2]);
    }

    #[test]
    fn reservation_protects_large_jobs_from_small_flood() {
        let eps = 0.0625;
        let mut a = LeeClassify::new(4, eps);
        // Flood of unit jobs clogs only class 0's machine.
        a.offer(&job(0, 0.0, 1.0, 100.0));
        for i in 1..10 {
            a.offer(&job(i, 0.0, 1.0, 100.0));
        }
        // A big tight job still finds its reserved machine idle.
        let big = Job::tight(JobId(100), Time::ZERO, 5.0, eps);
        assert!(a.offer(&big).is_accept());
        // Greedy in the same situation would also have idle machines, but
        // only because m > 1; with all classes on one machine the flood
        // wins — which is exactly the failure mode reservation avoids.
    }

    #[test]
    fn rejects_when_reserved_machine_is_clogged() {
        let mut a = LeeClassify::new(2, 0.25); // g = 2
        a.offer(&job(0, 0.0, 1.0, 100.0));
        a.offer(&job(1, 0.0, 1.0, 100.0)); // same machine, load 2
                                           // Tight same-class job can no longer make it on its machine,
                                           // even though the other machine is idle: reservation forbids it.
        let tight = job(2, 0.0, 1.0, 1.5);
        assert_eq!(a.offer(&tight), Decision::Reject);
    }

    #[test]
    fn class_wrapping_is_modular() {
        let a = LeeClassify::new(2, 0.25); // g = 2, m = 2
                                           // Class index of p = 8 relative to base 1: log2(8) = 3 -> 3 mod 2.
        assert_eq!(a.class_of(8.0, 1.0), MachineId(1));
        // Smaller than base wraps negatively: log2(0.25) = -2 -> 0.
        assert_eq!(a.class_of(0.25, 1.0), MachineId(0));
        assert_eq!(a.class_of(0.5, 1.0), MachineId(1)); // -1 mod 2
    }
}
