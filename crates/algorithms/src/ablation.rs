//! Ablated variants of the Threshold algorithm (experiment E10).
//!
//! Each variant disables exactly one of the design choices that
//! Section 1.1 of the paper motivates, so their degradation isolates that
//! choice's contribution:
//!
//! * [`forced_k`] — pins the phase index instead of deriving it from the
//!   corner values; `k = 1` makes every machine gate admission, `k = m`
//!   leaves only the least loaded machine gating.
//! * [`constant_factors`] — replaces the graded `f_k < ... < f_m` by the
//!   flat anchor `(1 + eps)/eps` on all threshold machines.
//! * [`worst_fit`] — allocates accepted jobs to the *least* loaded
//!   candidate instead of the paper's best fit, spreading load and
//!   inflating the admission threshold.
//! * [`latest_start`] — starts accepted jobs as late as their deadline
//!   allows instead of right after the outstanding load, manufacturing
//!   idle gaps that count as load.

use crate::threshold::{AllocPolicy, StartPolicy, ThresholdEngine, ThresholdPolicy};

/// Threshold with a pinned phase index `k` (ignoring the corner values).
pub fn forced_k(m: usize, eps: f64, k: usize) -> ThresholdEngine {
    ThresholdEngine::with_policy(
        "threshold-forced-k",
        m,
        eps,
        ThresholdPolicy {
            forced_k: Some(k),
            ..ThresholdPolicy::default()
        },
    )
}

/// Threshold with the flat factor `(1 + eps)/eps` on every threshold
/// machine (no graded `f_q`).
pub fn constant_factors(m: usize, eps: f64) -> ThresholdEngine {
    ThresholdEngine::with_policy(
        "threshold-constant-f",
        m,
        eps,
        ThresholdPolicy {
            constant_f: true,
            ..ThresholdPolicy::default()
        },
    )
}

/// Threshold allocating to the least loaded candidate (worst fit).
pub fn worst_fit(m: usize, eps: f64) -> ThresholdEngine {
    ThresholdEngine::with_policy(
        "threshold-worst-fit",
        m,
        eps,
        ThresholdPolicy {
            alloc: AllocPolicy::WorstFit,
            ..ThresholdPolicy::default()
        },
    )
}

/// Threshold starting accepted jobs as late as possible.
pub fn latest_start(m: usize, eps: f64) -> ThresholdEngine {
    ThresholdEngine::with_policy(
        "threshold-latest-start",
        m,
        eps,
        ThresholdPolicy {
            start: StartPolicy::Latest,
            ..ThresholdPolicy::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, OnlineScheduler};
    use cslack_kernel::{Job, JobId, Time};

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn forced_k1_gates_on_every_machine() {
        // m = 2, eps = 0.5: the paper's k is 2 (idle machine => accept
        // everything); forcing k = 1 makes the *most* loaded machine
        // gate admission too.
        let mut a = forced_k(2, 0.5, 1);
        assert_eq!(a.phase_k(), 1);
        a.offer(&job(0, 0.0, 10.0, 100.0));
        // dlim now includes l(m_1) * f_1 > 0 even though m_2 is idle.
        assert!(a.current_dlim(Time::ZERO) > Time::ZERO);
        // The paper's Threshold would accept this (idle machine):
        let mut paper = crate::Threshold::new(2, 0.5);
        paper.offer(&job(0, 0.0, 10.0, 100.0));
        let tight = job(1, 0.0, 1.0, 1.5);
        assert!(paper.offer(&tight).is_accept());
        assert_eq!(a.offer(&tight), Decision::Reject);
    }

    #[test]
    fn constant_factors_inflate_threshold() {
        // eps = 0.05, m = 2, phase 1: the paper's graded f_1 ~ 4.39 is
        // far below the flat anchor f = 21; with one loaded machine the
        // flat variant's threshold is f/f_1 times larger, so a deadline
        // between the two separates the algorithms.
        let eps = 0.05;
        let mut flat = constant_factors(2, eps);
        let mut paper = crate::Threshold::new(2, eps);
        for a in [&mut flat as &mut dyn OnlineScheduler, &mut paper] {
            assert!(a.offer(&job(0, 0.0, 1.0, 1000.0)).is_accept());
        }
        // Loads {1, 0}: graded dlim = f_1 * 1, flat dlim = 21 * 1.
        let f1 = paper.factor(1);
        assert!(f1 < 21.0, "graded f_1 must be below the anchor");
        let probe = job(1, 0.0, 0.2, 0.5 * (f1 + 21.0));
        assert!(paper.offer(&probe).is_accept());
        assert_eq!(flat.offer(&probe), Decision::Reject);
    }

    #[test]
    fn worst_fit_spreads_load() {
        let mut w = worst_fit(2, 1.0);
        let m0 = match w.offer(&job(0, 0.0, 4.0, 100.0)) {
            Decision::Accept { machine, .. } => machine,
            _ => panic!(),
        };
        // Worst fit sends the second job to the *other* (idle) machine;
        // the paper's best fit would stack it behind the first.
        match w.offer(&job(1, 0.0, 1.0, 100.0)) {
            Decision::Accept { machine, start } => {
                assert_ne!(machine, m0);
                assert_eq!(start, Time::ZERO);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn latest_start_defers_execution() {
        let mut l = latest_start(1, 1.0);
        match l.offer(&job(0, 0.0, 1.0, 10.0)) {
            Decision::Accept { start, .. } => assert_eq!(start, Time::new(9.0)),
            _ => panic!(),
        }
        // The gap [0, 9) counts as outstanding load for the engine, so a
        // tight follow-up job is rejected even though the machine idles.
        assert_eq!(l.offer(&job(1, 0.0, 1.0, 2.0)), Decision::Reject);
    }

    #[test]
    fn ablations_have_distinct_names() {
        let names = [
            forced_k(2, 0.5, 1).name(),
            constant_factors(2, 0.5).name(),
            worst_fit(2, 0.5).name(),
            latest_start(2, 0.5).name(),
            crate::Threshold::new(2, 0.5).name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
