//! Corollary 1: the randomized single-machine algorithm via
//! *static classification and select*.
//!
//! "Our general idea is the simulation of `m` parallel machines followed
//! by scheduling the jobs of a randomly selected machine." — the
//! algorithm runs the deterministic [`crate::Threshold`]
//! policy on `m` *virtual* machines and physically executes, on the one
//! real machine, exactly the jobs that the virtual run places on a
//! machine index chosen uniformly at random up front. Each virtual lane
//! is itself a feasible single-machine schedule (jobs on one lane never
//! overlap and all meet their deadlines), so the commitments transfer
//! verbatim.
//!
//! With `m = Theta(log(1/eps))` the expected competitive ratio is
//! `O(log(1/eps))`, beating the deterministic single-machine optimum
//! `2 + 1/eps` for small slack (experiment E8 measures the crossover).

use crate::threshold::Threshold;
use crate::{Decision, OnlineScheduler};
use cslack_kernel::{Job, MachineId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Randomized classify-and-select wrapper around Threshold (Corollary 1).
#[derive(Clone, Debug)]
pub struct RandomizedClassifySelect {
    virtual_threshold: Threshold,
    /// The virtual machine whose jobs are really executed.
    selected: MachineId,
    eps: f64,
    virtual_m: usize,
    seed: u64,
}

impl RandomizedClassifySelect {
    /// Default number of virtual machines, `max(2, ceil(log2(1/eps)))`.
    pub fn default_virtual_machines(eps: f64) -> usize {
        ((1.0 / eps.min(1.0)).log2().ceil() as usize).max(2)
    }

    /// Builds the algorithm with the default virtual machine count for
    /// `eps`, drawing the selected machine from `seed`.
    pub fn new(eps: f64, seed: u64) -> RandomizedClassifySelect {
        Self::with_virtual_machines(eps, Self::default_virtual_machines(eps), seed)
    }

    /// Builds the algorithm with an explicit virtual machine count.
    pub fn with_virtual_machines(
        eps: f64,
        virtual_m: usize,
        seed: u64,
    ) -> RandomizedClassifySelect {
        assert!(virtual_m >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let selected = MachineId(rng.gen_range(0..virtual_m as u32));
        RandomizedClassifySelect {
            virtual_threshold: Threshold::new(virtual_m, eps),
            selected,
            eps,
            virtual_m,
            seed,
        }
    }

    /// The virtual machine index the random draw selected.
    pub fn selected_machine(&self) -> MachineId {
        self.selected
    }

    /// Number of simulated virtual machines.
    pub fn virtual_machines(&self) -> usize {
        self.virtual_m
    }
}

impl OnlineScheduler for RandomizedClassifySelect {
    fn name(&self) -> &'static str {
        "randomized-classify-select"
    }

    /// The *real* machine count: one.
    fn machines(&self) -> usize {
        1
    }

    fn offer(&mut self, job: &Job) -> Decision {
        self.offer_explained(job).0
    }

    fn offer_explained(&mut self, job: &Job) -> (Decision, crate::DecisionInfo) {
        let (virtual_decision, mut info) = self.virtual_threshold.offer_explained(job);
        let decision = match virtual_decision {
            Decision::Accept { machine, start } if machine == self.selected => {
                // The virtual lane is a feasible single-machine schedule;
                // replay the commitment on the single real machine.
                Decision::Accept {
                    machine: MachineId(0),
                    start,
                }
            }
            // Virtually accepted on an unselected lane: the real machine
            // does not run it — a policy rejection, not a load one. (The
            // virtual state must keep the unselected acceptance — that is
            // what "simulation" means — so the inner offer above is
            // unconditional.) A virtual rejection keeps its inner reason.
            Decision::Accept { .. } => {
                info.reject_reason = Some(cslack_obs::RejectReason::PolicyFiltered);
                Decision::Reject
            }
            Decision::Reject => Decision::Reject,
        };
        (decision, info)
    }

    fn reset(&mut self) {
        // Fresh run, fresh draw from the same seed for reproducibility.
        *self =
            RandomizedClassifySelect::with_virtual_machines(self.eps, self.virtual_m, self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::{JobId, Time};

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn virtual_machine_count_scales_with_log_inverse_eps() {
        assert_eq!(RandomizedClassifySelect::default_virtual_machines(0.25), 2);
        assert_eq!(
            RandomizedClassifySelect::default_virtual_machines(1.0 / 1024.0),
            10
        );
        assert_eq!(RandomizedClassifySelect::default_virtual_machines(1.0), 2);
    }

    #[test]
    fn accepts_only_jobs_on_the_selected_lane() {
        // Tight unit jobs (d = 1.5) spread across virtual lanes: each
        // lane can hold at most one, so whatever lane is selected, at
        // most one of the eight jobs is really executed.
        let mut a = RandomizedClassifySelect::with_virtual_machines(0.5, 4, 7);
        let mut accepted = 0;
        for i in 0..8 {
            if a.offer(&job(i, 0.0, 1.0, 1.5)).is_accept() {
                accepted += 1;
            }
        }
        assert!(accepted <= 1, "lane filter must keep at most one job");
    }

    #[test]
    fn accepted_commitments_are_single_machine_feasible() {
        let mut a = RandomizedClassifySelect::new(0.125, 42);
        let mut last_end = Time::ZERO;
        let mut r = 0.0;
        for i in 0..100 {
            let p = 0.2 + (i % 5) as f64 * 0.4;
            let j = Job::tight(JobId(i), Time::new(r), p, 0.125);
            if let Decision::Accept { machine, start } = a.offer(&j) {
                assert_eq!(machine, MachineId(0), "real machine is single");
                assert!(
                    start.approx_ge(last_end),
                    "lane replay must not overlap: start {start:?} < end {last_end:?}"
                );
                assert!((start + j.proc_time).approx_le(j.deadline));
                last_end = start + j.proc_time;
            }
            r += 0.3;
        }
    }

    #[test]
    fn same_seed_reproduces_same_run() {
        let mk = || RandomizedClassifySelect::with_virtual_machines(0.25, 4, 99);
        let (mut a, mut b) = (mk(), mk());
        assert_eq!(a.selected_machine(), b.selected_machine());
        for i in 0..20 {
            let j = job(i, i as f64 * 0.1, 1.0, 1000.0);
            assert_eq!(a.offer(&j), b.offer(&j));
        }
    }

    #[test]
    fn different_seeds_eventually_select_different_lanes() {
        let lanes: std::collections::HashSet<u32> = (0..32)
            .map(|s| {
                RandomizedClassifySelect::with_virtual_machines(0.25, 4, s)
                    .selected_machine()
                    .0
            })
            .collect();
        assert!(lanes.len() > 1, "draws should vary across seeds");
    }

    #[test]
    fn reset_redraws_deterministically() {
        let mut a = RandomizedClassifySelect::with_virtual_machines(0.25, 4, 5);
        let lane = a.selected_machine();
        a.offer(&job(0, 0.0, 1.0, 100.0));
        a.reset();
        assert_eq!(a.selected_machine(), lane);
    }
}
