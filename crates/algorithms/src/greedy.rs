//! Greedy best-fit list scheduling (accept everything that fits).
//!
//! The classical baseline: admit a job whenever *some* machine can still
//! complete it by its deadline, allocating to the most loaded such
//! machine and starting right after its outstanding load. The caption of
//! the paper's Fig. 1 notes (via Kim and Chwa) that this greedy approach
//! achieves exactly the single-machine ratio `2 + 1/eps` on parallel
//! machines — it cannot exploit `m`, which is precisely what the paper's
//! Threshold algorithm fixes.

use crate::alloc::{AllocCore, AllocPolicy, Placement, StartPolicy};
use crate::{Decision, DecisionInfo, OnlineScheduler};
use cslack_kernel::Job;
use cslack_obs::RejectReason;

/// Accept-everything best-fit list scheduling.
#[derive(Clone, Debug)]
pub struct Greedy {
    core: AllocCore,
}

impl Greedy {
    /// Builds the greedy baseline on `m` machines.
    pub fn new(m: usize) -> Greedy {
        Greedy {
            core: AllocCore::new(m),
        }
    }
}

impl OnlineScheduler for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn machines(&self) -> usize {
        self.core.machines()
    }

    fn offer(&mut self, job: &Job) -> Decision {
        self.offer_explained(job).0
    }

    fn offer_explained(&mut self, job: &Job) -> (Decision, DecisionInfo) {
        let now = job.release;
        let mut info = DecisionInfo {
            candidates: 0,
            // Greedy has no admission threshold — only feasibility.
            threshold: None,
            min_load: Some(self.core.min_load(now)),
            reject_reason: None,
        };
        // Most loaded machine that can still finish the job in time.
        match self
            .core
            .place(job, now, AllocPolicy::BestFit, StartPolicy::Earliest)
        {
            Placement::Committed {
                machine,
                start,
                evaluated,
            } => {
                info.candidates = evaluated;
                (Decision::Accept { machine, start }, info)
            }
            Placement::Infeasible { evaluated } => {
                info.candidates = evaluated;
                info.reject_reason = Some(RejectReason::NoFeasibleMachine);
                (Decision::Reject, info)
            }
        }
    }

    fn reset(&mut self) {
        self.core.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::{JobId, MachineId, Time};

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn greedy_accepts_whatever_fits() {
        let mut g = Greedy::new(1);
        assert!(g.offer(&job(0, 0.0, 1.0, 1.1)).is_accept());
        // Fits after the first job (1 + 1 <= 2.1).
        assert!(g.offer(&job(1, 0.0, 1.0, 2.1)).is_accept());
        // Does not fit anywhere (2 + 1 > 2.5).
        assert_eq!(g.offer(&job(2, 0.0, 1.0, 2.5)), Decision::Reject);
    }

    #[test]
    fn greedy_is_fooled_by_the_classic_small_job_trap() {
        // The pattern behind the 1/eps lower bound for greedy: a tiny job
        // first, then a huge tight job that no longer fits.
        let eps = 0.1;
        let mut g = Greedy::new(1);
        let small = Job::tight(JobId(0), Time::ZERO, 1.0, eps);
        assert!(g.offer(&small).is_accept());
        // Huge job, tight slack, released just after acceptance: needs
        // the machine idle (9 * 1.1 = 9.9 < 1 + 9).
        let huge = Job::tight(JobId(1), Time::ZERO, 9.0, eps);
        assert_eq!(g.offer(&huge), Decision::Reject);
    }

    #[test]
    fn best_fit_stacks_on_most_loaded_feasible() {
        let mut g = Greedy::new(2);
        g.offer(&job(0, 0.0, 2.0, 100.0)); // M0: load 2
        match g.offer(&job(1, 0.0, 1.0, 100.0)) {
            Decision::Accept { machine, start } => {
                assert_eq!(machine, MachineId(0));
                assert_eq!(start, Time::new(2.0));
            }
            _ => panic!(),
        }
        // A tight job overflows to the idle machine.
        match g.offer(&job(2, 0.0, 1.0, 1.5)) {
            Decision::Accept { machine, start } => {
                assert_eq!(machine, MachineId(1));
                assert_eq!(start, Time::ZERO);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn reset_clears_all_lanes() {
        let mut g = Greedy::new(2);
        g.offer(&job(0, 0.0, 5.0, 100.0));
        g.reset();
        match g.offer(&job(1, 0.0, 1.0, 1.2)) {
            Decision::Accept { start, .. } => assert_eq!(start, Time::ZERO),
            _ => panic!(),
        }
    }
}
