//! Shared machine-state bookkeeping for non-preemptive append-style
//! algorithms.
//!
//! Every algorithm in this crate (except the preemptive comparator)
//! maintains one *frontier* per physical machine: the completion time of
//! the last job it committed there. The paper's *outstanding load*
//! `l(m_i)` at the current time `t` is then `max(0, frontier - t)`, and
//! the earliest feasible start for a new job is `t + l(m_i)` — "start it
//! immediately after the completion of the preceding job on this machine"
//! (Algorithm 1, line 10).

use cslack_kernel::{MachineId, Time};

/// Frontier-based machine state.
#[derive(Clone, Debug)]
pub struct MachinePark {
    frontiers: Vec<Time>,
}

/// One machine's dynamic view when a job is offered: its physical id and
/// its outstanding load, sorted by the park into the paper's dynamic
/// index order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedMachine {
    /// Physical machine.
    pub machine: MachineId,
    /// Outstanding load `l(m_i)` at the ranking time.
    pub load: f64,
}

impl MachinePark {
    /// `m` idle machines.
    pub fn new(m: usize) -> MachinePark {
        assert!(m > 0);
        MachinePark {
            frontiers: vec![Time::ZERO; m],
        }
    }

    /// Number of machines.
    #[inline]
    pub fn machines(&self) -> usize {
        self.frontiers.len()
    }

    /// Completion time of the last commitment on `machine`.
    #[inline]
    pub fn frontier(&self, machine: MachineId) -> Time {
        self.frontiers[machine.index()]
    }

    /// Outstanding load `l(m_i)` of `machine` at time `now` — zero once
    /// the frontier lies in the past (the machine has gone idle).
    #[inline]
    pub fn outstanding(&self, machine: MachineId, now: Time) -> f64 {
        (self.frontier(machine) - now).max(0.0)
    }

    /// Earliest feasible start of a new job on `machine` at time `now`
    /// (i.e. `now + l(m_i)`).
    #[inline]
    pub fn earliest_start(&self, machine: MachineId, now: Time) -> Time {
        self.frontier(machine).max(now)
    }

    /// Ranks all machines by **decreasing** outstanding load at `now`
    /// (ties broken by ascending physical id, for determinism). The
    /// element at index `h - 1` is the paper's machine `m_h`.
    pub fn ranked(&self, now: Time) -> Vec<RankedMachine> {
        let mut v: Vec<RankedMachine> = (0..self.machines())
            .map(|i| {
                let machine = MachineId(i as u32);
                RankedMachine {
                    machine,
                    load: self.outstanding(machine, now),
                }
            })
            .collect();
        // Stable by construction order => ties keep ascending physical id.
        v.sort_by(|a, b| b.load.partial_cmp(&a.load).unwrap());
        v
    }

    /// Records a commitment: the machine's frontier advances to
    /// `start + proc_time`.
    ///
    /// # Panics
    /// Debug-asserts that the job does not overlap the existing frontier.
    pub fn commit(&mut self, machine: MachineId, start: Time, proc_time: f64) {
        debug_assert!(
            start.approx_ge(self.frontier(machine)),
            "append-style commit must start at/after the frontier"
        );
        self.frontiers[machine.index()] = start + proc_time;
    }

    /// Forgets everything (all machines idle again).
    pub fn reset(&mut self) {
        self.frontiers.fill(Time::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outstanding_is_zero_when_idle_or_past() {
        let mut p = MachinePark::new(2);
        assert_eq!(p.outstanding(MachineId(0), Time::ZERO), 0.0);
        p.commit(MachineId(0), Time::ZERO, 2.0);
        assert_eq!(p.outstanding(MachineId(0), Time::new(0.5)), 1.5);
        assert_eq!(p.outstanding(MachineId(0), Time::new(3.0)), 0.0);
    }

    #[test]
    fn earliest_start_respects_frontier_and_now() {
        let mut p = MachinePark::new(1);
        p.commit(MachineId(0), Time::ZERO, 2.0);
        assert_eq!(
            p.earliest_start(MachineId(0), Time::new(1.0)),
            Time::new(2.0)
        );
        assert_eq!(
            p.earliest_start(MachineId(0), Time::new(5.0)),
            Time::new(5.0)
        );
    }

    #[test]
    fn ranked_sorts_descending_with_stable_ties() {
        let mut p = MachinePark::new(3);
        p.commit(MachineId(1), Time::ZERO, 4.0);
        p.commit(MachineId(2), Time::ZERO, 4.0);
        let r = p.ranked(Time::ZERO);
        assert_eq!(r[0].machine, MachineId(1)); // tie: lower id first
        assert_eq!(r[1].machine, MachineId(2));
        assert_eq!(r[2].machine, MachineId(0));
        assert_eq!(r[0].load, 4.0);
        assert_eq!(r[2].load, 0.0);
    }

    #[test]
    fn commits_chain_back_to_back() {
        let mut p = MachinePark::new(1);
        p.commit(MachineId(0), Time::ZERO, 1.5);
        p.commit(MachineId(0), Time::new(1.5), 1.0);
        assert_eq!(p.frontier(MachineId(0)), Time::new(2.5));
        p.reset();
        assert_eq!(p.frontier(MachineId(0)), Time::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "append-style")]
    fn overlapping_commit_is_debug_caught() {
        let mut p = MachinePark::new(1);
        p.commit(MachineId(0), Time::ZERO, 2.0);
        p.commit(MachineId(0), Time::new(1.0), 1.0);
    }
}
