//! Shared machine-state bookkeeping for non-preemptive append-style
//! algorithms.
//!
//! Every algorithm in this crate (except the preemptive comparator)
//! maintains one *frontier* per physical machine: the completion time of
//! the last job it committed there. The paper's *outstanding load*
//! `l(m_i)` at the current time `t` is then `max(0, frontier - t)`, and
//! the earliest feasible start for a new job is `t + l(m_i)` — "start it
//! immediately after the completion of the preceding job on this machine"
//! (Algorithm 1, line 10).
//!
//! # Incremental ranking
//!
//! The paper's dynamic machine index (rank by decreasing outstanding
//! load) is the structural hot path: every offer needs it. Sorting per
//! offer costs `O(m log m)` with float comparisons; this park instead
//! maintains the order *incrementally*, exploiting two facts:
//!
//! * between commits, every outstanding load decays by the same `Δt`, so
//!   the relative order of busy machines is **time-invariant** — the only
//!   rank events are machines clamping to zero as `now` passes their
//!   frontier (they "go idle"); and
//! * a commit changes exactly **one** machine's frontier.
//!
//! Concretely it keeps a *ladder*: the possibly-busy machines sorted by
//! `(frontier desc, id asc)`, plus an id-sorted idle list. Ranking at a
//! non-decreasing `now` lazily migrates the ladder's tail (machines whose
//! frontier fell at or below `now`) into the idle list; a commit repairs
//! the ladder with two binary searches (`O(log m)` compares plus a `u32`
//! memmove). Querying an *earlier* `now` than before (trial clones,
//! adversarial replays) falls back to a full rebuild, so the structure is
//! correct for any call pattern.
//!
//! The produced order is bit-identical to the stable full sort it
//! replaces: busy machines have `load = frontier - now > 0`, so load
//! order is frontier order and equal loads are equal frontiers (ties
//! break by ascending physical id either way); idle machines all have
//! load `+0.0` and appear in ascending id order, exactly as the stable
//! sort leaves them. [`MachinePark::ranked`] keeps the sort-based
//! reference implementation (also the property-test oracle);
//! [`MachinePark::ranked_into`] is the incremental path.

use cslack_kernel::{MachineId, Time};
use std::cmp::Reverse;

/// Frontier-based machine state with an incrementally maintained ranking.
#[derive(Clone, Debug)]
pub struct MachinePark {
    frontiers: Vec<Time>,
    /// Possibly-busy machines, sorted by `(frontier desc, id asc)`.
    /// Machines whose frontier has fallen to/below the last ranking
    /// instant form a suffix and migrate to `idle` lazily.
    ladder: Vec<u32>,
    /// Machines known idle at `last_now`, ascending id.
    idle: Vec<u32>,
    /// The most recent ranking instant (ranking at an earlier time
    /// triggers a rebuild).
    last_now: Time,
}

/// One machine's dynamic view when a job is offered: its physical id and
/// its outstanding load, sorted by the park into the paper's dynamic
/// index order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedMachine {
    /// Physical machine.
    pub machine: MachineId,
    /// Outstanding load `l(m_i)` at the ranking time.
    pub load: f64,
}

impl MachinePark {
    /// `m` idle machines.
    pub fn new(m: usize) -> MachinePark {
        assert!(m > 0);
        MachinePark {
            frontiers: vec![Time::ZERO; m],
            ladder: Vec::new(),
            idle: (0..m as u32).collect(),
            last_now: Time::ZERO,
        }
    }

    /// Number of machines.
    #[inline]
    pub fn machines(&self) -> usize {
        self.frontiers.len()
    }

    /// Completion time of the last commitment on `machine`.
    #[inline]
    pub fn frontier(&self, machine: MachineId) -> Time {
        self.frontiers[machine.index()]
    }

    /// Outstanding load `l(m_i)` of `machine` at time `now` — zero once
    /// the frontier lies in the past (the machine has gone idle).
    #[inline]
    pub fn outstanding(&self, machine: MachineId, now: Time) -> f64 {
        (self.frontier(machine) - now).max(0.0)
    }

    /// Earliest feasible start of a new job on `machine` at time `now`
    /// (i.e. `now + l(m_i)`).
    #[inline]
    pub fn earliest_start(&self, machine: MachineId, now: Time) -> Time {
        self.frontier(machine).max(now)
    }

    /// Ranks all machines by **decreasing** outstanding load at `now`
    /// (ties broken by ascending physical id, for determinism). The
    /// element at index `h - 1` is the paper's machine `m_h`.
    ///
    /// This is the sort-based *reference* implementation: it allocates
    /// and sorts on every call. The decision path uses the incremental
    /// [`MachinePark::ranked_into`], which produces the identical
    /// sequence; this form remains for `&self` callers (threshold
    /// introspection) and as the property-test oracle.
    pub fn ranked(&self, now: Time) -> Vec<RankedMachine> {
        let mut v: Vec<RankedMachine> = (0..self.machines())
            .map(|i| {
                let machine = MachineId(i as u32);
                RankedMachine {
                    machine,
                    load: self.outstanding(machine, now),
                }
            })
            .collect();
        // Stable by construction order => ties keep ascending physical
        // id. Loads are never NaN (Time arithmetic rejects NaN), and
        // `total_cmp` keeps the comparator total even if they were.
        v.sort_by(|a, b| b.load.total_cmp(&a.load));
        v
    }

    /// Fills `out` with the same sequence [`MachinePark::ranked`] would
    /// return, from the incrementally maintained ladder: no sort, no
    /// allocation beyond `out`'s capacity.
    ///
    /// Amortized cost is `O(m)` to write the view (each machine goes
    /// idle at most once per commit, so lazy migration is amortized
    /// `O(log m)` per call); ranking at a `now` earlier than the
    /// previous call costs one `O(m log m)` rebuild.
    pub fn ranked_into(&mut self, now: Time, out: &mut Vec<RankedMachine>) {
        self.refresh(now);
        out.clear();
        out.reserve(self.machines());
        for &id in &self.ladder {
            let machine = MachineId(id);
            out.push(RankedMachine {
                machine,
                load: self.outstanding(machine, now),
            });
        }
        for &id in &self.idle {
            let machine = MachineId(id);
            out.push(RankedMachine {
                machine,
                load: self.outstanding(machine, now),
            });
        }
    }

    /// Advances the ladder/idle split to the ranking instant `now`.
    fn refresh(&mut self, now: Time) {
        if now < self.last_now {
            self.rebuild(now);
            return;
        }
        self.last_now = now;
        // The ladder is sorted by frontier descending, so every machine
        // that went idle by `now` sits in its suffix.
        while let Some(&id) = self.ladder.last() {
            if self.frontiers[id as usize] > now {
                break;
            }
            self.ladder.pop();
            let pos = self
                .idle
                .binary_search(&id)
                .expect_err("machine cannot be in both ladder and idle");
            self.idle.insert(pos, id);
        }
    }

    /// Rebuilds ladder and idle list from scratch for an arbitrary `now`.
    fn rebuild(&mut self, now: Time) {
        self.ladder.clear();
        self.idle.clear();
        for id in 0..self.frontiers.len() as u32 {
            if self.frontiers[id as usize] > now {
                self.ladder.push(id);
            } else {
                self.idle.push(id);
            }
        }
        let frontiers = &self.frontiers;
        self.ladder
            .sort_by_key(|&id| (Reverse(frontiers[id as usize]), id));
        self.last_now = now;
    }

    /// The `(frontier desc, id asc)` ladder sort key of a machine.
    #[inline]
    fn ladder_key(&self, id: u32) -> (Reverse<Time>, u32) {
        (Reverse(self.frontiers[id as usize]), id)
    }

    /// Records a commitment: the machine's frontier advances to
    /// `start + proc_time`. Repairs the ranking ladder in `O(log m)`
    /// compares (one removal, one keyed re-insertion).
    ///
    /// # Panics
    /// Debug-asserts that the job does not overlap the existing frontier.
    pub fn commit(&mut self, machine: MachineId, start: Time, proc_time: f64) {
        debug_assert!(
            start.approx_ge(self.frontier(machine)),
            "append-style commit must start at/after the frontier"
        );
        let id = machine.0;
        // Remove from whichever structure currently holds the machine
        // (lazy migration means an idle-by-time machine may still sit in
        // the ladder; its old key finds it either way).
        if let Ok(pos) = self.idle.binary_search(&id) {
            self.idle.remove(pos);
        } else {
            let key = self.ladder_key(id);
            let pos = self
                .ladder
                .binary_search_by(|&x| self.ladder_key(x).cmp(&key))
                .expect("committed machine must be tracked in ladder or idle");
            self.ladder.remove(pos);
        }
        self.frontiers[machine.index()] = start + proc_time;
        // Re-insert under the new key; if the new frontier is already in
        // the past, the next refresh migrates it back to idle.
        let key = self.ladder_key(id);
        let pos = self
            .ladder
            .binary_search_by(|&x| self.ladder_key(x).cmp(&key))
            .expect_err("ladder keys are unique per machine");
        self.ladder.insert(pos, id);
    }

    /// Forgets everything (all machines idle again).
    pub fn reset(&mut self) {
        self.frontiers.fill(Time::ZERO);
        self.ladder.clear();
        self.idle.clear();
        self.idle.extend(0..self.frontiers.len() as u32);
        self.last_now = Time::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The incremental view, for comparing against the reference sort.
    fn ranked_inc(p: &mut MachinePark, now: Time) -> Vec<RankedMachine> {
        let mut out = Vec::new();
        p.ranked_into(now, &mut out);
        out
    }

    #[test]
    fn outstanding_is_zero_when_idle_or_past() {
        let mut p = MachinePark::new(2);
        assert_eq!(p.outstanding(MachineId(0), Time::ZERO), 0.0);
        p.commit(MachineId(0), Time::ZERO, 2.0);
        assert_eq!(p.outstanding(MachineId(0), Time::new(0.5)), 1.5);
        assert_eq!(p.outstanding(MachineId(0), Time::new(3.0)), 0.0);
    }

    #[test]
    fn earliest_start_respects_frontier_and_now() {
        let mut p = MachinePark::new(1);
        p.commit(MachineId(0), Time::ZERO, 2.0);
        assert_eq!(
            p.earliest_start(MachineId(0), Time::new(1.0)),
            Time::new(2.0)
        );
        assert_eq!(
            p.earliest_start(MachineId(0), Time::new(5.0)),
            Time::new(5.0)
        );
    }

    #[test]
    fn ranked_sorts_descending_with_stable_ties() {
        let mut p = MachinePark::new(3);
        p.commit(MachineId(1), Time::ZERO, 4.0);
        p.commit(MachineId(2), Time::ZERO, 4.0);
        let r = p.ranked(Time::ZERO);
        assert_eq!(r[0].machine, MachineId(1)); // tie: lower id first
        assert_eq!(r[1].machine, MachineId(2));
        assert_eq!(r[2].machine, MachineId(0));
        assert_eq!(r[0].load, 4.0);
        assert_eq!(r[2].load, 0.0);
        // The incremental path produces the identical view.
        assert_eq!(ranked_inc(&mut p, Time::ZERO), r);
    }

    #[test]
    fn incremental_matches_reference_through_idle_transitions() {
        let mut p = MachinePark::new(4);
        p.commit(MachineId(2), Time::ZERO, 3.0);
        p.commit(MachineId(0), Time::ZERO, 5.0);
        p.commit(MachineId(3), Time::ZERO, 1.0);
        for &t in &[0.0, 0.5, 1.0, 2.9999, 3.0, 4.0, 5.0, 7.0] {
            let now = Time::new(t);
            assert_eq!(ranked_inc(&mut p, now), p.ranked(now), "now={t}");
        }
        // Going *backwards* in time (trial replays) rebuilds correctly.
        for &t in &[2.0, 0.0, 6.0, 1.0] {
            let now = Time::new(t);
            assert_eq!(ranked_inc(&mut p, now), p.ranked(now), "now={t}");
        }
    }

    #[test]
    fn commit_repairs_the_ladder_after_lazy_idling() {
        let mut p = MachinePark::new(3);
        p.commit(MachineId(1), Time::ZERO, 1.0);
        p.commit(MachineId(2), Time::ZERO, 4.0);
        // Rank at t=2: machine 1 went idle (lazy migration fires).
        let now = Time::new(2.0);
        assert_eq!(ranked_inc(&mut p, now), p.ranked(now));
        // Commit on a machine that idled *without* an intervening rank.
        let mut q = MachinePark::new(3);
        q.commit(MachineId(1), Time::ZERO, 1.0);
        q.commit(MachineId(1), Time::new(1.0), 1.0); // still in ladder
        let now = Time::new(5.0);
        assert_eq!(ranked_inc(&mut q, now), q.ranked(now));
        q.commit(MachineId(1), Time::new(5.0), 2.0); // was lazily idled
        assert_eq!(ranked_inc(&mut q, now), q.ranked(now));
    }

    #[test]
    fn commits_chain_back_to_back() {
        let mut p = MachinePark::new(1);
        p.commit(MachineId(0), Time::ZERO, 1.5);
        p.commit(MachineId(0), Time::new(1.5), 1.0);
        assert_eq!(p.frontier(MachineId(0)), Time::new(2.5));
        p.reset();
        assert_eq!(p.frontier(MachineId(0)), Time::ZERO);
        assert_eq!(ranked_inc(&mut p, Time::ZERO), p.ranked(Time::ZERO));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "append-style")]
    fn overlapping_commit_is_debug_caught() {
        let mut p = MachinePark::new(1);
        p.commit(MachineId(0), Time::ZERO, 2.0);
        p.commit(MachineId(0), Time::new(1.0), 1.0);
    }
}
