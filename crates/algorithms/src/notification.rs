//! The **immediate notification** comparator: accept/reject is decided
//! at submission, but the machine and start time stay flexible until
//! the job actually starts (no preemption once running).
//!
//! This is the commitment model of Goldwasser'99 / the "commitment on
//! admission" line in the paper's introduction — weaker than the
//! immediate commitment the paper (and our [`crate::Threshold`]) supports,
//! because the scheduler may reshuffle admitted-but-unstarted jobs as
//! new information arrives. Comparing the two quantifies the price of
//! fixing the allocation at submission.
//!
//! Admission rule: accept an arriving job iff the admitted-and-
//! unstarted jobs plus the new one can be dispatched EDF-first onto the
//! current machine frontiers with every deadline met. The successful
//! dispatch simulation doubles as the execution plan until the next
//! event; jobs whose planned start passes become irrevocably started.
//!
//! The final output is an ordinary non-preemptive
//! [`cslack_kernel::Schedule`], so the kernel validator
//! applies verbatim.

use crate::{Decision, OnlineScheduler};
use cslack_kernel::{Job, MachineId, Schedule, Time};

/// EDF-dispatch admission with deferred allocation.
#[derive(Clone, Debug)]
pub struct NotificationEdf {
    m: usize,
    now: Time,
    /// Started (irrevocable) work per machine: completion frontier.
    frontiers: Vec<Time>,
    /// Admitted jobs not yet started.
    pending: Vec<Job>,
    /// Irrevocably started jobs.
    schedule: Schedule,
}

/// One planned dispatch.
#[derive(Clone, Copy, Debug)]
struct Dispatch {
    job_idx: usize,
    machine: MachineId,
    start: Time,
}

impl NotificationEdf {
    /// Builds the comparator on `m` machines.
    pub fn new(m: usize) -> NotificationEdf {
        assert!(m >= 1);
        NotificationEdf {
            m,
            now: Time::ZERO,
            frontiers: vec![Time::ZERO; m],
            pending: Vec::new(),
            schedule: Schedule::new(m),
        }
    }

    /// Number of machines.
    pub fn machines_inner(&self) -> usize {
        self.m
    }

    /// Total admitted load (started + pending).
    pub fn accepted_load(&self) -> f64 {
        self.schedule.accepted_load() + self.pending.iter().map(|j| j.proc_time).sum::<f64>()
    }

    /// EDF dispatch simulation of `jobs` from `now` over `frontiers`.
    /// Returns the dispatches (in EDF order) iff every deadline is met.
    fn plan(frontiers: &[Time], now: Time, jobs: &[Job]) -> Option<Vec<Dispatch>> {
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| jobs[a].deadline.cmp(&jobs[b].deadline));
        let mut fr: Vec<Time> = frontiers.to_vec();
        let mut plan = Vec::with_capacity(jobs.len());
        for idx in order {
            let job = &jobs[idx];
            // Least-loaded machine (earliest frontier).
            let (mi, _) = fr
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1))
                .expect("m >= 1");
            let start = fr[mi].max(now).max(job.release);
            if !(start + job.proc_time).approx_le(job.deadline) {
                return None;
            }
            fr[mi] = start + job.proc_time;
            plan.push(Dispatch {
                job_idx: idx,
                machine: MachineId(mi as u32),
                start,
            });
        }
        Some(plan)
    }

    /// Advances to `t`, starting pending jobs *lazily*: a job is fixed
    /// (machine + start committed) only when keeping it pending past
    /// `t` would make the admitted set infeasible. This maximizes the
    /// flexibility the notification model is allowed to exploit.
    fn advance_to(&mut self, t: Time) {
        while Self::plan(&self.frontiers, t, &self.pending).is_none() {
            // Something had to start in (now, t): follow the feasible
            // plan from `now` and fix its earliest dispatch.
            let plan = Self::plan(&self.frontiers, self.now, &self.pending)
                .expect("admitted set stays dispatchable from its admission time");
            let d = plan
                .iter()
                .min_by(|a, b| a.start.cmp(&b.start))
                .copied()
                .expect("infeasible-from-t implies pending is non-empty");
            let job = self.pending.remove(d.job_idx);
            self.schedule
                .commit(job, d.machine, d.start)
                .expect("planned dispatch is feasible");
            self.frontiers[d.machine.index()] = d.start + job.proc_time;
            self.now = self.now.max(d.start);
        }
        self.now = self.now.max(t);
    }

    /// Runs every admitted job and returns the final schedule.
    pub fn finish(mut self) -> Schedule {
        let horizon = self
            .pending
            .iter()
            .map(|j| j.deadline)
            .max()
            .unwrap_or(self.now)
            + 1.0;
        self.advance_to(horizon);
        debug_assert!(self.pending.is_empty());
        self.schedule
    }
}

impl OnlineScheduler for NotificationEdf {
    fn name(&self) -> &'static str {
        "notification-edf"
    }

    fn machines(&self) -> usize {
        self.m
    }

    /// Immediate *notification*: the returned decision reports only
    /// accept/reject; allocation happens internally later. To satisfy
    /// the `OnlineScheduler` contract (which demands a machine and
    /// start), acceptance is reported with the job's *planned* dispatch
    /// — but callers comparing commitment models should use
    /// [`NotificationEdf::finish`] for the real schedule, because the
    /// plan may still shift. The sweep harness therefore treats this
    /// algorithm through its own runner (see `cslack-sim`).
    fn offer(&mut self, job: &Job) -> Decision {
        self.advance_to(job.release);
        let mut trial = self.pending.clone();
        trial.push(*job);
        match Self::plan(&self.frontiers, self.now, &trial) {
            Some(plan) => {
                self.pending.push(*job);
                let d = plan
                    .iter()
                    .find(|d| d.job_idx == trial.len() - 1)
                    .expect("new job is in the plan");
                Decision::Accept {
                    machine: d.machine,
                    start: d.start,
                }
            }
            None => Decision::Reject,
        }
    }

    fn reset(&mut self) {
        *self = NotificationEdf::new(self.m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::{InstanceBuilder, JobId};

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn admits_and_finishes_simple_stream() {
        let mut a = NotificationEdf::new(2);
        assert!(a.offer(&job(0, 0.0, 1.0, 2.0)).is_accept());
        assert!(a.offer(&job(1, 0.0, 1.0, 2.0)).is_accept());
        assert!(a.offer(&job(2, 0.0, 1.0, 2.0)).is_accept()); // 2nd slot on a machine
                                                              // EDF re-ordering still fits a tighter job: it runs first.
        assert!(a.offer(&job(3, 0.0, 1.0, 1.5)).is_accept());
        // ...but capacity is exhausted: 5 units by deadline 2 > 2 * 2.
        assert!(!a.offer(&job(4, 0.0, 1.0, 2.0)).is_accept());
        let s = a.finish();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn deferred_allocation_saves_a_job_immediate_commitment_loses() {
        // J0 (lax) arrives first; a tight J1 arrives a bit later. A
        // greedy immediate committer starts J0 at 0 on the single
        // machine... actually starts at release; the notification
        // scheduler can hold J0 back and run J1 first.
        let mut notif = NotificationEdf::new(1);
        assert!(notif.offer(&job(0, 0.0, 2.0, 8.0)).is_accept());
        // J1: tight-ish, needs to run inside [1, 2.1).
        assert!(notif.offer(&job(1, 1.0, 1.0, 2.1)).is_accept());
        let s = notif.finish();
        assert_eq!(s.len(), 2);
        cslack_kernel::validate::assert_valid(
            &InstanceBuilder::new(1, 0.1)
                .job(Time::ZERO, 2.0, Time::new(8.0))
                .job(Time::new(1.0), 1.0, Time::new(2.1))
                .build()
                .unwrap(),
            &s,
        );
        // Greedy immediate commitment on the same stream loses J1: it
        // commits J0 to start at 0 and is busy during J1's whole window.
        let mut greedy = crate::Greedy::new(1);
        assert!(greedy.offer(&job(0, 0.0, 2.0, 8.0)).is_accept());
        assert!(!greedy.offer(&job(1, 1.0, 1.0, 2.1)).is_accept());
    }

    #[test]
    fn started_jobs_are_irrevocable() {
        let mut a = NotificationEdf::new(1);
        assert!(a.offer(&job(0, 0.0, 1.0, 1.2)).is_accept());
        // Job 0's latest start is 0.2 < next release => it has started.
        let d = a.offer(&job(1, 0.5, 0.4, 0.95));
        assert_eq!(d, Decision::Reject, "machine is busy with started J0");
        let s = a.finish();
        assert_eq!(s.len(), 1);
        let c = s.commitment_of(JobId(0)).unwrap();
        assert!(c.start.raw() <= 0.2 + 1e-9);
    }

    #[test]
    fn final_schedule_validates_against_instance() {
        let mut b = InstanceBuilder::new(2, 0.2);
        for i in 0..30 {
            let r = (i % 7) as f64 * 0.4;
            let p = 0.3 + (i % 5) as f64 * 0.3;
            b.push_tight(Time::new(r), p);
        }
        let inst = b.build().unwrap();
        let mut a = NotificationEdf::new(2);
        let mut accepted = 0;
        for j in inst.jobs() {
            if a.offer(j).is_accept() {
                accepted += 1;
            }
        }
        let s = a.finish();
        assert_eq!(s.len(), accepted);
        cslack_kernel::validate::assert_valid(&inst, &s);
    }

    #[test]
    fn accepted_load_counts_pending_and_started() {
        let mut a = NotificationEdf::new(1);
        a.offer(&job(0, 0.0, 1.0, 5.0));
        a.offer(&job(1, 0.0, 2.0, 5.0));
        assert!((a.accepted_load() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut a = NotificationEdf::new(2);
        a.offer(&job(0, 0.0, 1.0, 1.2));
        a.reset();
        assert_eq!(a.accepted_load(), 0.0);
        assert!(a.offer(&job(1, 0.0, 1.0, 1.2)).is_accept());
    }
}
