//! # cslack-algorithms
//!
//! Online admission-control algorithms with *immediate commitment* for
//! `Pm | online, eps, immediate | sum p_j (1 - U_j)`:
//!
//! * [`Threshold`] — **Algorithm 1 of the paper** (the primary
//!   contribution): a machine-indexed deadline threshold built from the
//!   `f_q(eps, m)` parameters, combined with best-fit allocation.
//! * [`GoldwasserKerbikov`] — the optimal `2 + 1/eps` single-machine
//!   deterministic algorithm (coincides with Threshold at `m = 1`).
//! * [`Greedy`] — accept-everything best-fit list scheduling (Kim–Chwa);
//!   per the caption of the paper's Fig. 1 its parallel-machine ratio
//!   equals the `m = 1` curve `2 + 1/eps`.
//! * [`LeeClassify`] — a size-classified reservation heuristic in the
//!   spirit of Lee'03's `1 + m + m eps^{-1/m}` algorithm, adapted to
//!   immediate commitment (documented substitution, see DESIGN.md).
//! * [`RandomizedClassifySelect`] — Corollary 1: simulate `m` virtual
//!   machines with Threshold, execute the jobs of one machine chosen
//!   uniformly at random on the real single machine.
//! * [`preemptive::PreemptiveEdf`] — DasGupta–Palis-style `1 + 1/eps`
//!   comparator on the preemptive (no-migration) machine model, built on
//!   its own preemptive schedule substrate.
//! * [`ablation`] — Threshold variants that disable one design choice
//!   each (forced phase index, constant factors, worst-fit allocation,
//!   latest-start allocation) for experiment E10.
//!
//! All deterministic non-preemptive algorithms implement
//! [`OnlineScheduler`]: one `offer` call per arriving job, returning an
//! irrevocable [`Decision`].
//!
//! The non-preemptive algorithms share one allocation substrate: the
//! [`alloc::AllocCore`] (candidate scan, best/worst-fit selection, start
//! policy, cached machine ranking) layered over the incremental
//! [`park::MachinePark`] ranking structure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod alloc;
pub mod delayed;
pub mod greedy;
pub mod lee;
pub mod migration;
pub mod notification;
pub mod park;
pub mod preemptive;
pub mod randomized;
pub mod threshold;

pub use alloc::{AllocCore, AllocPolicy, RankingMode, StartPolicy};
pub use greedy::Greedy;
pub use lee::LeeClassify;
pub use randomized::RandomizedClassifySelect;
pub use threshold::{GoldwasserKerbikov, Threshold};

use cslack_kernel::{Job, MachineId, Time};
use cslack_obs::RejectReason;

/// The irrevocable reply to a job submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Admit the job on `machine`, starting exactly at `start`.
    Accept {
        /// The machine the job is bound to.
        machine: MachineId,
        /// The committed start time.
        start: Time,
    },
    /// Reject the job (it is lost forever).
    Reject,
}

impl Decision {
    /// Whether this decision admits the job.
    #[inline]
    pub fn is_accept(&self) -> bool {
        matches!(self, Decision::Accept { .. })
    }
}

/// Observability sidecar of a [`Decision`]: what the algorithm looked
/// at while deciding, in the vocabulary of [`cslack_obs`].
///
/// Produced by [`OnlineScheduler::offer_explained`]; the service engine
/// copies it into the per-shard decision trace so a rejection is never
/// an opaque boolean.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DecisionInfo {
    /// Machine candidates the allocator evaluated (0 when the job was
    /// rejected before allocation).
    pub candidates: u32,
    /// The admission threshold (`d_lim` for Threshold) the job's
    /// deadline was tested against, when the algorithm has one.
    pub threshold: Option<f64>,
    /// Outstanding load of the least loaded machine at decision time,
    /// when the algorithm tracks it.
    pub min_load: Option<f64>,
    /// Typed cause for a rejection (`None` for accepts).
    pub reject_reason: Option<RejectReason>,
}

impl DecisionInfo {
    /// The fallback explanation for algorithms that do not override
    /// [`OnlineScheduler::offer_explained`]: rejections are
    /// [`RejectReason::Unattributed`], nothing else is known.
    pub fn unattributed(decision: &Decision) -> DecisionInfo {
        DecisionInfo {
            reject_reason: match decision {
                Decision::Accept { .. } => None,
                Decision::Reject => Some(RejectReason::Unattributed),
            },
            ..DecisionInfo::default()
        }
    }
}

/// An online admission-control algorithm with immediate commitment.
///
/// The driver calls [`OnlineScheduler::offer`] once per job, in release
/// order. The returned [`Decision`] is binding: the simulator commits it
/// to the authoritative [`cslack_kernel::Schedule`] and verifies that the
/// algorithm never revises or violates it.
///
/// Schedulers are `Send` so that drivers may move them onto worker
/// threads (the sharded service engine runs one scheduler per shard
/// thread); they still receive offers strictly sequentially.
pub trait OnlineScheduler: Send {
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Number of machines the algorithm schedules onto.
    fn machines(&self) -> usize;

    /// Decide irrevocably whether (and where/when) to run `job`.
    ///
    /// Invariant expected from callers: jobs arrive in non-decreasing
    /// release order and satisfy the slack condition for the `eps` the
    /// algorithm was configured with.
    fn offer(&mut self, job: &Job) -> Decision;

    /// Like [`OnlineScheduler::offer`], additionally explaining the
    /// decision for tracing.
    ///
    /// The default implementation wraps `offer` and reports rejections
    /// as [`RejectReason::Unattributed`]; algorithms that know *why*
    /// they reject (Threshold, Greedy, ...) override this with the
    /// typed cause and the threshold/load values they computed anyway.
    /// Same contract as `offer`: the returned decision is irrevocable
    /// and the call mutates scheduler state exactly once.
    fn offer_explained(&mut self, job: &Job) -> (Decision, DecisionInfo) {
        let decision = self.offer(job);
        let info = DecisionInfo::unattributed(&decision);
        (decision, info)
    }

    /// Reset all internal state for a fresh run.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessors() {
        let d = Decision::Accept {
            machine: MachineId(0),
            start: Time::ZERO,
        };
        assert!(d.is_accept());
        assert!(!Decision::Reject.is_accept());
    }
}
