//! The preemptive (no-migration) comparator: DasGupta–Palis-style EDF
//! admission control with competitive ratio `1 + 1/eps`.
//!
//! This is a *different machine model* from the rest of the crate: jobs
//! may be interrupted and resumed on their machine (never migrated), so
//! commitments fix only the machine, not a start time — the paper calls
//! this *immediate notification*. The related-work section uses it to
//! position the non-preemptive Threshold result; experiment E9 compares
//! the two models on shared workloads.
//!
//! Admission rule (DasGupta & Palis 2001): admit an arriving job on the
//! first machine where EDF still meets every admitted deadline with the
//! new job included. For a single machine with all admitted work already
//! released, EDF feasibility is exactly the staircase test
//! `sum_{d_i <= d} remaining_i <= d - now` for every deadline `d`.
//!
//! The module carries its own execution substrate: a per-machine EDF
//! executor that materializes execution [`Slice`]s, which the tests
//! validate (full service before deadline, no overlap, no migration).

use cslack_kernel::{Job, JobId, MachineId, Time};

/// A contiguous piece of executed work.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slice {
    /// The job being executed.
    pub job: JobId,
    /// The executing machine.
    pub machine: MachineId,
    /// Slice start.
    pub start: Time,
    /// Slice end (exclusive).
    pub end: Time,
}

impl Slice {
    /// The amount of work the slice performs.
    pub fn work(&self) -> f64 {
        self.end - self.start
    }
}

#[derive(Clone, Debug)]
struct ActiveJob {
    id: JobId,
    deadline: Time,
    remaining: f64,
}

#[derive(Clone, Debug, Default)]
struct MachineState {
    /// Admitted jobs with remaining work, unordered.
    active: Vec<ActiveJob>,
}

impl MachineState {
    /// Runs EDF from `from` to `to`, appending slices.
    fn advance(&mut self, machine: MachineId, from: Time, to: Time, out: &mut Vec<Slice>) {
        let mut now = from;
        while now < to {
            // Earliest-deadline job with remaining work.
            let Some(idx) = self
                .active
                .iter()
                .enumerate()
                .filter(|(_, j)| j.remaining > 0.0)
                .min_by(|a, b| a.1.deadline.cmp(&b.1.deadline))
                .map(|(i, _)| i)
            else {
                break; // idle until `to`
            };
            let j = &mut self.active[idx];
            let run = j.remaining.min(to - now);
            out.push(Slice {
                job: j.id,
                machine,
                start: now,
                end: now + run,
            });
            j.remaining -= run;
            now += run;
        }
        self.active.retain(|j| j.remaining > 0.0);
    }

    /// EDF feasibility of the current active set plus `candidate` at time
    /// `now`: staircase test over deadlines.
    fn feasible_with(&self, candidate: &Job, now: Time) -> bool {
        let mut jobs: Vec<(Time, f64)> = self
            .active
            .iter()
            .map(|j| (j.deadline, j.remaining))
            .collect();
        jobs.push((candidate.deadline, candidate.proc_time));
        jobs.sort_by_key(|a| a.0);
        let mut work = 0.0;
        for (deadline, remaining) in jobs {
            work += remaining;
            if !cslack_kernel::tol::approx_le(work, deadline - now) {
                return false;
            }
        }
        true
    }
}

/// Preemptive EDF admission control (immediate notification, no
/// migration) — the `1 + 1/eps` comparator.
#[derive(Clone, Debug)]
pub struct PreemptiveEdf {
    machines: Vec<MachineState>,
    now: Time,
    slices: Vec<Slice>,
    accepted_load: f64,
    accepted: Vec<(JobId, MachineId)>,
}

impl PreemptiveEdf {
    /// Builds the algorithm on `m` machines.
    pub fn new(m: usize) -> PreemptiveEdf {
        assert!(m >= 1);
        PreemptiveEdf {
            machines: vec![MachineState::default(); m],
            now: Time::ZERO,
            slices: Vec::new(),
            accepted_load: 0.0,
            accepted: Vec::new(),
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines.len()
    }

    /// Advances simulated time to `t`, executing EDF on every machine.
    pub fn run_to(&mut self, t: Time) {
        if t <= self.now {
            return;
        }
        for (i, ms) in self.machines.iter_mut().enumerate() {
            ms.advance(MachineId(i as u32), self.now, t, &mut self.slices);
        }
        self.now = t;
    }

    /// Offers a job at its release date: returns the admission machine,
    /// or `None` for rejection. The decision is immediate and
    /// irrevocable (the job *will* be fully served by its deadline).
    pub fn offer(&mut self, job: &Job) -> Option<MachineId> {
        self.run_to(job.release);
        let idx =
            (0..self.machines.len()).find(|&i| self.machines[i].feasible_with(job, self.now))?;
        self.machines[idx].active.push(ActiveJob {
            id: job.id,
            deadline: job.deadline,
            remaining: job.proc_time,
        });
        self.accepted_load += job.proc_time;
        let machine = MachineId(idx as u32);
        self.accepted.push((job.id, machine));
        Some(machine)
    }

    /// Runs every admitted job to completion and returns the execution
    /// trace (sorted per machine by construction).
    pub fn finish(mut self) -> PreemptiveRun {
        let horizon = self
            .machines
            .iter()
            .flat_map(|ms| ms.active.iter().map(|j| j.deadline))
            .max()
            .unwrap_or(self.now);
        self.run_to(horizon);
        debug_assert!(self.machines.iter().all(|ms| ms.active.is_empty()));
        PreemptiveRun {
            slices: self.slices,
            accepted_load: self.accepted_load,
            accepted: self.accepted,
        }
    }

    /// Total processing time of all admitted jobs.
    pub fn accepted_load(&self) -> f64 {
        self.accepted_load
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        let m = self.machines.len();
        *self = PreemptiveEdf::new(m);
    }
}

/// The completed execution of a [`PreemptiveEdf`] run.
#[derive(Clone, Debug)]
pub struct PreemptiveRun {
    /// Every executed slice, in execution order per machine.
    pub slices: Vec<Slice>,
    /// Total admitted processing time (the objective value).
    pub accepted_load: f64,
    /// Admitted jobs and their machines, in admission order.
    pub accepted: Vec<(JobId, MachineId)>,
}

impl PreemptiveRun {
    /// Total executed work on `machine`.
    pub fn machine_work(&self, machine: MachineId) -> f64 {
        self.slices
            .iter()
            .filter(|s| s.machine == machine)
            .map(Slice::work)
            .sum()
    }

    /// Work executed for one job (should equal its processing time).
    pub fn job_work(&self, job: JobId) -> f64 {
        self.slices
            .iter()
            .filter(|s| s.job == job)
            .map(Slice::work)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::tol;

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut a = PreemptiveEdf::new(1);
        assert_eq!(a.offer(&job(0, 0.0, 2.0, 3.0)), Some(MachineId(0)));
        let run = a.finish();
        assert!(tol::approx_eq(run.job_work(JobId(0)), 2.0));
        assert_eq!(run.accepted_load, 2.0);
    }

    #[test]
    fn preemption_admits_what_nonpreemptive_cannot() {
        // Long lax job, then a short tight one: non-preemptive greedy
        // must run them back to back and the tight one misses; EDF
        // preempts and serves both.
        let mut a = PreemptiveEdf::new(1);
        assert!(a.offer(&job(0, 0.0, 4.0, 10.0)).is_some());
        assert!(a.offer(&job(1, 0.0, 1.0, 1.0)).is_some(), "EDF preempts");
        let run = a.finish();
        assert!(tol::approx_eq(run.job_work(JobId(0)), 4.0));
        assert!(tol::approx_eq(run.job_work(JobId(1)), 1.0));
        // The tight job must be served entirely before t = 1.
        for s in run.slices.iter().filter(|s| s.job == JobId(1)) {
            assert!(s.end.approx_le(Time::new(1.0)));
        }
    }

    #[test]
    fn staircase_test_rejects_overload() {
        let mut a = PreemptiveEdf::new(1);
        assert!(a.offer(&job(0, 0.0, 2.0, 2.5)).is_some());
        // 2 + 1 = 3 > 2.9: infeasible even with preemption.
        assert!(a.offer(&job(1, 0.0, 1.0, 2.9)).is_none());
        // But feasible by deadline 3.0 exactly.
        assert!(a.offer(&job(2, 0.0, 1.0, 3.0)).is_some());
    }

    #[test]
    fn no_migration_each_job_stays_on_its_machine() {
        let mut a = PreemptiveEdf::new(2);
        for i in 0..6 {
            a.offer(&job(i, 0.0, 1.0, 4.0));
        }
        let run = a.finish();
        for (jid, machine) in &run.accepted {
            for s in run.slices.iter().filter(|s| s.job == *jid) {
                assert_eq!(s.machine, *machine, "{jid} migrated");
            }
        }
    }

    #[test]
    fn slices_never_overlap_per_machine() {
        let mut a = PreemptiveEdf::new(2);
        let spec = [
            (0u32, 0.0, 2.0, 9.0),
            (1, 0.5, 1.0, 2.0),
            (2, 0.5, 3.0, 9.0),
            (3, 1.0, 0.5, 2.0),
            (4, 2.0, 1.0, 4.0),
        ];
        for (id, r, p, d) in spec {
            a.offer(&job(id, r, p, d));
        }
        let run = a.finish();
        for m in 0..2 {
            let mut lane: Vec<&Slice> = run
                .slices
                .iter()
                .filter(|s| s.machine == MachineId(m))
                .collect();
            lane.sort_by_key(|a| a.start);
            for w in lane.windows(2) {
                assert!(
                    w[0].end.approx_le(w[1].start),
                    "overlap on machine {m}: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn every_admitted_job_is_fully_served_before_deadline() {
        let mut a = PreemptiveEdf::new(2);
        let jobs: Vec<Job> = (0..30)
            .map(|i| {
                let r = (i % 7) as f64 * 0.5;
                let p = 0.3 + (i % 5) as f64 * 0.4;
                Job::tight(JobId(i), Time::new(r), p, 0.2)
            })
            .collect();
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|a| a.release);
        let mut admitted = Vec::new();
        for j in &sorted {
            if a.offer(j).is_some() {
                admitted.push(*j);
            }
        }
        assert!(!admitted.is_empty());
        let run = a.finish();
        for j in &admitted {
            assert!(
                tol::approx_eq(run.job_work(j.id), j.proc_time),
                "{} under-served",
                j.id
            );
            for s in run.slices.iter().filter(|s| s.job == j.id) {
                assert!(s.start.approx_ge(j.release), "{} ran early", j.id);
                assert!(s.end.approx_le(j.deadline), "{} ran late", j.id);
            }
        }
    }

    #[test]
    fn accepted_load_tracks_admissions() {
        let mut a = PreemptiveEdf::new(1);
        a.offer(&job(0, 0.0, 2.0, 10.0));
        a.offer(&job(1, 0.0, 3.0, 10.0));
        a.offer(&job(2, 0.0, 9.0, 10.0)); // rejected: 14 > 10
        assert_eq!(a.accepted_load(), 5.0);
        a.reset();
        assert_eq!(a.accepted_load(), 0.0);
    }
}
