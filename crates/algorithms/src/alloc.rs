//! The shared allocator core behind every append-style algorithm.
//!
//! Threshold, Greedy, the ablation variants, Lee's classifier and the
//! delayed-commitment comparator all used to carry their own copy of the
//! same decision machinery: rank the machines, scan the ranked view for
//! candidates that can still complete the job by its deadline, pick one
//! by an allocation policy, pick a start time by a start policy, commit.
//! [`AllocCore`] centralizes that machinery over one [`MachinePark`],
//! parameterized by [`AllocPolicy`] / [`StartPolicy`] / [`RankingMode`],
//! so all algorithms share the (now incremental) ranking path and a
//! reusable rank buffer instead of a fresh allocation per offer.
//!
//! The ranked view produced for one instant is cached: an algorithm that
//! first reads the ranking (threshold evaluation) and then places the job
//! at the same instant pays for it once. Any commit invalidates the
//! cache.

use crate::park::{MachinePark, RankedMachine};
use cslack_kernel::{Job, MachineId, Time};

/// Which machine among the feasible candidates receives an accepted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Paper's choice: the most loaded candidate ("best fit").
    BestFit,
    /// Ablation: the least loaded candidate ("worst fit").
    WorstFit,
}

/// When an accepted job is started on its machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartPolicy {
    /// Paper's choice: immediately after the machine's outstanding load.
    Earliest,
    /// Ablation: as late as the deadline allows (`d_j - p_j`).
    Latest,
}

/// How the ranked machine view is produced.
///
/// Both modes yield bit-identical sequences (property-tested); the
/// sort-based mode exists as the reference/baseline for the incremental
/// ladder and for before/after benchmarking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RankingMode {
    /// Incrementally maintained frontier ladder (default; `O(log m)`
    /// repair per accept instead of a sort per offer).
    #[default]
    Incremental,
    /// Full stable sort per offer — the pre-refactor reference path.
    FullSort,
}

/// Outcome of [`AllocCore::place`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Placement {
    /// The job was committed.
    Committed {
        /// The machine the job is bound to.
        machine: MachineId,
        /// The committed start time.
        start: Time,
        /// Ranked machines the candidate scan evaluated.
        evaluated: u32,
    },
    /// No machine can complete the job by its deadline.
    Infeasible {
        /// Ranked machines the candidate scan evaluated.
        evaluated: u32,
    },
}

/// One [`MachinePark`] plus the shared candidate-scan/placement logic
/// and a reusable, instant-cached rank buffer.
#[derive(Clone, Debug)]
pub struct AllocCore {
    park: MachinePark,
    mode: RankingMode,
    rank_buf: Vec<RankedMachine>,
    /// `Some(now)` while `rank_buf` holds the ranking for instant `now`
    /// (exact-bit comparison; any commit clears it).
    valid_for: Option<Time>,
}

impl AllocCore {
    /// An idle core over `m` machines with the default (incremental)
    /// ranking mode.
    pub fn new(m: usize) -> AllocCore {
        AllocCore::with_mode(m, RankingMode::default())
    }

    /// An idle core over `m` machines with an explicit ranking mode.
    pub fn with_mode(m: usize, mode: RankingMode) -> AllocCore {
        AllocCore {
            park: MachinePark::new(m),
            mode,
            rank_buf: Vec::with_capacity(m),
            valid_for: None,
        }
    }

    /// Number of machines.
    #[inline]
    pub fn machines(&self) -> usize {
        self.park.machines()
    }

    /// The ranking mode in use.
    #[inline]
    pub fn mode(&self) -> RankingMode {
        self.mode
    }

    /// Read access to the underlying park (frontiers, outstanding loads).
    #[inline]
    pub fn park(&self) -> &MachinePark {
        &self.park
    }

    /// Earliest feasible start of a new job on `machine` at `now`.
    #[inline]
    pub fn earliest_start(&self, machine: MachineId, now: Time) -> Time {
        self.park.earliest_start(machine, now)
    }

    /// Whether `machine` can complete `job` by its deadline when started
    /// right after its outstanding load.
    #[inline]
    fn feasible(park: &MachinePark, machine: MachineId, job: &Job, now: Time) -> bool {
        (park.earliest_start(machine, now) + job.proc_time).approx_le(job.deadline)
    }

    /// Ensures `rank_buf` holds the ranking for `now`.
    fn ensure_ranked(&mut self, now: Time) {
        if self.valid_for == Some(now) {
            return;
        }
        match self.mode {
            RankingMode::Incremental => self.park.ranked_into(now, &mut self.rank_buf),
            RankingMode::FullSort => {
                self.rank_buf.clear();
                self.rank_buf.extend(self.park.ranked(now));
            }
        }
        self.valid_for = Some(now);
    }

    /// The machines ranked by decreasing outstanding load at `now`
    /// (paper's dynamic index: element `h - 1` is machine `m_h`).
    pub fn rank(&mut self, now: Time) -> &[RankedMachine] {
        self.ensure_ranked(now);
        &self.rank_buf
    }

    /// Outstanding load of the least loaded machine at `now`.
    pub fn min_load(&mut self, now: Time) -> f64 {
        self.ensure_ranked(now);
        self.rank_buf.last().expect("m >= 1").load
    }

    /// Scans the ranked view for the policy's candidate: the most loaded
    /// feasible machine for [`AllocPolicy::BestFit`], the least loaded
    /// for [`AllocPolicy::WorstFit`]. Returns the number of machines the
    /// scan evaluated (including the chosen one) and the choice.
    pub fn select(&mut self, job: &Job, now: Time, alloc: AllocPolicy) -> (u32, Option<MachineId>) {
        self.ensure_ranked(now);
        let park = &self.park;
        let mut evaluated = 0u32;
        let chosen = match alloc {
            // The view is sorted by decreasing load, so the first
            // feasible entry is the most loaded candidate, the last the
            // least.
            AllocPolicy::BestFit => self.rank_buf.iter().find(|rm| {
                evaluated += 1;
                Self::feasible(park, rm.machine, job, now)
            }),
            AllocPolicy::WorstFit => self.rank_buf.iter().rev().find(|rm| {
                evaluated += 1;
                Self::feasible(park, rm.machine, job, now)
            }),
        };
        (evaluated, chosen.map(|rm| rm.machine))
    }

    /// All machines that can complete `job` by its deadline, most loaded
    /// first (best-fit order).
    pub fn candidates(&mut self, job: &Job, now: Time) -> Vec<MachineId> {
        self.ensure_ranked(now);
        let park = &self.park;
        self.rank_buf
            .iter()
            .filter(|rm| Self::feasible(park, rm.machine, job, now))
            .map(|rm| rm.machine)
            .collect()
    }

    /// Full placement: select a candidate under `alloc`, derive the start
    /// time under `start`, and commit. Does nothing on
    /// [`Placement::Infeasible`].
    pub fn place(
        &mut self,
        job: &Job,
        now: Time,
        alloc: AllocPolicy,
        start: StartPolicy,
    ) -> Placement {
        let (evaluated, chosen) = self.select(job, now, alloc);
        let Some(machine) = chosen else {
            return Placement::Infeasible { evaluated };
        };
        let earliest = self.park.earliest_start(machine, now);
        let start = match start {
            StartPolicy::Earliest => earliest,
            StartPolicy::Latest => (job.deadline - job.proc_time).max(earliest),
        };
        self.commit(machine, start, job.proc_time);
        Placement::Committed {
            machine,
            start,
            evaluated,
        }
    }

    /// Placement onto one *fixed* machine (Lee's class reservation):
    /// commits at the earliest start iff the deadline is met, returning
    /// the start time on success.
    pub fn place_on(&mut self, machine: MachineId, job: &Job, now: Time) -> Option<Time> {
        let start = self.park.earliest_start(machine, now);
        if !(start + job.proc_time).approx_le(job.deadline) {
            return None;
        }
        self.commit(machine, start, job.proc_time);
        Some(start)
    }

    /// Records a commitment and invalidates the cached ranking.
    pub fn commit(&mut self, machine: MachineId, start: Time, proc_time: f64) {
        self.park.commit(machine, start, proc_time);
        self.valid_for = None;
    }

    /// Forgets everything (all machines idle again).
    pub fn reset(&mut self) {
        self.park.reset();
        self.rank_buf.clear();
        self.valid_for = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cslack_kernel::{JobId, Time};

    fn job(id: u32, r: f64, p: f64, d: f64) -> Job {
        Job::new(JobId(id), Time::new(r), p, Time::new(d))
    }

    #[test]
    fn best_fit_and_worst_fit_pick_opposite_ends() {
        let mut core = AllocCore::new(3);
        core.commit(MachineId(0), Time::ZERO, 5.0);
        core.commit(MachineId(1), Time::ZERO, 2.0);
        let j = job(0, 0.0, 1.0, 100.0);
        let (_, best) = core.select(&j, Time::ZERO, AllocPolicy::BestFit);
        let (_, worst) = core.select(&j, Time::ZERO, AllocPolicy::WorstFit);
        assert_eq!(best, Some(MachineId(0)));
        assert_eq!(worst, Some(MachineId(2)));
    }

    #[test]
    fn select_skips_infeasible_prefix_and_counts_evaluations() {
        let mut core = AllocCore::new(2);
        core.commit(MachineId(0), Time::ZERO, 4.0);
        // Deadline 3 can't wait for load 4: falls through to idle M1.
        let j = job(0, 0.0, 1.0, 3.0);
        let (evaluated, chosen) = core.select(&j, Time::ZERO, AllocPolicy::BestFit);
        assert_eq!(chosen, Some(MachineId(1)));
        assert_eq!(evaluated, 2);
    }

    #[test]
    fn place_latest_defers_to_deadline() {
        let mut core = AllocCore::new(1);
        match core.place(
            &job(0, 0.0, 1.0, 10.0),
            Time::ZERO,
            AllocPolicy::BestFit,
            StartPolicy::Latest,
        ) {
            Placement::Committed { start, .. } => assert_eq!(start, Time::new(9.0)),
            p => panic!("unexpected {p:?}"),
        }
    }

    #[test]
    fn place_reports_infeasible_without_committing() {
        let mut core = AllocCore::new(1);
        core.commit(MachineId(0), Time::ZERO, 5.0);
        let before = core.park().frontier(MachineId(0));
        match core.place(
            &job(0, 0.0, 2.0, 3.0),
            Time::ZERO,
            AllocPolicy::BestFit,
            StartPolicy::Earliest,
        ) {
            Placement::Infeasible { evaluated } => assert_eq!(evaluated, 1),
            p => panic!("unexpected {p:?}"),
        }
        assert_eq!(core.park().frontier(MachineId(0)), before);
    }

    #[test]
    fn rank_cache_survives_reads_and_dies_on_commit() {
        let mut core = AllocCore::new(2);
        core.commit(MachineId(1), Time::ZERO, 2.0);
        let first = core.rank(Time::ZERO).to_vec();
        // Second read at the same instant: served from the cache.
        assert_eq!(core.rank(Time::ZERO), &first[..]);
        core.commit(MachineId(0), Time::ZERO, 7.0);
        let after = core.rank(Time::ZERO).to_vec();
        assert_eq!(after[0].machine, MachineId(0));
        assert_eq!(after[0].load, 7.0);
    }

    #[test]
    fn candidates_preserve_best_fit_order() {
        let mut core = AllocCore::new(3);
        core.commit(MachineId(2), Time::ZERO, 3.0);
        core.commit(MachineId(0), Time::ZERO, 1.0);
        let j = job(0, 0.0, 1.0, 100.0);
        assert_eq!(
            core.candidates(&j, Time::ZERO),
            vec![MachineId(2), MachineId(0), MachineId(1)]
        );
        // A tight deadline filters the loaded machines out.
        let tight = job(1, 0.0, 1.0, 1.5);
        assert_eq!(core.candidates(&tight, Time::ZERO), vec![MachineId(1)]);
    }

    #[test]
    fn place_on_respects_the_fixed_machine() {
        let mut core = AllocCore::new(2);
        core.commit(MachineId(0), Time::ZERO, 2.0);
        let j = job(0, 0.0, 1.0, 1.5);
        // M0 is clogged; the fixed-machine placement must NOT fall over
        // to M1.
        assert_eq!(core.place_on(MachineId(0), &j, Time::ZERO), None);
        assert_eq!(
            core.place_on(MachineId(1), &j, Time::ZERO),
            Some(Time::ZERO)
        );
    }

    #[test]
    fn both_modes_agree_on_decisions() {
        let mut inc = AllocCore::with_mode(3, RankingMode::Incremental);
        let mut srt = AllocCore::with_mode(3, RankingMode::FullSort);
        let jobs = [
            job(0, 0.0, 2.0, 9.0),
            job(1, 0.0, 2.0, 9.0),
            job(2, 0.5, 1.0, 2.0),
            job(3, 2.0, 3.0, 20.0),
            job(4, 2.0, 0.5, 2.6),
        ];
        for j in &jobs {
            let a = inc.place(j, j.release, AllocPolicy::BestFit, StartPolicy::Earliest);
            let b = srt.place(j, j.release, AllocPolicy::BestFit, StartPolicy::Earliest);
            assert_eq!(a, b, "modes diverged on {:?}", j.id);
        }
    }
}
