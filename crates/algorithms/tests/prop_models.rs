//! Property tests for the alternative machine/commitment models:
//! delayed commitment, immediate notification, preemptive EDF, and the
//! migratory planner — soundness on arbitrary job streams.

use cslack_algorithms::delayed::DelayedGreedy;
use cslack_algorithms::migration::MigratoryAdmission;
use cslack_algorithms::notification::NotificationEdf;
use cslack_algorithms::preemptive::PreemptiveEdf;
use cslack_algorithms::OnlineScheduler;
use cslack_kernel::{Job, JobId, Time};
use proptest::prelude::*;

/// Random release-ordered job stream with system slack `eps`.
fn arb_stream(max_len: usize) -> impl Strategy<Value = (f64, Vec<Job>)> {
    (0.05f64..=1.0).prop_flat_map(move |eps| {
        prop::collection::vec((0.0f64..0.8, 0.1f64..2.5, 0.0f64..1.2), 1..max_len).prop_map(
            move |raw| {
                let mut t = 0.0;
                let jobs: Vec<Job> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, (gap, p, extra))| {
                        t += gap;
                        Job::new(
                            JobId(i as u32),
                            Time::new(t),
                            *p,
                            Time::new(t + (1.0 + eps + extra) * p),
                        )
                    })
                    .collect();
                (eps, jobs)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delayed commitment: the final schedule is feasible against the
    /// original jobs — every commitment within release/deadline, no
    /// overlap (the kernel Schedule enforces it; we re-check totals).
    #[test]
    fn delayed_schedules_are_sound((eps, jobs) in arb_stream(40), frac in 0.0f64..=1.0) {
        let mut a = DelayedGreedy::new(2, frac * eps);
        for j in &jobs {
            a.offer(j);
        }
        let s = a.finish();
        for c in s.iter() {
            prop_assert!(c.start.approx_ge(c.job.release));
            prop_assert!(c.completion().approx_le(c.job.deadline));
        }
        let offered: f64 = jobs.iter().map(|j| j.proc_time).sum();
        prop_assert!(s.accepted_load() <= offered + 1e-9);
    }

    /// More delay never hurts on a *single offered job* (trivial), and
    /// across streams the delta = 0 variant matches greedy acceptance
    /// count exactly.
    #[test]
    fn delayed_zero_equals_greedy((eps, jobs) in arb_stream(40)) {
        let _ = eps;
        let mut d = DelayedGreedy::new(3, 0.0);
        let mut g = cslack_algorithms::Greedy::new(3);
        let mut greedy_load = 0.0;
        for j in &jobs {
            d.offer(j);
            if g.offer(j).is_accept() {
                greedy_load += j.proc_time;
            }
        }
        let s = d.finish();
        prop_assert!((s.accepted_load() - greedy_load).abs() < 1e-9,
            "delta=0: {} vs greedy {}", s.accepted_load(), greedy_load);
    }

    /// Notification model: final schedule valid; accepted load equals
    /// the sum over accept decisions (nothing admitted is dropped).
    #[test]
    fn notification_keeps_every_admission((eps, jobs) in arb_stream(40)) {
        let _ = eps;
        let mut a = NotificationEdf::new(2);
        let mut admitted = 0.0;
        for j in &jobs {
            if a.offer(j).is_accept() {
                admitted += j.proc_time;
            }
        }
        let s = a.finish();
        prop_assert!((s.accepted_load() - admitted).abs() < 1e-9,
            "promised {admitted}, delivered {}", s.accepted_load());
        for c in s.iter() {
            prop_assert!(c.start.approx_ge(c.job.release));
            prop_assert!(c.completion().approx_le(c.job.deadline));
        }
    }

    /// Notification admits at least as much as greedy *count-wise* on
    /// single-job streams... not in general; the sound comparison: the
    /// notification model's admission test subsumes greedy's append
    /// test at equal state, so on a one-job stream both agree.
    #[test]
    fn notification_agrees_with_greedy_on_singletons(r in 0.0f64..5.0, p in 0.1f64..3.0, lax in 0.0f64..2.0) {
        let j = Job::new(JobId(0), Time::new(r), p, Time::new(r + (1.05 + lax) * p));
        let mut n = NotificationEdf::new(1);
        let mut g = cslack_algorithms::Greedy::new(1);
        prop_assert_eq!(n.offer(&j).is_accept(), g.offer(&j).is_accept());
    }

    /// Migration: everything admitted is fully served with no
    /// self-parallelism and no per-machine overlap.
    #[test]
    fn migration_runs_are_sound((eps, jobs) in arb_stream(25)) {
        let _ = eps;
        let mut a = MigratoryAdmission::new(2);
        let mut admitted = Vec::new();
        for j in &jobs {
            if a.offer(j) {
                admitted.push(*j);
            }
        }
        let run = a.finish();
        for j in &admitted {
            prop_assert!((run.job_work(j.id) - j.proc_time).abs() < 1e-6,
                "{} served {} of {}", j.id, run.job_work(j.id), j.proc_time);
        }
        // Per-machine non-overlap.
        for m in 0..2u32 {
            let mut lane: Vec<_> = run
                .slices
                .iter()
                .filter(|s| s.machine == cslack_kernel::MachineId(m))
                .collect();
            lane.sort_by_key(|a| a.start);
            for w in lane.windows(2) {
                prop_assert!(w[0].end.approx_le(w[1].start));
            }
        }
        // Per-job non-self-parallelism.
        for j in &admitted {
            let mut mine: Vec<_> = run.slices.iter().filter(|s| s.job == j.id).collect();
            mine.sort_by_key(|a| a.start);
            for w in mine.windows(2) {
                prop_assert!(w[0].end.approx_le(w[1].start),
                    "{} self-parallel", j.id);
            }
        }
    }

    /// Model hierarchy on identical streams: the migratory admission
    /// accepts at least as much as the preemptive no-migration EDF...
    /// is NOT a theorem per instance (states diverge) — but both must
    /// stay within the flow bound of the full stream, and migration's
    /// *admission test* is exact, so its acceptance is monotone: every
    /// prefix it accepts remains feasible. We check the flow-bound
    /// ceiling for both.
    #[test]
    fn preemptive_models_respect_the_flow_ceiling((eps, jobs) in arb_stream(25)) {
        let mut b = cslack_kernel::InstanceBuilder::new(2, 0.04);
        for j in &jobs {
            b.push(j.release, j.proc_time, j.deadline);
        }
        let inst = b.build().unwrap();
        let _ = eps;
        let ceiling = cslack_opt::flow::preemptive_load_bound(&inst);

        let mut edf = PreemptiveEdf::new(2);
        let mut mig = MigratoryAdmission::new(2);
        for j in inst.jobs() {
            edf.offer(j);
            mig.offer(j);
        }
        prop_assert!(edf.accepted_load() <= ceiling + 1e-6 * ceiling.max(1.0));
        prop_assert!(mig.accepted_load() <= ceiling + 1e-6 * ceiling.max(1.0));
    }
}
