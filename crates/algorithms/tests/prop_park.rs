//! Property tests for the incremental machine ranking: under random
//! interleavings of commits, forward time advances, and backwards
//! (rebuild-path) queries, the ladder-maintained ranking must stay
//! bit-identical to the reference full sort.

use cslack_algorithms::park::{MachinePark, RankedMachine};
use cslack_kernel::{MachineId, Time};
use proptest::prelude::*;

/// One step of a randomized park workload.
#[derive(Clone, Debug)]
enum Step {
    /// Advance `now` by the given gap and query the ranking.
    Query { gap: f64 },
    /// Query the ranking at a time *before* the last query (exercises
    /// the full-rebuild fallback used by trial clones / the adversary).
    QueryBack { fraction: f64 },
    /// Commit a job on the machine at rank-independent index
    /// `machine_sel % m`, starting at its earliest feasible start plus
    /// `delay`, for `proc` units.
    Commit {
        machine_sel: usize,
        delay: f64,
        proc: f64,
    },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0.0f64..2.0).prop_map(|gap| Step::Query { gap }),
        (0.0f64..1.0).prop_map(|fraction| Step::QueryBack { fraction }),
        (0usize..16, 0.0f64..0.5, 0.05f64..3.0).prop_map(|(machine_sel, delay, proc)| {
            Step::Commit {
                machine_sel,
                delay,
                proc,
            }
        }),
    ]
}

/// The incremental (mutating, lazily-migrated) ranking view.
fn ranked_inc(park: &mut MachinePark, now: Time) -> Vec<RankedMachine> {
    let mut out = Vec::new();
    park.ranked_into(now, &mut out);
    out
}

/// Exact equality — ranks, machine ids, and load *bits* must all agree.
fn assert_identical(inc: &[RankedMachine], reference: &[RankedMachine]) {
    assert_eq!(inc.len(), reference.len());
    for (a, b) in inc.iter().zip(reference) {
        assert_eq!(a.machine, b.machine, "rank order diverged");
        assert_eq!(
            a.load.to_bits(),
            b.load.to_bits(),
            "load bits diverged on {}",
            a.machine
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Incremental ranking == reference sort after every step of a
    /// random commit/advance/backwards-query interleaving.
    #[test]
    fn incremental_ranking_matches_full_sort(
        m in 1usize..=12,
        steps in prop::collection::vec(arb_step(), 1..60),
    ) {
        let mut park = MachinePark::new(m);
        let mut now = Time::ZERO;
        for step in steps {
            match step {
                Step::Query { gap } => {
                    now += gap;
                }
                Step::QueryBack { fraction } => {
                    let back = Time::new(now.raw() * fraction);
                    let reference = park.ranked(back);
                    let inc = ranked_inc(&mut park, back);
                    assert_identical(&inc, &reference);
                    // Leave `now` unchanged: the next forward query must
                    // recover from the rebuild at the earlier instant.
                }
                Step::Commit { machine_sel, delay, proc } => {
                    let machine = MachineId((machine_sel % m) as u32);
                    let start = park.earliest_start(machine, now) + delay;
                    park.commit(machine, start, proc);
                }
            }
            let reference = park.ranked(now);
            let inc = ranked_inc(&mut park, now);
            assert_identical(&inc, &reference);
        }
    }

    /// The ranking is internally consistent with the park's own
    /// aggregates: loads are the outstanding loads, sorted descending,
    /// with ascending machine ids inside every tie group.
    #[test]
    fn ranking_is_sorted_and_tie_broken_by_id(
        m in 1usize..=8,
        commits in prop::collection::vec((0usize..8, 0.05f64..2.0), 0..30),
        probe in 0.0f64..20.0,
    ) {
        let mut park = MachinePark::new(m);
        let mut now = Time::ZERO;
        for (sel, proc) in commits {
            let machine = MachineId((sel % m) as u32);
            let start = park.earliest_start(machine, now);
            park.commit(machine, start, proc);
            now += proc * 0.25;
        }
        let at = Time::new(probe);
        let ranked = ranked_inc(&mut park, at);
        prop_assert_eq!(ranked.len(), m);
        for w in ranked.windows(2) {
            prop_assert!(
                w[0].load > w[1].load
                    || (w[0].load == w[1].load && w[0].machine.0 < w[1].machine.0),
                "not (load desc, id asc): {:?}",
                w
            );
        }
        for rm in &ranked {
            prop_assert_eq!(rm.load.to_bits(), park.outstanding(rm.machine, at).to_bits());
        }
    }
}
