//! Property tests for the online algorithms: Claim 1 (accepted jobs
//! always complete on time), commitment discipline, and structural
//! relations between the variants, on randomized job streams.

use cslack_algorithms::{
    ablation, Decision, GoldwasserKerbikov, Greedy, LeeClassify, OnlineScheduler, Threshold,
};
use cslack_kernel::{Job, JobId, MachineId, Time};
use proptest::prelude::*;

/// A random slack-respecting job stream in release order.
fn arb_stream(max_len: usize) -> impl Strategy<Value = (f64, Vec<Job>)> {
    (0.05f64..=1.0).prop_flat_map(move |eps| {
        prop::collection::vec((0.0f64..0.8, 0.1f64..3.0, 0.0f64..1.5), 1..max_len).prop_map(
            move |raw| {
                let mut t = 0.0;
                let jobs: Vec<Job> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, (gap, p, extra))| {
                        t += gap;
                        let d = t + (1.0 + eps + extra) * p;
                        Job::new(JobId(i as u32), Time::new(t), *p, Time::new(d))
                    })
                    .collect();
                (eps, jobs)
            },
        )
    })
}

/// Replays a stream through an algorithm, asserting the commitment
/// discipline job by job, and returns the accepted load.
fn replay(alg: &mut dyn OnlineScheduler, jobs: &[Job]) -> f64 {
    let m = alg.machines();
    let mut frontiers = vec![(Time::ZERO, u32::MAX); 0];
    frontiers.resize(m, (Time::ZERO, u32::MAX));
    let mut load = 0.0;
    for job in jobs {
        match alg.offer(job) {
            Decision::Accept { machine, start } => {
                assert!(machine.index() < m, "machine out of range");
                assert!(start.approx_ge(job.release), "{} starts early", job.id);
                assert!(
                    (start + job.proc_time).approx_le(job.deadline),
                    "{} misses its deadline",
                    job.id
                );
                let (frontier, last) = frontiers[machine.index()];
                assert!(
                    start.approx_ge(frontier),
                    "{} overlaps J{last} on {machine}",
                    job.id
                );
                frontiers[machine.index()] = (start + job.proc_time, job.id.0);
                load += job.proc_time;
            }
            Decision::Reject => {}
        }
    }
    load
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Claim 1 for the paper's algorithm on arbitrary machine counts.
    #[test]
    fn threshold_claim1((eps, jobs) in arb_stream(50), m in 1usize..=6) {
        let mut alg = Threshold::new(m, eps);
        replay(&mut alg, &jobs);
    }

    /// The same discipline holds for every baseline and ablation.
    #[test]
    fn all_variants_commit_feasibly((eps, jobs) in arb_stream(40), m in 1usize..=4) {
        let mut algs: Vec<Box<dyn OnlineScheduler>> = vec![
            Box::new(Greedy::new(m)),
            Box::new(LeeClassify::new(m, eps)),
            Box::new(ablation::forced_k(m, eps, 1)),
            Box::new(ablation::forced_k(m, eps, m)),
            Box::new(ablation::constant_factors(m, eps)),
            Box::new(ablation::worst_fit(m, eps)),
            Box::new(ablation::latest_start(m, eps)),
        ];
        for alg in algs.iter_mut() {
            replay(alg.as_mut(), &jobs);
        }
    }

    /// Greedy accepts a superset of Threshold's *load*? No — but greedy
    /// never rejects a job that is feasible on some machine, so its
    /// acceptance count is at least Threshold's on streams where
    /// Threshold's acceptances are also greedy-feasible... which is not
    /// guaranteed either. The robust relation: greedy accepts every job
    /// when the stream is so sparse that machines are always idle.
    #[test]
    fn greedy_accepts_everything_when_sparse(eps in 0.05f64..1.0, m in 1usize..=4) {
        // Jobs spaced far apart: every machine is idle at each release.
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::tight(JobId(i), Time::new(i as f64 * 100.0), 1.0, eps))
            .collect();
        let mut alg = Greedy::new(m);
        let load = replay(&mut alg, &jobs);
        prop_assert!((load - 10.0).abs() < 1e-9);
    }

    /// Threshold also accepts everything when the stream is sparse
    /// (outstanding loads are zero at each release => dlim = release).
    #[test]
    fn threshold_accepts_everything_when_sparse(eps in 0.05f64..1.0, m in 1usize..=4) {
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::tight(JobId(i), Time::new(i as f64 * 100.0), 1.0, eps))
            .collect();
        let mut alg = Threshold::new(m, eps);
        let load = replay(&mut alg, &jobs);
        prop_assert!((load - 10.0).abs() < 1e-9);
    }

    /// GK and Threshold(m = 1) are decision-identical on any stream.
    #[test]
    fn gk_matches_threshold_m1((eps, jobs) in arb_stream(50)) {
        let mut a = Threshold::new(1, eps);
        let mut b = GoldwasserKerbikov::new(eps);
        for job in &jobs {
            prop_assert_eq!(a.offer(job), b.offer(job));
        }
    }

    /// The incremental ladder ranking and the reference full sort are
    /// decision-identical on arbitrary streams — the refactor's key
    /// bit-identity guarantee, including threshold values and candidate
    /// counts, not just accept/reject.
    #[test]
    fn ranking_modes_are_decision_identical((eps, jobs) in arb_stream(50), m in 1usize..=8) {
        use cslack_algorithms::threshold::{RankingMode, ThresholdEngine, ThresholdPolicy};
        let mk = |ranking| ThresholdEngine::with_policy(
            "prop-mode",
            m,
            eps,
            ThresholdPolicy { ranking, ..ThresholdPolicy::default() },
        );
        let mut inc = mk(RankingMode::Incremental);
        let mut srt = mk(RankingMode::FullSort);
        for job in &jobs {
            prop_assert_eq!(inc.offer_explained(job), srt.offer_explained(job));
        }
        // And after a reset the streams stay locked together.
        inc.reset();
        srt.reset();
        for job in &jobs {
            prop_assert_eq!(inc.offer_explained(job), srt.offer_explained(job));
        }
    }

    /// Determinism: the same algorithm object, after reset, reproduces
    /// exactly the same decisions.
    #[test]
    fn reset_determinism((eps, jobs) in arb_stream(40), m in 1usize..=4) {
        let mut alg = Threshold::new(m, eps);
        let first: Vec<Decision> = jobs.iter().map(|j| alg.offer(j)).collect();
        alg.reset();
        let second: Vec<Decision> = jobs.iter().map(|j| alg.offer(j)).collect();
        prop_assert_eq!(first, second);
    }

    /// Threshold's acceptance is monotone in the deadline: if a job is
    /// accepted, the same job with a later deadline (same release/size)
    /// would also have passed the threshold test at that state.
    #[test]
    fn acceptance_monotone_in_deadline((eps, jobs) in arb_stream(30), m in 1usize..=4, bump in 0.1f64..5.0) {
        // Run two copies; feed one the original stream, the other the
        // same stream with one job's deadline extended. The extended
        // job, if the original was accepted, must still be accepted.
        for target in 0..jobs.len().min(5) {
            let mut a = Threshold::new(m, eps);
            let mut b = Threshold::new(m, eps);
            for (i, job) in jobs.iter().enumerate() {
                let da = a.offer(job);
                if i == target {
                    let mut easier = *job;
                    easier.deadline += bump;
                    let db = b.offer(&easier);
                    if da.is_accept() {
                        prop_assert!(db.is_accept(), "easier deadline got rejected");
                    }
                    break;
                } else {
                    let _ = b.offer(job);
                }
            }
        }
    }

    /// The machine-ranked threshold never depends on machine identity:
    /// permuting machine indices leaves accepted load unchanged (the
    /// algorithm is symmetric up to tie-breaking, and load is invariant).
    #[test]
    fn accepted_load_is_permutation_invariant((eps, jobs) in arb_stream(30)) {
        // Symmetry is exercised through LeeClassify's explicit machine
        // mapping vs Threshold's dynamic ranking: both must produce the
        // same accepted load when m = 1 (no choice at all).
        let mut t = Threshold::new(1, eps);
        let mut l = LeeClassify::new(1, eps);
        let lt = replay(&mut t, &jobs);
        let ll = replay(&mut l, &jobs);
        // With one machine Lee's reservation = greedy append; Threshold
        // gates by f_1. Threshold is never *above* Lee in acceptance
        // volume per decision... not a theorem; just check both ran and
        // loads are finite and bounded by the offered volume.
        let offered: f64 = jobs.iter().map(|j| j.proc_time).sum();
        prop_assert!(lt <= offered + 1e-9);
        prop_assert!(ll <= offered + 1e-9);
    }
}

#[test]
fn replay_harness_catches_overlaps() {
    // Self-test of the harness: a scheduler that overlaps must panic.
    struct Bad;
    impl OnlineScheduler for Bad {
        fn name(&self) -> &'static str {
            "bad"
        }
        fn machines(&self) -> usize {
            1
        }
        fn offer(&mut self, _job: &Job) -> Decision {
            Decision::Accept {
                machine: MachineId(0),
                start: Time::ZERO,
            }
        }
        fn reset(&mut self) {}
    }
    let jobs = vec![
        Job::new(JobId(0), Time::ZERO, 1.0, Time::new(10.0)),
        Job::new(JobId(1), Time::ZERO, 1.0, Time::new(10.0)),
    ];
    let result = std::panic::catch_unwind(|| {
        let mut bad = Bad;
        replay(&mut bad, &jobs);
    });
    assert!(result.is_err(), "harness must catch the overlap");
}
