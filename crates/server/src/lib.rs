//! `cslack-server`: the network-facing admission service.
//!
//! The paper's model is inherently a service: jobs arrive over the wire
//! from untrusted clients and must receive an irrevocable admit/reject
//! answer at submission. This crate puts a framed-TCP front end
//! ([`proto`]) on the sharded [`Engine`], with:
//!
//! * **per-tenant namespaces** — each tenant gets its own engine (own
//!   `m`, `eps`, shard count, algorithm, seed), its own
//!   [`MetricsRegistry`], flight recorder, and in-flight quota, so one
//!   tenant's overload or shard failure never touches another's
//!   decision stream;
//! * **streaming decisions** — submissions and decisions flow on the
//!   same connection as independent streams: a client may keep
//!   submitting while earlier decisions are still in flight, and each
//!   [`proto::Frame::Decision`] carries `(shard, seq)` so the
//!   deterministic per-shard order is reconstructible;
//! * **typed pushback** — a full quota is a
//!   [`proto::Frame::Backpressure`] frame, a dead shard a typed
//!   [`proto::Frame::Reject`], never a dropped connection;
//! * **graceful drain** — [`proto::Frame::Drain`] finishes the
//!   tenant's engine, converts still-queued jobs to typed `Undecided`
//!   rejections, and streams the final schedule summary;
//! * **telemetry** — one HTTP listener for the whole process serves
//!   `/metrics` (all tenants, `tenant`-labeled), `/healthz`, and
//!   `/flight/snapshot?tenant=...` (live while running, the final
//!   snapshot after drain — still replayable with `cslack replay`).

pub mod client;
pub mod loadgen;
pub mod proto;

use crossbeam::channel::{unbounded, Receiver, Sender};
use cslack_engine::{
    Engine, EngineConfig, FlightConfig, IngestConfig, ObsConfig, ObservatoryConfig, ShardState,
    SubmitError,
};
use cslack_kernel::{Job, JobId, Time};
use cslack_obs::flight::StampedDecision;
use cslack_obs::timeline::{ClockBase, Stage, TimelineStamps};
use cslack_obs::MetricsRegistry;
use cslack_sim::fault::{FaultSpec, FaultyScheduler};
use cslack_sim::sweep::AlgoKind;
use parking_lot::{Mutex, RwLock};
use proto::{Frame, ProtoError, RejectCode, TenantStats, TenantSummary};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One tenant's namespace configuration.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant name (the `Hello` key).
    pub name: String,
    /// Machines in the tenant's cluster.
    pub m: usize,
    /// System slack `eps` the tenant's schedulers are built with.
    pub eps: f64,
    /// Engine shard count.
    pub shards: usize,
    /// Admission algorithm.
    pub algo: AlgoKind,
    /// Base RNG seed (shard `s` derives `seed + s`).
    pub seed: u64,
    /// Maximum undecided jobs in flight; a batch that would exceed it
    /// is refused whole with a `Backpressure` frame.
    pub inflight_limit: usize,
    /// Per-shard flight-recorder ring capacity (records).
    pub flight_capacity: usize,
    /// Engine shard-queue capacity (messages).
    pub queue_capacity: usize,
    /// Engine per-wakeup batch size.
    pub batch_size: usize,
    /// Ingestion plane: transport (ring vs legacy channel), ring
    /// capacity override, and worker CPU pinning.
    pub ingest: IngestConfig,
    /// Chaos hook: wrap shard 0's scheduler in a
    /// [`FaultyScheduler`] with this spec.
    pub fault: Option<FaultSpec>,
    /// Shard resurrection: run a watcher that replays and restarts any
    /// failed shard ([`Engine::restart_shard`]), and answer submissions
    /// that hit a failed shard with a transient [`Frame::Retry`]
    /// instead of a terminal `ShardFailed` reject. When set, an
    /// injected `fault` fires only on the shard's *first* scheduler
    /// build, so the replay and the replacement run clean.
    pub recover: bool,
    /// Quality-observatory knobs; every tenant runs one by default
    /// (their engines always record flight), so `/metrics` carries
    /// tenant-labeled `cslack_empirical_ratio` gauges. `None` disables.
    pub observatory: Option<ObservatoryConfig>,
}

impl TenantSpec {
    /// A tenant with default engine sizing: single shard, threshold
    /// algorithm, seed 0, in-flight quota 4096.
    pub fn new(name: impl Into<String>, m: usize, eps: f64) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            m,
            eps,
            shards: 1,
            algo: AlgoKind::Threshold,
            seed: 0,
            inflight_limit: 4096,
            flight_capacity: 1 << 16,
            queue_capacity: 1024,
            batch_size: 64,
            ingest: IngestConfig::default(),
            fault: None,
            recover: false,
            // 16 release-time units per window: tens of jobs per
            // window at the default Poisson(m) arrival rate — enough
            // signal per window, many windows per run.
            observatory: Some(ObservatoryConfig::new(16.0)),
        }
    }

    /// Parses the CLI tenant syntax
    /// `name:m:eps[:algo[:shards[:seed]]]`, e.g. `alpha:4:0.5` or
    /// `beta:8:0.25:greedy:2:7`.
    pub fn parse(s: &str) -> Result<TenantSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 3 || parts.len() > 6 {
            return Err(format!(
                "tenant spec `{s}` is not of the form name:m:eps[:algo[:shards[:seed]]]"
            ));
        }
        if parts[0].is_empty() {
            return Err(format!("tenant spec `{s}` has an empty name"));
        }
        let m: usize = parts[1]
            .parse()
            .map_err(|e| format!("tenant `{}`: bad m `{}`: {e}", parts[0], parts[1]))?;
        let eps: f64 = parts[2]
            .parse()
            .map_err(|e| format!("tenant `{}`: bad eps `{}`: {e}", parts[0], parts[2]))?;
        let mut spec = TenantSpec::new(parts[0], m, eps);
        if let Some(name) = parts.get(3) {
            spec.algo = AlgoKind::parse(name)
                .ok_or_else(|| format!("tenant `{}`: unknown algorithm `{name}`", parts[0]))?;
        }
        if let Some(raw) = parts.get(4) {
            spec.shards = raw
                .parse()
                .map_err(|e| format!("tenant `{}`: bad shards `{raw}`: {e}", parts[0]))?;
        }
        if let Some(raw) = parts.get(5) {
            spec.seed = raw
                .parse()
                .map_err(|e| format!("tenant `{}`: bad seed `{raw}`: {e}", parts[0]))?;
        }
        Ok(spec)
    }
}

/// Server wiring: where to listen and which tenants to host.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Admission protocol listen address (port 0 for ephemeral).
    pub listen: SocketAddr,
    /// Telemetry HTTP listen address; `None` disables the listener.
    pub telemetry: Option<SocketAddr>,
    /// The hosted tenants. Names must be unique.
    pub tenants: Vec<TenantSpec>,
}

/// What a completed drain leaves behind: the summary frame content and
/// the final flight snapshot (still served over `/flight/snapshot`).
#[derive(Clone)]
struct DrainOutcome {
    summary: TenantSummary,
    cfr: Option<Vec<u8>>,
}

/// One hosted tenant: its engine, decision dispatcher, pending map,
/// and metrics.
struct Tenant {
    spec: TenantSpec,
    registry: Arc<MetricsRegistry>,
    /// `None` once drained. Submissions take the read lock; drain takes
    /// the write lock and consumes the engine.
    engine: RwLock<Option<Engine>>,
    /// Undecided jobs → the outbox of the connection that submitted
    /// them. Doubles as the in-flight quota gauge.
    pending: Arc<Mutex<HashMap<u32, Sender<Frame>>>>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    done: Mutex<Option<DrainOutcome>>,
    /// The shard-resurrection watcher (`spec.recover`), stopped and
    /// joined before drain so it never races the engine take-down.
    watcher: Mutex<Option<JoinHandle<()>>>,
    watcher_stop: Arc<AtomicBool>,
}

impl Tenant {
    fn start(spec: TenantSpec, clock: Arc<ClockBase>) -> Result<Arc<Tenant>, String> {
        let registry = Arc::new(MetricsRegistry::enabled());
        let (decision_tx, decision_rx) = unbounded::<StampedDecision>();
        let obs = ObsConfig {
            registry: Some(Arc::clone(&registry)),
            flight: Some(FlightConfig::new(
                spec.flight_capacity,
                spec.algo.as_str(),
                spec.eps,
                spec.seed,
            )),
            decisions: Some(decision_tx),
            observatory: spec.observatory.clone(),
            // Every tenant stamps on the process-wide clock so
            // cross-tenant timelines share one axis.
            clock: Some(Arc::clone(&clock)),
            ..ObsConfig::default()
        };
        let mut config = EngineConfig::new(spec.shards);
        config.queue_capacity = spec.queue_capacity;
        config.batch_size = spec.batch_size;
        let (algo, eps, seed, fault) = (spec.algo, spec.eps, spec.seed, spec.fault);
        // With recovery on, the injected fault is one-shot: the *first*
        // build of shard 0 gets the faulty wrapper, and the rebuilds
        // recovery performs (the replay scheduler, which becomes the
        // replacement) come out clean — otherwise the replay would
        // re-fire the fault at the same offer index.
        let armed = Arc::new(AtomicBool::new(true));
        let recover = spec.recover;
        let engine =
            Engine::start_with_ingest(spec.m, config, spec.ingest, obs, move |shard, group| {
                let inner = algo.build(group, eps, seed.wrapping_add(shard as u64));
                // Chaos targets shard 0 only, so a degraded tenant still
                // has healthy shards to demonstrate isolation with.
                match fault {
                    Some(spec)
                        if shard == 0 && (!recover || armed.swap(false, Ordering::SeqCst)) =>
                    {
                        Box::new(FaultyScheduler::new(inner, spec))
                    }
                    _ => inner,
                }
            })
            .map_err(|e| format!("tenant `{}`: {e}", spec.name))?;
        let pending: Arc<Mutex<HashMap<u32, Sender<Frame>>>> = Arc::new(Mutex::new(HashMap::new()));
        let dispatcher = {
            let pending = Arc::clone(&pending);
            let clock = Arc::clone(&clock);
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name(format!("cslack-dispatch-{}", spec.name))
                .spawn(move || {
                    // Runs until the engine drops its sender (finish or
                    // teardown). Events arrive in per-shard (shard,
                    // seq) order; routing preserves it per connection.
                    for mut event in decision_rx.iter() {
                        // The engine stamped delivery at decide time
                        // (its best in-process estimate); route time is
                        // the real delivery hop, so overwrite it here
                        // and feed the span histogram — the worker
                        // deliberately leaves that slot to us.
                        event.stamps.set(Stage::Delivery, clock.now_ns());
                        if let Some(ns) = event.stamps.span(Stage::Decide, Stage::Delivery) {
                            // STAGE_SPANS[4] is decide -> delivery.
                            registry.stage_durations[4].record(ns);
                            registry.windows.record_stage(4, ns);
                        }
                        let outbox = pending.lock().remove(&event.job);
                        if let Some(tx) = outbox {
                            // A closed outbox means the submitting
                            // connection is gone; the decision stands
                            // (commitment is irrevocable), only the
                            // notification is dropped.
                            let _ = tx.send(Frame::Decision(event));
                        }
                    }
                })
                .map_err(|e| format!("tenant `{}`: spawn dispatcher: {e}", spec.name))?
        };
        let tenant = Arc::new(Tenant {
            spec,
            registry,
            engine: RwLock::new(Some(engine)),
            pending,
            dispatcher: Mutex::new(Some(dispatcher)),
            done: Mutex::new(None),
            watcher: Mutex::new(None),
            watcher_stop: Arc::new(AtomicBool::new(false)),
        });
        if tenant.spec.recover {
            let weak = Arc::downgrade(&tenant);
            let stop = Arc::clone(&tenant.watcher_stop);
            let join = std::thread::Builder::new()
                .name(format!("cslack-recover-{}", tenant.spec.name))
                .spawn(move || recovery_watcher(weak, stop))
                .map_err(|e| format!("spawn recovery watcher: {e}"))?;
            *tenant.watcher.lock() = Some(join);
        }
        Ok(tenant)
    }

    /// Stops and joins the resurrection watcher (idempotent). Must run
    /// before the engine is taken for drain so the watcher cannot race
    /// the take-down with a restart.
    fn stop_watcher(&self) {
        self.watcher_stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.watcher.lock().take() {
            let _ = join.join();
        }
    }

    /// Admits (or refuses) one `SubmitBatch`. Returns the frames to
    /// queue on the submitting connection's outbox *now* — per-job
    /// `Reject`s and batch-level `Backpressure`; decisions arrive
    /// later via the dispatcher. `stamps` carries the client-send and
    /// frame-decode stamps the connection reader took; the dispatch
    /// stamp is added here, right before the engine hand-off.
    fn handle_batch(
        &self,
        outbox: &Sender<Frame>,
        jobs: &[proto::WireJob],
        mut stamps: TimelineStamps,
    ) -> Vec<Frame> {
        let mut replies = Vec::new();
        if jobs.is_empty() {
            replies.push(Frame::Reject {
                job: None,
                code: RejectCode::Malformed,
                detail: "empty batch".into(),
            });
            return replies;
        }
        let mut valid: Vec<Job> = Vec::with_capacity(jobs.len());
        {
            let mut pending = self.pending.lock();
            if pending.len() + jobs.len() > self.spec.inflight_limit {
                replies.push(Frame::Backpressure {
                    inflight: pending.len() as u32,
                    limit: self.spec.inflight_limit as u32,
                    refused: jobs.len() as u32,
                });
                return replies;
            }
            for job in jobs {
                if let Some(why) = validate_job(job) {
                    replies.push(Frame::Reject {
                        job: Some(job.id),
                        code: RejectCode::Malformed,
                        detail: why.into(),
                    });
                } else if let std::collections::hash_map::Entry::Vacant(slot) =
                    pending.entry(job.id)
                {
                    slot.insert(outbox.clone());
                    valid.push(Job::new(
                        JobId(job.id),
                        Time::new(job.release),
                        job.proc_time,
                        Time::new(job.deadline),
                    ));
                } else {
                    replies.push(Frame::Reject {
                        job: Some(job.id),
                        code: RejectCode::DuplicateJob,
                        detail: "job id already in flight".into(),
                    });
                }
            }
        }
        if valid.is_empty() {
            return replies;
        }
        let guard = self.engine.read();
        match guard.as_ref() {
            Some(engine) => {
                stamps.set(Stage::Dispatch, engine.clock().now_ns());
                // The compact path: the all-enqueued case (every batch
                // in steady state) returns a count and never allocates;
                // only actual failures materialize as errors, each
                // carrying its job back to us.
                let mut failures = Vec::new();
                engine.submit_batch_stamped_into(&valid, stamps, &mut failures);
                if !failures.is_empty() {
                    let mut pending = self.pending.lock();
                    for err in failures {
                        // The job never reached a queue; the decision
                        // stream will not answer for it.
                        let reply = match err {
                            // While resurrection is in flight the
                            // failure is transient: the client should
                            // resubmit, not write the job off.
                            SubmitError::ShardFailed(job) if self.spec.recover => {
                                pending.remove(&job.id.0);
                                Frame::Retry { job: job.id.0 }
                            }
                            SubmitError::ShardFailed(job) => {
                                pending.remove(&job.id.0);
                                Frame::Reject {
                                    job: Some(job.id.0),
                                    code: RejectCode::ShardFailed,
                                    detail: "not enqueued".into(),
                                }
                            }
                            SubmitError::Full(job) | SubmitError::Closed(job) => {
                                pending.remove(&job.id.0);
                                Frame::Reject {
                                    job: Some(job.id.0),
                                    code: RejectCode::Closed,
                                    detail: "not enqueued".into(),
                                }
                            }
                        };
                        replies.push(reply);
                    }
                }
            }
            None => {
                // Drained between quota check and submit. The drain
                // sweep may have answered some of these already with
                // `Undecided`; only reject the ones still ours.
                let mut pending = self.pending.lock();
                for job in &valid {
                    if pending.remove(&job.id.0).is_some() {
                        replies.push(Frame::Reject {
                            job: Some(job.id.0),
                            code: RejectCode::Closed,
                            detail: "tenant drained".into(),
                        });
                    }
                }
            }
        }
        replies
    }

    /// Live counters for a `Stats` frame.
    fn stats(&self) -> TenantStats {
        TenantStats {
            tenant: self.spec.name.clone(),
            submitted: self.registry.submitted.get(),
            accepted: self.registry.accepted.get(),
            rejected: self.registry.reject_counts().total(),
            backpressure_stalls: self.registry.backpressure_stalls.get(),
            inflight: self.pending.lock().len() as u32,
            drained: self.engine.read().is_none(),
        }
    }

    fn is_drained(&self) -> bool {
        self.done.lock().is_some()
    }

    /// Finishes the tenant's engine and returns the final summary. The
    /// first caller performs the drain; concurrent callers wait for its
    /// outcome. Queued-but-undecided jobs are answered with typed
    /// `Undecided` rejections through their submitting connections.
    fn drain(&self) -> DrainOutcome {
        // The watcher must be gone before the engine is: a restart
        // racing the drain would resurrect a shard the drain is about
        // to join.
        self.stop_watcher();
        let engine = self.engine.write().take();
        let Some(engine) = engine else {
            // Another connection is draining (or already drained):
            // wait for its outcome rather than inventing a second one.
            loop {
                if let Some(outcome) = self.done.lock().clone() {
                    return outcome;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        };
        let report = engine.finish();
        // `finish` dropped the decision sender, so the dispatcher is
        // past its last event once joined — after this, `pending`
        // holds exactly the never-decided jobs.
        if let Some(join) = self.dispatcher.lock().take() {
            let _ = join.join();
        }
        let leftovers: Vec<(u32, Sender<Frame>)> = self.pending.lock().drain().collect();
        for (id, tx) in leftovers {
            let _ = tx.send(Frame::Reject {
                job: Some(id),
                code: RejectCode::Undecided,
                detail: "tenant drained before this job was decided".into(),
            });
        }
        let outcome = match report {
            Ok(report) => DrainOutcome {
                summary: TenantSummary {
                    tenant: self.spec.name.clone(),
                    submitted: report.metrics.submitted,
                    accepted: report.metrics.accepted,
                    rejected: report.metrics.rejected,
                    accepted_load: report.metrics.accepted_load,
                    makespan: report.schedule.makespan().raw(),
                    machines: self.spec.m as u32,
                    failed_shards: report.degraded.len() as u32,
                },
                cfr: report.flight.map(|snap| {
                    let mut bytes = Vec::new();
                    let _ = snap.write_cfr(&mut bytes);
                    bytes
                }),
            },
            // Every shard died: an all-zero summary that still admits
            // the truth through `failed_shards`.
            Err(_) => DrainOutcome {
                summary: TenantSummary {
                    tenant: self.spec.name.clone(),
                    submitted: self.registry.submitted.get(),
                    accepted: self.registry.accepted.get(),
                    rejected: self.registry.reject_counts().total(),
                    accepted_load: 0.0,
                    makespan: 0.0,
                    machines: self.spec.m as u32,
                    failed_shards: self.spec.shards as u32,
                },
                cfr: None,
            },
        };
        *self.done.lock() = Some(outcome.clone());
        outcome
    }

    /// The current flight snapshot as `.cfr` bytes: live from the
    /// engine while running, the cached final snapshot after drain.
    fn flight_cfr(&self) -> Option<Vec<u8>> {
        if let Some(engine) = self.engine.read().as_ref() {
            return engine.flight_snapshot().map(|snap| {
                let mut bytes = Vec::new();
                let _ = snap.write_cfr(&mut bytes);
                bytes
            });
        }
        self.done.lock().as_ref().and_then(|d| d.cfr.clone())
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        // Tear down in dependency order: the watcher first (it reads
        // the engine), then the engine — dropping it closes the
        // decision channel, which lets the dispatcher exit for the
        // join. Without the join the dispatcher could outlive the
        // process's other state.
        self.stop_watcher();
        drop(self.engine.write().take());
        if let Some(join) = self.dispatcher.lock().take() {
            let _ = join.join();
        }
    }
}

/// The shard-resurrection loop of a `recover`-enabled tenant: polls
/// the engine's health table and replays/restarts any failed shard.
/// Holds only a `Weak` on the tenant so it never keeps a dropped
/// tenant alive; exits when the tenant is gone, drained, or stopped.
fn recovery_watcher(tenant: std::sync::Weak<Tenant>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(POLL);
        let Some(tenant) = tenant.upgrade() else {
            return;
        };
        let guard = tenant.engine.read();
        let Some(engine) = guard.as_ref() else {
            return;
        };
        for h in engine.health() {
            if h.state == ShardState::Failed {
                // A refused restart (lossy recording, replay
                // divergence) parks the shard for good; the next poll
                // sees it still failed and the retry is a cheap
                // typed error, not a spin.
                let _ = engine.restart_shard(h.shard);
            }
        }
    }
}

/// Server-side sanity check on a wire job. `Time::new` would panic on
/// NaN and the schedulers assume positive processing times, so an
/// untrusted submitter must not get these values past the boundary.
fn validate_job(job: &proto::WireJob) -> Option<&'static str> {
    if !job.release.is_finite() || !job.proc_time.is_finite() || !job.deadline.is_finite() {
        Some("non-finite job field")
    } else if job.proc_time <= 0.0 {
        Some("processing time must be positive")
    } else if job.deadline < job.release {
        Some("deadline precedes release")
    } else {
        None
    }
}

struct ServerInner {
    tenants: BTreeMap<String, Arc<Tenant>>,
    /// The process-wide monotonic stamp clock every tenant engine and
    /// connection reader shares.
    clock: Arc<ClockBase>,
}

/// The running admission service. Dropping the handle stops the accept
/// and telemetry loops and joins every connection thread; tenant
/// engines still running are torn down by their `Drop`.
pub struct Server {
    inner: Arc<ServerInner>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    telemetry_addr: Option<SocketAddr>,
    accept_join: Option<JoinHandle<()>>,
    telemetry_join: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listeners, starts every tenant's engine, and begins
    /// accepting connections.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        cslack_obs::metrics::mark_process_start();
        let clock = Arc::new(ClockBase::new());
        let mut tenants = BTreeMap::new();
        for spec in &config.tenants {
            if tenants.contains_key(&spec.name) {
                return Err(format!("duplicate tenant name `{}`", spec.name));
            }
            tenants.insert(
                spec.name.clone(),
                Tenant::start(spec.clone(), Arc::clone(&clock))?,
            );
        }
        if tenants.is_empty() {
            return Err("a server needs at least one tenant".into());
        }
        let inner = Arc::new(ServerInner { tenants, clock });
        let stop = Arc::new(AtomicBool::new(false));
        let listener =
            TcpListener::bind(config.listen).map_err(|e| format!("bind {}: {e}", config.listen))?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let accept_join = std::thread::Builder::new()
            .name("cslack-accept".into())
            .spawn({
                let inner = Arc::clone(&inner);
                let stop = Arc::clone(&stop);
                move || accept_loop(listener, inner, stop)
            })
            .map_err(|e| e.to_string())?;
        let (telemetry_addr, telemetry_join) = match config.telemetry {
            Some(bind) => {
                let listener =
                    TcpListener::bind(bind).map_err(|e| format!("bind telemetry {bind}: {e}"))?;
                listener.set_nonblocking(true).map_err(|e| e.to_string())?;
                let local = listener.local_addr().map_err(|e| e.to_string())?;
                let join = std::thread::Builder::new()
                    .name("cslack-server-telemetry".into())
                    .spawn({
                        let inner = Arc::clone(&inner);
                        let stop = Arc::clone(&stop);
                        move || telemetry_loop(listener, inner, stop)
                    })
                    .map_err(|e| e.to_string())?;
                (Some(local), Some(join))
            }
            None => (None, None),
        };
        Ok(Server {
            inner,
            stop,
            addr,
            telemetry_addr,
            accept_join: Some(accept_join),
            telemetry_join: Some(telemetry_join).flatten(),
        })
    }

    /// The bound admission protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound telemetry HTTP address, if configured.
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.telemetry_addr
    }

    /// Whether every hosted tenant has been drained.
    pub fn all_drained(&self) -> bool {
        self.inner.tenants.values().all(|t| t.is_drained())
    }

    /// Drains every tenant that is still running (process shutdown
    /// path; protocol clients drain their own tenant with a `Drain`
    /// frame).
    pub fn drain_all(&self) {
        for tenant in self.inner.tenants.values() {
            tenant.drain();
        }
    }

    /// Stops the accept and telemetry loops and joins them (each joins
    /// its own worker threads first). Engines still running are left to
    /// tenant teardown on drop.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        if let Some(join) = self.telemetry_join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

const POLL: Duration = Duration::from_millis(10);

fn accept_loop(listener: TcpListener, inner: Arc<ServerInner>, stop: Arc<AtomicBool>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id = 0usize;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(&inner);
                let stop = Arc::clone(&stop);
                let join = std::thread::Builder::new()
                    .name(format!("cslack-conn-{next_id}"))
                    .spawn(move || handle_connection(stream, inner, stop));
                next_id += 1;
                if let Ok(join) = join {
                    connections.push(join);
                }
                // Opportunistically reap finished connections so a
                // long-lived server does not accumulate handles.
                connections.retain(|j| !j.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for join in connections {
        let _ = join.join();
    }
}

/// Reader half of one client connection. The writer half is a
/// dedicated thread draining the connection's outbox channel, so
/// decision routing (dispatcher), submit replies (this thread), and
/// summaries all serialize through one stream writer.
fn handle_connection(stream: TcpStream, inner: Arc<ServerInner>, stop: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut tenant: Option<Arc<Tenant>> = None;
    let mut outbox: Option<Sender<Frame>> = None;
    let mut writer_join: Option<JoinHandle<()>> = None;
    // Echo the peer's protocol version on everything we send; latched
    // from each successfully decoded frame (a v1 client keeps getting
    // v1 answers).
    let mut peer_version = proto::VERSION;
    // Answers before the outbox exists (pre-`Hello` errors) are
    // written straight to the stream; afterwards everything goes
    // through the outbox to keep a single writer.
    let mut direct = stream.try_clone().ok();
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // Idle-poll for the first byte so the stop flag is honoured on
        // quiet connections; once a frame has started, `read_frame`
        // reads it through.
        let mut probe = [0u8; 1];
        match reader.peek(&mut probe) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        let frame = match proto::read_frame_v(&mut reader) {
            Ok((version, frame)) => {
                peer_version = version;
                frame
            }
            Err(ProtoError::Eof) => break,
            Err(e) => {
                let reject = Frame::Reject {
                    job: None,
                    code: RejectCode::Protocol,
                    detail: e.to_string(),
                };
                match (&outbox, &mut direct) {
                    (Some(tx), _) => {
                        let _ = tx.send(reject);
                    }
                    (None, Some(w)) => {
                        let _ = proto::write_frame_v(w, &reject, peer_version);
                    }
                    _ => {}
                }
                if e.is_fatal() {
                    break;
                }
                continue;
            }
        };
        // Stage stamp: the frame is fully decoded at this instant. One
        // clock read per frame, used only by SubmitBatch.
        let frame_decode_ns = inner.clock.now_ns();
        match frame {
            Frame::Hello { tenant: name } => {
                if tenant.is_some() {
                    if let Some(tx) = &outbox {
                        let _ = tx.send(Frame::Reject {
                            job: None,
                            code: RejectCode::BadState,
                            detail: "connection already bound to a tenant".into(),
                        });
                    }
                    continue;
                }
                let Some(found) = inner.tenants.get(&name) else {
                    if let Some(w) = &mut direct {
                        let _ = proto::write_frame(
                            w,
                            &Frame::Reject {
                                job: None,
                                code: RejectCode::UnknownTenant,
                                detail: format!("no tenant `{name}` on this server"),
                            },
                        );
                    }
                    break;
                };
                let (tx, rx) = unbounded::<Frame>();
                let Some(write_stream) = direct.take() else {
                    break;
                };
                let writer_version = peer_version;
                writer_join = std::thread::Builder::new()
                    .name("cslack-conn-writer".into())
                    .spawn(move || writer_loop(write_stream, rx, writer_version))
                    .ok();
                let spec = &found.spec;
                let _ = tx.send(Frame::HelloAck {
                    tenant: spec.name.clone(),
                    m: spec.m as u32,
                    eps: spec.eps,
                    shards: spec.shards as u32,
                    seed: spec.seed,
                    algorithm: spec.algo.as_str().into(),
                    inflight_limit: spec.inflight_limit as u32,
                });
                tenant = Some(Arc::clone(found));
                outbox = Some(tx);
            }
            Frame::SubmitBatch {
                jobs,
                client_send_ns,
            } => match (&tenant, &outbox) {
                (Some(tenant), Some(tx)) => {
                    let mut stamps = TimelineStamps::empty();
                    // The client stamp stays in the client's clock
                    // domain; it is carried verbatim, never compared
                    // to server stamps.
                    stamps.set(Stage::ClientSend, client_send_ns);
                    stamps.set(Stage::FrameDecode, frame_decode_ns);
                    for reply in tenant.handle_batch(tx, &jobs, stamps) {
                        let _ = tx.send(reply);
                    }
                }
                _ => break, // submit before Hello: unrecoverable misuse
            },
            Frame::StatsRequest => match (&tenant, &outbox) {
                (Some(tenant), Some(tx)) => {
                    let _ = tx.send(Frame::Stats(tenant.stats()));
                }
                _ => break,
            },
            Frame::Drain => match (&tenant, &outbox) {
                (Some(tenant), Some(tx)) => {
                    let outcome = tenant.drain();
                    let _ = tx.send(Frame::Summary(outcome.summary));
                }
                _ => break,
            },
            // Server-to-client frames arriving at the server are a
            // protocol misuse, answered in place (recoverable: framing
            // is still in sync).
            Frame::HelloAck { .. }
            | Frame::Decision(_)
            | Frame::Backpressure { .. }
            | Frame::Reject { .. }
            | Frame::Stats(_)
            | Frame::Summary(_)
            | Frame::Retry { .. } => {
                if let Some(tx) = &outbox {
                    let _ = tx.send(Frame::Reject {
                        job: None,
                        code: RejectCode::BadState,
                        detail: "server-to-client frame sent to server".into(),
                    });
                }
            }
        }
    }
    // Drop our sender; the writer drains whatever is queued (including
    // decisions for still-inflight jobs routed by the dispatcher, which
    // holds outbox clones in the pending map) and exits when the last
    // sender is gone.
    drop(outbox);
    drop(tenant);
    if let Some(join) = writer_join {
        let _ = join.join();
    }
}

/// Writer half of one connection: drains the outbox, batches writes,
/// flushes when the queue momentarily empties. Frames go out in the
/// protocol version the client's `Hello` arrived with.
fn writer_loop(stream: TcpStream, rx: Receiver<Frame>, version: u8) {
    let mut w = BufWriter::new(stream);
    'outer: while let Ok(frame) = rx.recv() {
        if proto::write_frame_v(&mut w, &frame, version).is_err() {
            break;
        }
        while let Ok(more) = rx.try_recv() {
            if proto::write_frame_v(&mut w, &more, version).is_err() {
                break 'outer;
            }
        }
        if w.flush().is_err() {
            break;
        }
    }
    let _ = w.flush();
}

// ---------------------------------------------------------------------
// Telemetry HTTP
// ---------------------------------------------------------------------

/// How long a rendered `/metrics` page is reused before the multi-
/// tenant exposition is rebuilt; scrape storms pay one render per TTL.
const SCRAPE_CACHE_TTL: Duration = Duration::from_millis(250);

/// The `/metrics` page cache. The telemetry thread serves connections
/// inline, so plain mutable state suffices.
///
/// Besides the TTL, the cache keys on the combined health *generation*
/// of every hosted tenant: any shard transition (fail, recover, drain)
/// changes the key and forces a re-render, so a page rendered before a
/// failure — or before a recovery bumped `cslack_shard_restarts_total`
/// — is never served after it.
struct ScrapeCache {
    page: Vec<u8>,
    rendered_at: Option<Instant>,
    generation: u64,
}

impl ScrapeCache {
    fn page(&mut self, generation: u64, render: impl FnOnce() -> Vec<u8>) -> Vec<u8> {
        let fresh = self
            .rendered_at
            .is_some_and(|at| at.elapsed() < SCRAPE_CACHE_TTL)
            && self.generation == generation;
        if !fresh {
            self.page = render();
            self.rendered_at = Some(Instant::now());
            self.generation = generation;
        }
        self.page.clone()
    }
}

/// The combined cache key: every tenant's health generation (offset by
/// one so the drained state differs from a fresh generation-zero
/// engine), summed — any single transition anywhere changes the sum.
fn health_generation_sum(inner: &ServerInner) -> u64 {
    inner
        .tenants
        .values()
        .map(|t| {
            t.engine
                .read()
                .as_ref()
                .map(|e| e.health_generation().wrapping_add(1))
                .unwrap_or(0)
        })
        .fold(0u64, u64::wrapping_add)
}

fn telemetry_loop(listener: TcpListener, inner: Arc<ServerInner>, stop: Arc<AtomicBool>) {
    let mut cache = ScrapeCache {
        page: Vec::new(),
        rendered_at: None,
        generation: 0,
    };
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_http(stream, &inner, &mut cache);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn serve_http(
    mut stream: TcpStream,
    inner: &ServerInner,
    cache: &mut ScrapeCache,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while head.len() < 8192 {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let target = request.split_whitespace().nth(1).unwrap_or("/").to_string();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let (status, content_type, body): (&str, &str, Vec<u8>) = match path {
        "/metrics" => {
            // One multi-tenant page is one scrape, cached or not — the
            // counter tracks client demand, the cache bounds renders.
            cslack_obs::metrics::count_scrape();
            let body = cache.page(health_generation_sum(inner), || {
                let mut out = String::new();
                for (name, tenant) in &inner.tenants {
                    tenant
                        .registry
                        .render_prometheus_into(&mut out, &[("tenant", name)]);
                }
                // Process-wide families (build info, uptime, scrape
                // count) render once per page, not once per tenant.
                cslack_obs::metrics::render_process_lines(&mut out);
                out.into_bytes()
            });
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
        }
        "/healthz" => {
            let mut any_failed = false;
            let mut body = String::new();
            for (name, tenant) in &inner.tenants {
                match tenant.engine.read().as_ref() {
                    Some(engine) => {
                        for h in engine.health() {
                            if h.state == ShardState::Failed {
                                any_failed = true;
                            }
                            body.push_str(&format!(
                                "tenant {name} shard {} {} heartbeat_ns {}\n",
                                h.shard,
                                h.state.as_str(),
                                h.heartbeat_ns
                            ));
                        }
                    }
                    None => body.push_str(&format!("tenant {name} drained\n")),
                }
            }
            let status = if any_failed {
                "503 Service Unavailable"
            } else {
                "200 OK"
            };
            let mut page = String::from(if any_failed { "degraded\n" } else { "ok\n" });
            page.push_str(&body);
            (status, "text/plain; charset=utf-8", page.into_bytes())
        }
        "/flight/snapshot" => {
            let wanted = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("tenant="))
                .map(str::to_string);
            let tenant = match &wanted {
                Some(name) => inner.tenants.get(name),
                // Unambiguous when the server hosts a single tenant.
                None if inner.tenants.len() == 1 => inner.tenants.values().next(),
                None => None,
            };
            match tenant.and_then(|t| t.flight_cfr()) {
                Some(bytes) => ("200 OK", "application/octet-stream", bytes),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    b"no such tenant or no flight snapshot (multi-tenant servers need ?tenant=NAME)\n"
                        .to_vec(),
                ),
            }
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            b"not found\n".to_vec(),
        ),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(&body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_spec_parse_round_trips_the_syntax() {
        let spec = TenantSpec::parse("alpha:4:0.5").unwrap();
        assert_eq!(spec.name, "alpha");
        assert_eq!(spec.m, 4);
        assert_eq!(spec.eps, 0.5);
        assert_eq!(spec.algo, AlgoKind::Threshold);
        assert_eq!(spec.shards, 1);
        let spec = TenantSpec::parse("beta:8:0.25:greedy:2:7").unwrap();
        assert_eq!(spec.algo, AlgoKind::Greedy);
        assert_eq!(spec.shards, 2);
        assert_eq!(spec.seed, 7);
        assert!(TenantSpec::parse("alpha").is_err());
        assert!(TenantSpec::parse(":4:0.5").is_err());
        assert!(TenantSpec::parse("x:4:0.5:nope").is_err());
    }

    #[test]
    fn validate_job_guards_the_boundary() {
        let ok = proto::WireJob {
            id: 0,
            release: 0.0,
            proc_time: 1.0,
            deadline: 2.0,
        };
        assert!(validate_job(&ok).is_none());
        for bad in [
            proto::WireJob {
                proc_time: 0.0,
                ..ok
            },
            proto::WireJob {
                proc_time: -1.0,
                ..ok
            },
            proto::WireJob {
                release: f64::NAN,
                ..ok
            },
            proto::WireJob {
                deadline: f64::INFINITY,
                ..ok
            },
            proto::WireJob {
                deadline: -1.0,
                ..ok
            },
        ] {
            assert!(validate_job(&bad).is_some(), "{bad:?}");
        }
    }
}
