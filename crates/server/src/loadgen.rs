//! Open-loop load generator for the admission server.
//!
//! Each connection submits batches on a fixed arrival schedule — batch
//! `i` is sent at `start + i * batch / rate` regardless of how fast the
//! server answers — so the measured latencies reflect the *offered*
//! rate, not a closed feedback loop that politely waits for the server.
//! A reader thread per connection matches `Decision`/`Reject` frames
//! back to submit timestamps and records end-to-end latency into a
//! log-bucketed histogram.

use crate::client::Connection;
use crate::proto::{Frame, ProtoError, TenantSummary, WireJob};
use cslack_obs::timeline::{ClockBase, Stage};
use cslack_obs::Histogram;
use cslack_workloads::WorkloadSpec;
use serde::Serialize;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a connection waits, after its last submit, for the server
/// to answer everything still in flight before declaring the remainder
/// undecided.
const SETTLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Load generator parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address.
    pub connect: SocketAddr,
    /// Tenants to exercise; each gets `conns` dedicated connections.
    pub tenants: Vec<String>,
    /// Connections per tenant.
    pub conns: usize,
    /// Offered rate in jobs per second *per connection*.
    pub rate: f64,
    /// Jobs per connection.
    pub jobs: usize,
    /// Jobs per `SubmitBatch` frame.
    pub batch: usize,
    /// Base workload seed; connection `c` of a tenant uses `seed + c`.
    pub seed: u64,
    /// Whether to drain each tenant afterwards and collect summaries.
    pub drain: bool,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            connect: "127.0.0.1:7437".parse().unwrap(),
            tenants: vec!["default".into()],
            conns: 1,
            rate: 10_000.0,
            jobs: 10_000,
            batch: 64,
            seed: 1,
            drain: true,
        }
    }
}

/// Latency percentiles in microseconds.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LatencyUs {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum observed.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: u64,
}

impl LatencyUs {
    fn from_ns_histogram(h: &Histogram) -> LatencyUs {
        let us = |ns: u64| ns / 1_000;
        LatencyUs {
            p50: us(h.quantile(0.50)),
            p90: us(h.quantile(0.90)),
            p99: us(h.quantile(0.99)),
            p999: us(h.quantile(0.999)),
            max: us(h.max()),
            mean: us(h.mean()),
        }
    }
}

/// Where each decided job's end-to-end time went, split using the
/// server stage stamps echoed on v2 `Decision` frames. Client and
/// server clocks are never compared directly: the server span is
/// measured on the server's clock, subtracted from the client-measured
/// end-to-end to estimate the network share.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LatencyBreakdown {
    /// End-to-end minus the server span: wire transit both ways plus
    /// buffering outside the engine.
    pub network_us: LatencyUs,
    /// Frame decode to decision delivery on the server.
    pub server_us: LatencyUs,
    /// Shard queue wait (enqueue to dequeue).
    pub queue_us: LatencyUs,
    /// Scheduler decision time (dequeue to decide).
    pub decide_us: LatencyUs,
}

/// Per-tenant slice of the report.
#[derive(Clone, Debug, Serialize)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Jobs submitted across the tenant's connections.
    pub submitted: u64,
    /// Decisions received (accepted + rejected by the algorithm).
    pub decided: u64,
    /// Accepted decisions.
    pub accepted: u64,
    /// Rejected decisions.
    pub rejected: u64,
    /// Jobs refused by quota backpressure.
    pub backpressured: u64,
    /// Typed per-job `Reject` frames (malformed, duplicate, shard
    /// failure, ...).
    pub errored: u64,
    /// Transient `Retry` frames (the job's shard was being resurrected
    /// at submit time) — not failures; the job may be resubmitted.
    pub retried: u64,
    /// Jobs never answered within the settle timeout.
    pub undecided: u64,
    /// Decision latency percentiles for this tenant.
    pub latency_us: LatencyUs,
    /// Final schedule summary, when the run drained the tenant.
    pub summary: Option<TenantSummary>,
}

/// The full load-generator report, serialized to `BENCH_serve.json`.
#[derive(Clone, Debug, Serialize)]
pub struct LoadgenReport {
    /// Tenants exercised.
    pub tenants: usize,
    /// Connections per tenant.
    pub conns_per_tenant: usize,
    /// Jobs per connection.
    pub jobs_per_conn: usize,
    /// Jobs per submit frame.
    pub batch: usize,
    /// Offered aggregate rate (jobs/sec across all connections).
    pub offered_rate: f64,
    /// Achieved decision throughput (decisions/sec of wall time).
    pub achieved_rate: f64,
    /// Wall-clock seconds from first submit to last outcome.
    pub wall_secs: f64,
    /// Total jobs submitted.
    pub submitted: u64,
    /// Total decisions received.
    pub decided: u64,
    /// Total accepted.
    pub accepted: u64,
    /// Total rejected by the algorithm.
    pub rejected: u64,
    /// Total refused by backpressure.
    pub backpressured: u64,
    /// Total typed per-job rejects.
    pub errored: u64,
    /// Total transient `Retry` frames.
    pub retried: u64,
    /// Total never answered.
    pub undecided: u64,
    /// Aggregate decision latency percentiles.
    pub latency_us: LatencyUs,
    /// Aggregate split of where the end-to-end time went (network vs
    /// server vs queue vs decide), from the v2 stage stamps.
    pub latency_breakdown: LatencyBreakdown,
    /// Per-tenant breakdown.
    pub per_tenant: Vec<TenantReport>,
}

/// Stage-span histograms one reader accumulates from decision frames.
#[derive(Default)]
struct SpanHists {
    network: Histogram,
    server: Histogram,
    queue: Histogram,
    decide: Histogram,
}

impl SpanHists {
    fn merge(&mut self, other: &SpanHists) {
        self.network.merge(&other.network);
        self.server.merge(&other.server);
        self.queue.merge(&other.queue);
        self.decide.merge(&other.decide);
    }

    fn breakdown(&self) -> LatencyBreakdown {
        LatencyBreakdown {
            network_us: LatencyUs::from_ns_histogram(&self.network),
            server_us: LatencyUs::from_ns_histogram(&self.server),
            queue_us: LatencyUs::from_ns_histogram(&self.queue),
            decide_us: LatencyUs::from_ns_histogram(&self.decide),
        }
    }
}

/// What one connection's worker pair observed.
struct ConnOutcome {
    submitted: u64,
    decided: u64,
    accepted: u64,
    rejected: u64,
    backpressured: u64,
    errored: u64,
    retried: u64,
    undecided: u64,
    latency: Histogram,
    spans: SpanHists,
    /// Seconds from the global start to this connection's last outcome.
    last_outcome_secs: f64,
}

/// Counters shared between a connection's writer and reader threads.
struct ConnShared {
    /// Submit timestamps keyed by job id; removed as outcomes arrive.
    inflight: Mutex<HashMap<u32, Instant>>,
    /// Signed so a late Backpressure racing a Decision cannot wedge the
    /// settle loop at a small positive residue.
    outstanding: AtomicI64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    backpressured: AtomicU64,
    errored: AtomicU64,
    retried: AtomicU64,
    /// Set by the writer once it gives up waiting; tells the reader to
    /// exit its idle poll.
    stop: AtomicBool,
}

impl ConnShared {
    fn new() -> ConnShared {
        ConnShared {
            inflight: Mutex::new(HashMap::new()),
            outstanding: AtomicI64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            backpressured: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }
}

/// Runs the configured load and returns the report, or a description of
/// what went wrong before any load could be offered.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if config.tenants.is_empty() {
        return Err("loadgen needs at least one tenant".into());
    }
    if config.conns == 0 || config.jobs == 0 {
        return Err("loadgen needs at least one connection and one job".into());
    }
    if !(config.rate.is_finite() && config.rate > 0.0) {
        return Err("offered rate must be a positive number".into());
    }
    let batch = config.batch.max(1);
    let start = Instant::now();

    // One worker pair per (tenant, connection).
    let mut handles = Vec::new();
    for tenant in &config.tenants {
        for conn_idx in 0..config.conns {
            let cfg = config.clone();
            let tenant = tenant.clone();
            handles.push((
                tenant.clone(),
                std::thread::Builder::new()
                    .name(format!("loadgen-{tenant}-{conn_idx}"))
                    .spawn(move || run_connection(&cfg, &tenant, conn_idx, batch, start))
                    .map_err(|e| format!("spawn loadgen worker: {e}"))?,
            ));
        }
    }

    // Collect per-connection outcomes, grouped by tenant.
    let mut by_tenant: HashMap<String, Vec<ConnOutcome>> = HashMap::new();
    let mut errors = Vec::new();
    for (tenant, handle) in handles {
        match handle.join() {
            Ok(Ok(outcome)) => by_tenant.entry(tenant).or_default().push(outcome),
            Ok(Err(e)) => errors.push(format!("{tenant}: {e}")),
            Err(_) => errors.push(format!("{tenant}: worker panicked")),
        }
    }
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }

    // Optionally drain each tenant on a fresh connection.
    let mut summaries: HashMap<String, TenantSummary> = HashMap::new();
    if config.drain {
        for tenant in &config.tenants {
            if summaries.contains_key(tenant) {
                continue;
            }
            let mut conn = Connection::connect(config.connect)
                .map_err(|e| format!("{tenant}: drain connect: {e}"))?;
            conn.hello(tenant)?;
            let summary = conn.drain().map_err(|e| format!("{tenant}: {e}"))?;
            summaries.insert(tenant.clone(), summary);
        }
    }

    // Fold into the report.
    let mut per_tenant = Vec::new();
    let mut total = ConnOutcome {
        submitted: 0,
        decided: 0,
        accepted: 0,
        rejected: 0,
        backpressured: 0,
        errored: 0,
        retried: 0,
        undecided: 0,
        latency: Histogram::new(),
        spans: SpanHists::default(),
        last_outcome_secs: 0.0,
    };
    for tenant in &config.tenants {
        let conns = by_tenant.remove(tenant).unwrap_or_default();
        let mut t = TenantReport {
            tenant: tenant.clone(),
            submitted: 0,
            decided: 0,
            accepted: 0,
            rejected: 0,
            backpressured: 0,
            errored: 0,
            retried: 0,
            undecided: 0,
            latency_us: LatencyUs::default(),
            summary: summaries.remove(tenant),
        };
        let mut latency = Histogram::new();
        for c in conns {
            t.submitted += c.submitted;
            t.decided += c.decided;
            t.accepted += c.accepted;
            t.rejected += c.rejected;
            t.backpressured += c.backpressured;
            t.errored += c.errored;
            t.retried += c.retried;
            t.undecided += c.undecided;
            latency.merge(&c.latency);
            total.spans.merge(&c.spans);
            total.last_outcome_secs = total.last_outcome_secs.max(c.last_outcome_secs);
        }
        t.latency_us = LatencyUs::from_ns_histogram(&latency);
        total.submitted += t.submitted;
        total.decided += t.decided;
        total.accepted += t.accepted;
        total.rejected += t.rejected;
        total.backpressured += t.backpressured;
        total.errored += t.errored;
        total.retried += t.retried;
        total.undecided += t.undecided;
        total.latency.merge(&latency);
        per_tenant.push(t);
    }

    let wall_secs = total.last_outcome_secs.max(f64::EPSILON);
    Ok(LoadgenReport {
        tenants: config.tenants.len(),
        conns_per_tenant: config.conns,
        jobs_per_conn: config.jobs,
        batch,
        offered_rate: config.rate * (config.tenants.len() * config.conns) as f64,
        achieved_rate: total.decided as f64 / wall_secs,
        wall_secs,
        submitted: total.submitted,
        decided: total.decided,
        accepted: total.accepted,
        rejected: total.rejected,
        backpressured: total.backpressured,
        errored: total.errored,
        retried: total.retried,
        undecided: total.undecided,
        latency_us: LatencyUs::from_ns_histogram(&total.latency),
        latency_breakdown: total.spans.breakdown(),
        per_tenant,
    })
}

/// One connection: handshake, paced submit loop, and a reader thread
/// that matches outcomes back to submit timestamps.
fn run_connection(
    config: &LoadgenConfig,
    tenant: &str,
    conn_idx: usize,
    batch: usize,
    global_start: Instant,
) -> Result<ConnOutcome, String> {
    let mut conn = Connection::connect(config.connect).map_err(|e| format!("connect: {e}"))?;
    let info = conn.hello(tenant)?;

    // Regenerate the tenant's workload from the parameters the server
    // advertised, so the offered jobs match the engine's geometry. Each
    // connection gets a distinct seed; connection 0 keeps the raw job
    // ids so a single-connection run is bit-comparable to an
    // in-process run of the same spec.
    let instance = WorkloadSpec::default_spec(
        info.m,
        info.eps,
        config.jobs,
        config.seed.wrapping_add(conn_idx as u64),
    )
    .generate()
    .map_err(|e| format!("generate workload: {e:?}"))?;
    let id_base = (conn_idx * config.jobs) as u32;
    let jobs: Vec<WireJob> = instance
        .jobs()
        .iter()
        .map(|j| WireJob {
            id: j.id.0 + id_base,
            release: j.release.raw(),
            proc_time: j.proc_time,
            deadline: j.deadline.raw(),
        })
        .collect();

    let shared = Arc::new(ConnShared::new());
    let reader_conn = conn.try_clone().map_err(|e| format!("clone socket: {e}"))?;
    reader_conn
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let reader_shared = Arc::clone(&shared);
    let reader = std::thread::Builder::new()
        .name(format!("loadgen-rx-{tenant}-{conn_idx}"))
        .spawn(move || reader_loop(reader_conn, reader_shared, global_start))
        .map_err(|e| format!("spawn reader: {e}"))?;

    // Open-loop pacing: batch i is due at start + i*batch/rate, no
    // matter how far behind the server is.
    let mut submitted = 0u64;
    // The client's own stamp clock: `client_send_ns` values travel the
    // wire so server-side recordings carry the client domain too.
    let clock = ClockBase::new();
    let pace_start = Instant::now();
    for (i, chunk) in jobs.chunks(batch).enumerate() {
        let due = pace_start + Duration::from_secs_f64((i * batch) as f64 / config.rate);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let stamp = Instant::now();
        {
            let mut inflight = shared.inflight.lock().unwrap();
            for job in chunk {
                inflight.insert(job.id, stamp);
            }
        }
        shared
            .outstanding
            .fetch_add(chunk.len() as i64, Ordering::SeqCst);
        conn.send(&Frame::SubmitBatch {
            jobs: chunk.to_vec(),
            client_send_ns: clock.now_ns(),
        })
        .map_err(|e| format!("submit: {e}"))?;
        submitted += chunk.len() as u64;
    }

    // Let the tail settle, then cut the reader loose.
    let settle_deadline = Instant::now() + SETTLE_TIMEOUT;
    while shared.outstanding.load(Ordering::SeqCst) > 0 && Instant::now() < settle_deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    shared.stop.store(true, Ordering::SeqCst);
    let (latency, spans, last_outcome_secs) = reader
        .join()
        .map_err(|_| "reader panicked".to_string())?
        .map_err(|e| format!("reader: {e}"))?;

    // Backpressured jobs leave stale stamps in the inflight map (the
    // refused frame carries a count, not ids), so the counter — not the
    // map — is the authority on how many jobs were never answered.
    let undecided = shared.outstanding.load(Ordering::SeqCst).max(0) as u64;
    Ok(ConnOutcome {
        submitted,
        decided: latency.count(),
        accepted: shared.accepted.load(Ordering::SeqCst),
        rejected: shared.rejected.load(Ordering::SeqCst),
        backpressured: shared.backpressured.load(Ordering::SeqCst),
        errored: shared.errored.load(Ordering::SeqCst),
        retried: shared.retried.load(Ordering::SeqCst),
        undecided,
        latency,
        spans,
        last_outcome_secs,
    })
}

/// Consumes server frames until told to stop, recording end-to-end
/// latencies (client clock) and stage spans (server stamps).
fn reader_loop(
    mut conn: Connection,
    shared: Arc<ConnShared>,
    global_start: Instant,
) -> Result<(Histogram, SpanHists, f64), String> {
    let mut latency = Histogram::new();
    let mut spans = SpanHists::default();
    let mut last_outcome_secs = 0.0_f64;
    loop {
        match conn.poll_ready() {
            Ok(true) => {}
            Ok(false) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok((latency, spans, last_outcome_secs));
                }
                continue;
            }
            Err(e) => return Err(format!("poll: {e}")),
        }
        let frame = match conn.recv() {
            Ok(frame) => frame,
            Err(ProtoError::Eof) => return Ok((latency, spans, last_outcome_secs)),
            Err(e) => return Err(format!("recv: {e}")),
        };
        let now = Instant::now();
        match frame {
            Frame::Decision(event) => {
                let sent = shared.inflight.lock().unwrap().remove(&event.job);
                if let Some(sent) = sent {
                    let e2e_ns = now.duration_since(sent).as_nanos() as u64;
                    latency.record(e2e_ns);
                    // Server spans from the echoed stamps; the network
                    // share is what the server span cannot explain.
                    if let Some(server_ns) = event.stamps.span(Stage::FrameDecode, Stage::Delivery)
                    {
                        spans.server.record(server_ns);
                        spans.network.record(e2e_ns.saturating_sub(server_ns));
                    }
                    if let Some(ns) = event.stamps.span(Stage::Enqueue, Stage::Dequeue) {
                        spans.queue.record(ns);
                    }
                    if let Some(ns) = event.stamps.span(Stage::Dequeue, Stage::Decide) {
                        spans.decide.record(ns);
                    }
                    shared.outstanding.fetch_sub(1, Ordering::SeqCst);
                    last_outcome_secs = now.duration_since(global_start).as_secs_f64();
                    if event.accepted {
                        shared.accepted.fetch_add(1, Ordering::SeqCst);
                    } else {
                        shared.rejected.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            Frame::Reject { job: Some(id), .. }
                if shared.inflight.lock().unwrap().remove(&id).is_some() =>
            {
                shared.outstanding.fetch_sub(1, Ordering::SeqCst);
                shared.errored.fetch_add(1, Ordering::SeqCst);
                last_outcome_secs = now.duration_since(global_start).as_secs_f64();
            }
            // Transient: the job's shard was mid-resurrection. The job
            // is answered (not undecided) but neither decided nor
            // errored — a real client would resubmit it.
            Frame::Retry { job } if shared.inflight.lock().unwrap().remove(&job).is_some() => {
                shared.outstanding.fetch_sub(1, Ordering::SeqCst);
                shared.retried.fetch_add(1, Ordering::SeqCst);
                last_outcome_secs = now.duration_since(global_start).as_secs_f64();
            }
            Frame::Backpressure { refused, .. } => {
                // A quota refusal carries a count, not job ids; the
                // outstanding counter absorbs it and the refused jobs'
                // stale stamps are simply never matched.
                shared
                    .outstanding
                    .fetch_sub(refused as i64, Ordering::SeqCst);
                shared
                    .backpressured
                    .fetch_add(refused as u64, Ordering::SeqCst);
            }
            // Stats, summaries, or connection-level rejects are not
            // per-job outcomes; ignore them here.
            _ => {}
        }
    }
}
