//! A small blocking client for the cslack admission protocol — the
//! building block of the load generator, the CI smoke test, and the
//! integration suite.

use crate::proto::{self, Frame, ProtoError};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// The engine parameters a `HelloAck` reveals — enough for a client to
/// regenerate the tenant's workload and replay the run offline.
#[derive(Clone, Debug)]
pub struct EngineInfo {
    /// Tenant name (echoed).
    pub tenant: String,
    /// Machines in the tenant's cluster.
    pub m: usize,
    /// System slack.
    pub eps: f64,
    /// Engine shard count.
    pub shards: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Admission algorithm (CLI vocabulary).
    pub algorithm: String,
    /// In-flight quota.
    pub inflight_limit: usize,
}

/// One blocking protocol connection.
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Connection { stream })
    }

    /// A second handle on the same socket, for split reader/writer
    /// threads.
    pub fn try_clone(&self) -> std::io::Result<Connection> {
        Ok(Connection {
            stream: self.stream.try_clone()?,
        })
    }

    /// Bounds how long [`Connection::recv`] blocks.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> std::io::Result<()> {
        proto::write_frame(&mut self.stream, frame)?;
        self.stream.flush()
    }

    /// Receives one frame.
    pub fn recv(&mut self) -> Result<Frame, ProtoError> {
        proto::read_frame(&mut self.stream)
    }

    /// Whether at least one byte is ready (or the peer closed), without
    /// consuming it. With a read timeout configured this is the idle
    /// poll of a reader loop: `Ok(false)` means the timeout elapsed
    /// with nothing to read and the caller can check its exit
    /// conditions without ever starting (and possibly truncating) a
    /// frame read.
    pub fn poll_ready(&self) -> std::io::Result<bool> {
        let mut probe = [0u8; 1];
        match self.stream.peek(&mut probe) {
            // 0 bytes peeked = the peer closed; report ready so the
            // next `recv` surfaces the clean `Eof`.
            Ok(_) => Ok(true),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Performs the `Hello` handshake, returning the tenant's engine
    /// parameters.
    pub fn hello(&mut self, tenant: &str) -> Result<EngineInfo, String> {
        self.send(&Frame::Hello {
            tenant: tenant.into(),
        })
        .map_err(|e| format!("send hello: {e}"))?;
        match self.recv().map_err(|e| format!("await hello ack: {e}"))? {
            Frame::HelloAck {
                tenant,
                m,
                eps,
                shards,
                seed,
                algorithm,
                inflight_limit,
            } => Ok(EngineInfo {
                tenant,
                m: m as usize,
                eps,
                shards: shards as usize,
                seed,
                algorithm,
                inflight_limit: inflight_limit as usize,
            }),
            Frame::Reject { code, detail, .. } => {
                Err(format!("hello rejected ({}): {detail}", code.as_str()))
            }
            other => Err(format!("unexpected reply to hello: {other:?}")),
        }
    }

    /// Drains the connection's tenant and returns its final summary,
    /// discarding any still-streaming frames that precede it.
    pub fn drain(&mut self) -> Result<crate::proto::TenantSummary, String> {
        self.send(&Frame::Drain)
            .map_err(|e| format!("send drain: {e}"))?;
        loop {
            match self.recv().map_err(|e| format!("await summary: {e}"))? {
                Frame::Summary(summary) => return Ok(summary),
                // Decisions, rejections, or transient retries for jobs
                // still in flight may legitimately arrive before the
                // summary.
                Frame::Decision(_)
                | Frame::Reject { .. }
                | Frame::Backpressure { .. }
                | Frame::Retry { .. } => {}
                other => return Err(format!("unexpected reply to drain: {other:?}")),
            }
        }
    }
}
