//! The cslack wire protocol: length-prefixed little-endian binary
//! frames over TCP.
//!
//! ## Frame layout
//!
//! ```text
//! +--------+---------+------+----------+=========+----------+
//! | magic  | version | type | len      | payload | checksum |
//! | u16 LE | u8      | u8   | u32 LE   | len B   | u32 LE   |
//! +--------+---------+------+----------+=========+----------+
//! ```
//!
//! The checksum is FNV-1a (32-bit) over the 8-byte header plus the
//! payload, so a flipped bit anywhere in the frame is caught before the
//! payload is interpreted. `len` counts payload bytes only and is
//! bounded by [`MAX_FRAME`]; a peer announcing more is cut off without
//! allocating.
//!
//! Within payloads: integers and floats are little-endian and
//! fixed-width, strings are a `u32` byte length followed by UTF-8
//! bytes, `Option<T>` is a `u8` tag (0 absent / 1 present) followed by
//! the value. All decoding is total: any malformed input becomes a
//! typed [`ProtoError`], never a panic, and trailing bytes after a
//! well-formed payload are an error (no smuggling).

use cslack_obs::flight::StampedDecision;
use cslack_obs::timeline::{TimelineStamps, STAGES};
use cslack_obs::trace::{DecisionEvent, RejectReason};
use serde::Serialize;
use std::fmt;
use std::io::{Read, Write};

/// Frame magic: `0xC57A` ("cslack admission", little-endian on the
/// wire as `7A C5`).
pub const MAGIC: u16 = 0xC57A;
/// Protocol version this build speaks by default.
///
/// Version 2 is a minor revision of version 1: `SubmitBatch` gains a
/// trailing client-send timestamp and `Decision` gains the server's
/// stage timeline. Version 3 adds the `Retry` frame (a transiently
/// refused job whose shard is being resurrected); encoding it for an
/// older peer degrades to a typed `ShardFailed` reject. Both sides
/// accept any version in [`MIN_VERSION`]`..=`[`VERSION`] on read, and
/// the server echoes the version a client's `Hello` arrived with, so
/// v1/v2 clients keep working unchanged.
pub const VERSION: u8 = 3;
/// Oldest protocol version this build still decodes and encodes.
pub const MIN_VERSION: u8 = 1;
/// Hard cap on a frame's payload length. A `SubmitBatch` of maximum
/// size is ~28 B per job, so this admits batches of ~500k jobs while
/// bounding what a hostile length field can make the server allocate.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 8;
/// Longest accepted string field (tenant names, reject details).
pub const MAX_STRING: usize = 4096;

/// FNV-1a 32-bit — the same hash family the flight-recorder container
/// uses, tiny and dependency-free.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A job as submitted on the wire. Validated server-side before it
/// touches a scheduler (finite fields, positive processing time) — the
/// submitter is untrusted.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct WireJob {
    /// Tenant-scoped job identifier; must be unique among the tenant's
    /// undecided jobs.
    pub id: u32,
    /// Release date `r_j`.
    pub release: f64,
    /// Processing time `p_j > 0`.
    pub proc_time: f64,
    /// Hard completion deadline `d_j`.
    pub deadline: f64,
}

/// Why the server refused a job (or the whole connection).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RejectCode {
    /// The byte stream broke framing; the connection closes after this
    /// frame (there is no way to resynchronize).
    Protocol,
    /// The frame parsed but its content is invalid (non-finite job
    /// fields, non-positive processing time, empty batch).
    Malformed,
    /// `Hello` named a tenant this server does not host.
    UnknownTenant,
    /// The job id is already in flight (or repeated within the batch)
    /// for this tenant.
    DuplicateJob,
    /// The job's target shard died to a contained fault; other shards
    /// keep serving.
    ShardFailed,
    /// The tenant's engine has been drained; no further admissions.
    Closed,
    /// The tenant drained while this job was queued; it was never
    /// offered to a scheduler.
    Undecided,
    /// A frame that only makes sense after `Hello` arrived first, or a
    /// `Hello` arrived twice.
    BadState,
}

impl RejectCode {
    const ALL: [RejectCode; 8] = [
        RejectCode::Protocol,
        RejectCode::Malformed,
        RejectCode::UnknownTenant,
        RejectCode::DuplicateJob,
        RejectCode::ShardFailed,
        RejectCode::Closed,
        RejectCode::Undecided,
        RejectCode::BadState,
    ];

    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectCode::Protocol => "protocol",
            RejectCode::Malformed => "malformed",
            RejectCode::UnknownTenant => "unknown_tenant",
            RejectCode::DuplicateJob => "duplicate_job",
            RejectCode::ShardFailed => "shard_failed",
            RejectCode::Closed => "closed",
            RejectCode::Undecided => "undecided",
            RejectCode::BadState => "bad_state",
        }
    }

    fn to_u8(self) -> u8 {
        RejectCode::ALL.iter().position(|&c| c == self).unwrap() as u8
    }

    fn from_u8(v: u8) -> Option<RejectCode> {
        RejectCode::ALL.get(v as usize).copied()
    }
}

/// A tenant's live counters, served in response to `StatsRequest`.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Jobs offered to the tenant's engine.
    pub submitted: u64,
    /// Jobs admitted.
    pub accepted: u64,
    /// Jobs rejected by the admission algorithm.
    pub rejected: u64,
    /// Submissions that found a full shard queue.
    pub backpressure_stalls: u64,
    /// Jobs submitted but not yet decided.
    pub inflight: u32,
    /// Whether the tenant has been drained.
    pub drained: bool,
}

/// A tenant's final schedule summary, streamed on drain.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TenantSummary {
    /// Tenant name.
    pub tenant: String,
    /// Total jobs decided.
    pub submitted: u64,
    /// Jobs admitted with a commitment.
    pub accepted: u64,
    /// Jobs rejected.
    pub rejected: u64,
    /// Total processing time admitted (the paper's objective).
    pub accepted_load: f64,
    /// Completion time of the last committed job.
    pub makespan: f64,
    /// Machines in the tenant's cluster.
    pub machines: u32,
    /// Shards lost to contained faults during the run.
    pub failed_shards: u32,
}

/// Every message that travels the wire, in both directions.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: bind this connection to a tenant namespace.
    /// Must be the first frame on a connection.
    Hello {
        /// Tenant to join.
        tenant: String,
    },
    /// Server → client: the tenant's engine parameters, so a client
    /// can reproduce the run offline (the determinism contract).
    HelloAck {
        /// Tenant name (echoed).
        tenant: String,
        /// Machines in the tenant's cluster.
        m: u32,
        /// System slack `eps`.
        eps: f64,
        /// Engine shard count.
        shards: u32,
        /// Base RNG seed (shard `s` derives `seed + s`).
        seed: u64,
        /// Admission algorithm (CLI vocabulary).
        algorithm: String,
        /// Maximum undecided jobs the tenant may have in flight.
        inflight_limit: u32,
    },
    /// Client → server: a batch of jobs to admit, in arrival order.
    SubmitBatch {
        /// The jobs; the whole batch shares one quota check.
        jobs: Vec<WireJob>,
        /// The client's monotonic send stamp, in the *client's* clock
        /// domain (never comparable to server stamps); `0` means
        /// unset. v1 peers do not carry the field and decode as `0`.
        client_send_ns: u64,
    },
    /// Server → client: one admission decision, streamed as the engine
    /// makes it. Carries `(shard, seq)` so the client can reconstruct
    /// the deterministic per-shard order, plus (v2) the server's stage
    /// timeline for the job — v1 peers see only the decision.
    Decision(StampedDecision),
    /// Server → client: the batch was refused because it would exceed
    /// the tenant's in-flight quota. Retryable — resubmit after
    /// decisions drain the quota.
    Backpressure {
        /// Undecided jobs currently in flight for the tenant.
        inflight: u32,
        /// The tenant's in-flight quota.
        limit: u32,
        /// Jobs in the refused batch.
        refused: u32,
    },
    /// Server → client: a job (or the connection) was refused with a
    /// typed cause. `job` is `None` for connection-level rejections.
    Reject {
        /// The refused job id, when job-scoped.
        job: Option<u32>,
        /// Typed cause.
        code: RejectCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Client → server: ask for the tenant's live counters.
    StatsRequest,
    /// Server → client: the tenant's live counters.
    Stats(TenantStats),
    /// Client → server: gracefully drain this connection's tenant —
    /// finish the engine, decide nothing further, stream the summary.
    Drain,
    /// Server → client: the tenant's final schedule summary.
    Summary(TenantSummary),
    /// Server → client (v3): the job was *not* decided because its
    /// target shard failed and is being resurrected — resubmit it. A
    /// transient condition, unlike the terminal `ShardFailed` reject a
    /// non-recovering server sends; pre-v3 peers receive that reject
    /// instead.
    Retry {
        /// The job to resubmit.
        job: u32,
    },
}

const TYPE_HELLO: u8 = 0x01;
const TYPE_HELLO_ACK: u8 = 0x02;
const TYPE_SUBMIT_BATCH: u8 = 0x03;
const TYPE_DECISION: u8 = 0x04;
const TYPE_BACKPRESSURE: u8 = 0x05;
const TYPE_REJECT: u8 = 0x06;
const TYPE_STATS_REQUEST: u8 = 0x07;
const TYPE_STATS: u8 = 0x08;
const TYPE_DRAIN: u8 = 0x09;
const TYPE_SUMMARY: u8 = 0x0A;
const TYPE_RETRY: u8 = 0x0B;

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TYPE_HELLO,
            Frame::HelloAck { .. } => TYPE_HELLO_ACK,
            Frame::SubmitBatch { .. } => TYPE_SUBMIT_BATCH,
            Frame::Decision(_) => TYPE_DECISION,
            Frame::Backpressure { .. } => TYPE_BACKPRESSURE,
            Frame::Reject { .. } => TYPE_REJECT,
            Frame::StatsRequest => TYPE_STATS_REQUEST,
            Frame::Stats(_) => TYPE_STATS,
            Frame::Drain => TYPE_DRAIN,
            Frame::Summary(_) => TYPE_SUMMARY,
            Frame::Retry { .. } => TYPE_RETRY,
        }
    }
}

/// Typed decode / framing failures. `Eof` is the *clean* close (the
/// peer hung up between frames); everything else is a protocol fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Stream closed cleanly at a frame boundary.
    Eof,
    /// Stream closed mid-frame.
    Truncated,
    /// First two header bytes are not [`MAGIC`].
    BadMagic(u16),
    /// Version byte this build does not speak.
    BadVersion(u8),
    /// Announced payload length exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// Checksum mismatch — the frame was corrupted in flight.
    BadChecksum,
    /// Unknown frame type byte.
    UnknownType(u8),
    /// Payload did not decode as its frame type.
    Malformed(&'static str),
    /// Underlying transport error.
    Io(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Eof => write!(f, "connection closed"),
            ProtoError::Truncated => write!(f, "stream closed mid-frame"),
            ProtoError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::Oversized(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME}")
            }
            ProtoError::BadChecksum => write!(f, "frame checksum mismatch"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl ProtoError {
    /// Whether the connection can continue after this error. Framing is
    /// length-prefixed, so after any error that reached a full frame
    /// read the stream is still in sync; errors that lose sync (bad
    /// magic, truncation, transport faults) are fatal.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, ProtoError::UnknownType(_) | ProtoError::Malformed(_))
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
        None => out.push(0),
    }
}
fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(x) => {
            out.push(1);
            put_u32(out, x);
        }
        None => out.push(0),
    }
}

fn encode_payload(frame: &Frame, out: &mut Vec<u8>, version: u8) {
    match frame {
        Frame::Hello { tenant } => put_str(out, tenant),
        Frame::HelloAck {
            tenant,
            m,
            eps,
            shards,
            seed,
            algorithm,
            inflight_limit,
        } => {
            put_str(out, tenant);
            put_u32(out, *m);
            put_f64(out, *eps);
            put_u32(out, *shards);
            put_u64(out, *seed);
            put_str(out, algorithm);
            put_u32(out, *inflight_limit);
        }
        Frame::SubmitBatch {
            jobs,
            client_send_ns,
        } => {
            // v2 leads with the client's send stamp; a v1 encoding
            // simply drops it (the field is advisory).
            if version >= 2 {
                put_u64(out, *client_send_ns);
            }
            put_u32(out, jobs.len() as u32);
            for job in jobs {
                put_u32(out, job.id);
                put_f64(out, job.release);
                put_f64(out, job.proc_time);
                put_f64(out, job.deadline);
            }
        }
        Frame::Decision(d) => {
            put_u64(out, d.seq);
            put_u32(out, d.job);
            put_u32(out, d.shard as u32);
            put_f64(out, d.release);
            put_f64(out, d.proc_time);
            put_f64(out, d.deadline);
            put_u32(out, d.candidates);
            put_opt_f64(out, d.threshold);
            put_opt_f64(out, d.min_load);
            out.push(u8::from(d.accepted));
            put_opt_u32(out, d.machine);
            put_opt_f64(out, d.start);
            match d.reject_reason {
                Some(reason) => {
                    out.push(1);
                    out.push(reason_to_u8(reason));
                }
                None => out.push(0),
            }
            put_u64(out, d.latency_ns);
            put_u64(out, d.queue_wait_ns);
            // v2 appends the stage timeline; a v1 encoding drops it.
            if version >= 2 {
                for i in 0..STAGES {
                    put_u64(out, d.stamps.0[i]);
                }
            }
        }
        Frame::Backpressure {
            inflight,
            limit,
            refused,
        } => {
            put_u32(out, *inflight);
            put_u32(out, *limit);
            put_u32(out, *refused);
        }
        Frame::Reject { job, code, detail } => {
            put_opt_u32(out, *job);
            out.push(code.to_u8());
            put_str(out, detail);
        }
        Frame::StatsRequest | Frame::Drain => {}
        Frame::Stats(s) => {
            put_str(out, &s.tenant);
            put_u64(out, s.submitted);
            put_u64(out, s.accepted);
            put_u64(out, s.rejected);
            put_u64(out, s.backpressure_stalls);
            put_u32(out, s.inflight);
            out.push(u8::from(s.drained));
        }
        Frame::Summary(s) => {
            put_str(out, &s.tenant);
            put_u64(out, s.submitted);
            put_u64(out, s.accepted);
            put_u64(out, s.rejected);
            put_f64(out, s.accepted_load);
            put_f64(out, s.makespan);
            put_u32(out, s.machines);
            put_u32(out, s.failed_shards);
        }
        Frame::Retry { job } => put_u32(out, *job),
    }
}

fn reason_to_u8(reason: RejectReason) -> u8 {
    RejectReason::ALL
        .iter()
        .position(|&r| r == reason)
        .unwrap_or(RejectReason::ALL.len() - 1) as u8
}

fn reason_from_u8(v: u8) -> Option<RejectReason> {
    RejectReason::ALL.get(v as usize).copied()
}

/// Encodes a frame into its full wire representation (header, payload,
/// checksum) at the current [`VERSION`].
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    encode_frame_v(frame, VERSION)
}

/// Encodes a frame at a specific protocol version (the server answers
/// a v1 client in v1). `version` must be in
/// [`MIN_VERSION`]`..=`[`VERSION`]; out-of-range values are clamped.
pub fn encode_frame_v(frame: &Frame, version: u8) -> Vec<u8> {
    let version = version.clamp(MIN_VERSION, VERSION);
    // A pre-v3 peer has no `Retry` type; it gets the closest older
    // truth — a typed `ShardFailed` reject (which such clients already
    // treat as job-scoped and terminal-per-submission).
    if version < 3 {
        if let Frame::Retry { job } = frame {
            return encode_frame_v(
                &Frame::Reject {
                    job: Some(*job),
                    code: RejectCode::ShardFailed,
                    detail: "shard recovering; resubmit".into(),
                },
                version,
            );
        }
    }
    let mut buf = Vec::with_capacity(64);
    put_u16(&mut buf, MAGIC);
    buf.push(version);
    buf.push(frame.type_byte());
    put_u32(&mut buf, 0); // payload length backpatched below
    encode_payload(frame, &mut buf, version);
    let len = (buf.len() - HEADER_LEN) as u32;
    buf[4..8].copy_from_slice(&len.to_le_bytes());
    let sum = fnv1a32(&buf);
    put_u32(&mut buf, sum);
    buf
}

/// Encodes and writes a frame at the current [`VERSION`]. One
/// `write_all`, no interleaving hazard for a single writer.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Encodes and writes a frame at a specific protocol version.
pub fn write_frame_v(w: &mut impl Write, frame: &Frame, version: u8) -> std::io::Result<()> {
    w.write_all(&encode_frame_v(frame, version))
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ProtoError::Malformed("payload shorter than field"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        if len > MAX_STRING {
            return Err(ProtoError::Malformed("string field over length cap"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Malformed("string not UTF-8"))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(ProtoError::Malformed("bad option tag")),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, ProtoError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(ProtoError::Malformed("bad option tag")),
        }
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtoError::Malformed("bad bool")),
        }
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after payload"))
        }
    }
}

fn decode_payload(type_byte: u8, payload: &[u8], version: u8) -> Result<Frame, ProtoError> {
    let mut c = Cursor::new(payload);
    let frame = match type_byte {
        TYPE_HELLO => Frame::Hello {
            tenant: c.string()?,
        },
        TYPE_HELLO_ACK => Frame::HelloAck {
            tenant: c.string()?,
            m: c.u32()?,
            eps: c.f64()?,
            shards: c.u32()?,
            seed: c.u64()?,
            algorithm: c.string()?,
            inflight_limit: c.u32()?,
        },
        TYPE_SUBMIT_BATCH => {
            let client_send_ns = if version >= 2 { c.u64()? } else { 0 };
            let count = c.u32()? as usize;
            // 28 bytes per encoded job: a count the remaining payload
            // cannot hold is rejected before any allocation sized by it.
            if count > payload.len().saturating_sub(c.pos) / 28 {
                return Err(ProtoError::Malformed("job count exceeds payload"));
            }
            let mut jobs = Vec::with_capacity(count);
            for _ in 0..count {
                jobs.push(WireJob {
                    id: c.u32()?,
                    release: c.f64()?,
                    proc_time: c.f64()?,
                    deadline: c.f64()?,
                });
            }
            Frame::SubmitBatch {
                jobs,
                client_send_ns,
            }
        }
        TYPE_DECISION => {
            let seq = c.u64()?;
            let job = c.u32()?;
            let shard = c.u32()? as usize;
            let release = c.f64()?;
            let proc_time = c.f64()?;
            let deadline = c.f64()?;
            let candidates = c.u32()?;
            let threshold = c.opt_f64()?;
            let min_load = c.opt_f64()?;
            let accepted = c.bool()?;
            let machine = c.opt_u32()?;
            let start = c.opt_f64()?;
            let reject_reason = match c.u8()? {
                0 => None,
                1 => Some(
                    reason_from_u8(c.u8()?)
                        .ok_or(ProtoError::Malformed("unknown reject reason"))?,
                ),
                _ => return Err(ProtoError::Malformed("bad option tag")),
            };
            let event = DecisionEvent {
                seq,
                job,
                shard,
                release,
                proc_time,
                deadline,
                candidates,
                threshold,
                min_load,
                accepted,
                machine,
                start,
                reject_reason,
                latency_ns: c.u64()?,
                queue_wait_ns: c.u64()?,
            };
            let mut stamps = TimelineStamps::empty();
            if version >= 2 {
                for slot in stamps.0.iter_mut() {
                    *slot = c.u64()?;
                }
            }
            Frame::Decision(StampedDecision::new(event, stamps))
        }
        TYPE_BACKPRESSURE => Frame::Backpressure {
            inflight: c.u32()?,
            limit: c.u32()?,
            refused: c.u32()?,
        },
        TYPE_REJECT => Frame::Reject {
            job: c.opt_u32()?,
            code: RejectCode::from_u8(c.u8()?)
                .ok_or(ProtoError::Malformed("unknown reject code"))?,
            detail: c.string()?,
        },
        TYPE_STATS_REQUEST => Frame::StatsRequest,
        TYPE_STATS => Frame::Stats(TenantStats {
            tenant: c.string()?,
            submitted: c.u64()?,
            accepted: c.u64()?,
            rejected: c.u64()?,
            backpressure_stalls: c.u64()?,
            inflight: c.u32()?,
            drained: c.bool()?,
        }),
        TYPE_DRAIN => Frame::Drain,
        TYPE_RETRY => Frame::Retry { job: c.u32()? },
        TYPE_SUMMARY => Frame::Summary(TenantSummary {
            tenant: c.string()?,
            submitted: c.u64()?,
            accepted: c.u64()?,
            rejected: c.u64()?,
            accepted_load: c.f64()?,
            makespan: c.f64()?,
            machines: c.u32()?,
            failed_shards: c.u32()?,
        }),
        other => return Err(ProtoError::UnknownType(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Reads exactly `buf.len()` bytes. Distinguishes a clean close before
/// the first byte (`clean_eof` becomes [`ProtoError::Eof`]) from a
/// close mid-read ([`ProtoError::Truncated`]).
fn read_exactly(r: &mut impl Read, buf: &mut [u8], clean_eof: bool) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && clean_eof {
                    ProtoError::Eof
                } else {
                    ProtoError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads and decodes one frame from `r`, discarding its version. See
/// [`read_frame_v`] when the caller needs to answer in the peer's
/// version.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ProtoError> {
    read_frame_v(r).map(|(_, frame)| frame)
}

/// Reads and decodes one frame from `r`, returning the protocol
/// version it arrived with.
///
/// Every failure is a typed [`ProtoError`]; malformed or hostile input
/// never panics. The header is validated (magic, version in
/// [`MIN_VERSION`]`..=`[`VERSION`], length cap) before the payload is
/// read, and the checksum before the payload is interpreted.
pub fn read_frame_v(r: &mut impl Read) -> Result<(u8, Frame), ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    read_exactly(r, &mut header, true)?;
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = header[2];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ProtoError::BadVersion(version));
    }
    let type_byte = header[3];
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized(len));
    }
    let mut rest = vec![0u8; len as usize + 4];
    read_exactly(r, &mut rest, false)?;
    let (payload, sum_bytes) = rest.split_at(len as usize);
    let sent_sum = u32::from_le_bytes(sum_bytes.try_into().unwrap());
    let mut hashed = Vec::with_capacity(HEADER_LEN + payload.len());
    hashed.extend_from_slice(&header);
    hashed.extend_from_slice(payload);
    if fnv1a32(&hashed) != sent_sum {
        return Err(ProtoError::BadChecksum);
    }
    decode_payload(type_byte, payload, version).map(|frame| (version, frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple_frames() {
        for frame in [
            Frame::Hello {
                tenant: "alpha".into(),
            },
            Frame::StatsRequest,
            Frame::Drain,
            Frame::Backpressure {
                inflight: 3,
                limit: 8,
                refused: 5,
            },
            Frame::Retry { job: 17 },
        ] {
            let bytes = encode_frame(&frame);
            let back = read_frame(&mut bytes.as_slice()).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn corrupted_byte_is_a_checksum_error() {
        let mut bytes = encode_frame(&Frame::Hello {
            tenant: "alpha".into(),
        });
        let mid = HEADER_LEN + 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            read_frame(&mut bytes.as_slice()),
            Err(ProtoError::BadChecksum)
        );
    }

    #[test]
    fn clean_close_is_eof_not_truncated() {
        assert_eq!(read_frame(&mut (&[][..])), Err(ProtoError::Eof));
        let bytes = encode_frame(&Frame::Drain);
        assert_eq!(read_frame(&mut &bytes[..3]), Err(ProtoError::Truncated));
    }

    fn stamped() -> Frame {
        Frame::Decision(StampedDecision::new(
            DecisionEvent {
                seq: 7,
                job: 42,
                shard: 1,
                release: 0.0,
                proc_time: 2.0,
                deadline: 9.0,
                candidates: 3,
                threshold: Some(1.5),
                min_load: Some(0.5),
                accepted: true,
                machine: Some(2),
                start: Some(0.25),
                reject_reason: None,
                latency_ns: 111,
                queue_wait_ns: 222,
            },
            TimelineStamps([10, 20, 30, 40, 50, 60, 70]),
        ))
    }

    #[test]
    fn v2_frames_round_trip_stamps_and_client_send() {
        let batch = Frame::SubmitBatch {
            jobs: vec![WireJob {
                id: 1,
                release: 0.0,
                proc_time: 1.0,
                deadline: 3.0,
            }],
            client_send_ns: 12_345,
        };
        for frame in [batch, stamped()] {
            let bytes = encode_frame(&frame);
            let (version, back) = read_frame_v(&mut bytes.as_slice()).unwrap();
            assert_eq!(version, VERSION);
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn v1_encoding_drops_the_v2_fields_and_still_decodes() {
        // A v1 peer never sees stamps or the client send field; this
        // build reads its frames back with those fields zeroed.
        let batch = Frame::SubmitBatch {
            jobs: vec![WireJob {
                id: 1,
                release: 0.0,
                proc_time: 1.0,
                deadline: 3.0,
            }],
            client_send_ns: 99,
        };
        let bytes = encode_frame_v(&batch, 1);
        let (version, back) = read_frame_v(&mut bytes.as_slice()).unwrap();
        assert_eq!(version, 1);
        match back {
            Frame::SubmitBatch {
                jobs,
                client_send_ns,
            } => {
                assert_eq!(jobs.len(), 1);
                assert_eq!(client_send_ns, 0);
            }
            other => panic!("unexpected frame {other:?}"),
        }
        let bytes = encode_frame_v(&stamped(), 1);
        let (_, back) = read_frame_v(&mut bytes.as_slice()).unwrap();
        match (back, stamped()) {
            (Frame::Decision(got), Frame::Decision(sent)) => {
                assert_eq!(got.event, sent.event);
                assert_eq!(got.stamps, TimelineStamps::empty());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn retry_degrades_to_a_shard_failed_reject_for_old_peers() {
        for old in [1u8, 2] {
            let bytes = encode_frame_v(&Frame::Retry { job: 9 }, old);
            let (version, back) = read_frame_v(&mut bytes.as_slice()).unwrap();
            assert_eq!(version, old);
            match back {
                Frame::Reject { job, code, .. } => {
                    assert_eq!(job, Some(9));
                    assert_eq!(code, RejectCode::ShardFailed);
                }
                other => panic!("expected a reject, got {other:?}"),
            }
        }
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = encode_frame(&Frame::Drain);
        bytes[2] = VERSION + 1;
        // Checksum covers the header, so repair it after the bump.
        let len = bytes.len();
        let sum = fnv1a32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            read_frame(&mut bytes.as_slice()),
            Err(ProtoError::BadVersion(VERSION + 1))
        );
    }
}
