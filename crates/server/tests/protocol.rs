//! Wire-protocol properties: every frame type round-trips bit-exactly,
//! and every malformed input — truncation at any offset, corrupted
//! bytes, hostile headers — produces a typed [`ProtoError`], never a
//! panic and never a silently wrong frame.

use cslack_obs::flight::StampedDecision;
use cslack_obs::timeline::TimelineStamps;
use cslack_obs::trace::{DecisionEvent, RejectReason};
use cslack_server::proto::{
    self, encode_frame, read_frame, Frame, ProtoError, RejectCode, TenantStats, TenantSummary,
    WireJob, HEADER_LEN, MAGIC, MAX_FRAME, VERSION,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..128, 0..12).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| char::from_u32(97 + c % 26).unwrap())
            .collect()
    })
}

fn arb_opt_f64() -> impl Strategy<Value = Option<f64>> {
    (any::<bool>(), -1e6f64..1e6).prop_map(|(some, v)| some.then_some(v))
}

fn arb_opt_u32() -> impl Strategy<Value = Option<u32>> {
    (any::<bool>(), any::<u32>()).prop_map(|(some, v)| some.then_some(v))
}

fn arb_wire_job() -> impl Strategy<Value = WireJob> {
    (any::<u32>(), -1e9f64..1e9, -1e9f64..1e9, -1e9f64..1e9).prop_map(
        |(id, release, proc_time, deadline)| WireJob {
            id,
            release,
            proc_time,
            deadline,
        },
    )
}

fn arb_reject_code() -> impl Strategy<Value = RejectCode> {
    prop_oneof![
        Just(RejectCode::Protocol),
        Just(RejectCode::Malformed),
        Just(RejectCode::UnknownTenant),
        Just(RejectCode::DuplicateJob),
        Just(RejectCode::ShardFailed),
        Just(RejectCode::Closed),
        Just(RejectCode::Undecided),
        Just(RejectCode::BadState),
    ]
}

fn arb_reject_reason() -> impl Strategy<Value = Option<RejectReason>> {
    (any::<bool>(), 0usize..RejectReason::ALL.len())
        .prop_map(|(some, i)| some.then(|| RejectReason::ALL[i]))
}

fn arb_decision() -> impl Strategy<Value = DecisionEvent> {
    // Tuple strategies cap at 8 elements; split the 15 fields across
    // two tuples and zip them with prop_map over a pair.
    let head = (
        any::<u64>(),
        any::<u32>(),
        0usize..64,
        -1e9f64..1e9,
        1e-9f64..1e9,
        -1e9f64..1e9,
        any::<u32>(),
        arb_opt_f64(),
    );
    let tail = (
        arb_opt_f64(),
        any::<bool>(),
        arb_opt_u32(),
        arb_opt_f64(),
        arb_reject_reason(),
        any::<u64>(),
        any::<u64>(),
    );
    (head, tail).prop_map(|(head, tail)| {
        let (seq, job, shard, release, proc_time, deadline, candidates, threshold) = head;
        let (min_load, accepted, machine, start, reject_reason, latency_ns, queue_wait_ns) = tail;
        DecisionEvent {
            seq,
            job,
            shard,
            release,
            proc_time,
            deadline,
            candidates,
            threshold,
            min_load,
            accepted,
            machine,
            start,
            reject_reason,
            latency_ns,
            queue_wait_ns,
        }
    })
}

/// Every one of the ten frame types, with fully randomized content.
fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_string().prop_map(|tenant| Frame::Hello { tenant }),
        (
            arb_string(),
            any::<u32>(),
            -10f64..10.0,
            any::<u32>(),
            any::<u64>(),
            arb_string(),
            any::<u32>(),
        )
            .prop_map(
                |(tenant, m, eps, shards, seed, algorithm, inflight_limit)| Frame::HelloAck {
                    tenant,
                    m,
                    eps,
                    shards,
                    seed,
                    algorithm,
                    inflight_limit,
                }
            ),
        (prop::collection::vec(arb_wire_job(), 0..20), any::<u64>()).prop_map(
            |(jobs, client_send_ns)| Frame::SubmitBatch {
                jobs,
                client_send_ns,
            }
        ),
        (arb_decision(), prop::collection::vec(any::<u64>(), 7)).prop_map(|(event, stamps)| {
            let stamps: [u64; 7] = stamps.try_into().unwrap();
            Frame::Decision(StampedDecision::new(event, TimelineStamps(stamps)))
        }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(inflight, limit, refused)| {
            Frame::Backpressure {
                inflight,
                limit,
                refused,
            }
        }),
        (arb_opt_u32(), arb_reject_code(), arb_string())
            .prop_map(|(job, code, detail)| Frame::Reject { job, code, detail }),
        Just(Frame::StatsRequest),
        (
            arb_string(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<bool>(),
        )
            .prop_map(
                |(tenant, submitted, accepted, rejected, stalls, inflight, drained)| {
                    Frame::Stats(TenantStats {
                        tenant,
                        submitted,
                        accepted,
                        rejected,
                        backpressure_stalls: stalls,
                        inflight,
                        drained,
                    })
                }
            ),
        Just(Frame::Drain),
        (
            arb_string(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            -1e9f64..1e9,
            -1e9f64..1e9,
            any::<u32>(),
            any::<u32>(),
        )
            .prop_map(
                |(tenant, submitted, accepted, rejected, load, makespan, machines, failed)| {
                    Frame::Summary(TenantSummary {
                        tenant,
                        submitted,
                        accepted,
                        rejected,
                        accepted_load: load,
                        makespan,
                        machines,
                        failed_shards: failed,
                    })
                }
            ),
    ]
}

// ---------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// encode → decode is the identity for every frame type.
    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        let back = read_frame(&mut bytes.as_slice()).expect("well-formed frame must decode");
        prop_assert_eq!(back, frame);
    }

    /// Truncating a valid frame at ANY byte boundary yields a typed
    /// error (never a panic, never a bogus frame). A cut inside one
    /// frame can never resynchronize into a valid one.
    #[test]
    fn truncation_at_every_offset_is_typed(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            match read_frame(&mut &bytes[..cut]) {
                Err(ProtoError::Eof) => prop_assert_eq!(cut, 0, "Eof only at a frame boundary"),
                Err(ProtoError::Truncated) => {}
                other => panic!("cut at {cut}/{} gave {other:?}", bytes.len()),
            }
        }
    }

    /// Flipping any single byte of a valid frame is caught: by the
    /// header validation if it hits the header, by the checksum
    /// otherwise. No flip may decode into a *different* valid frame.
    #[test]
    fn single_byte_corruption_is_caught(frame in arb_frame(), pos in any::<usize>(), bit in 0u32..8) {
        let bytes = encode_frame(&frame);
        let mut corrupt = bytes.clone();
        let pos = pos % corrupt.len();
        corrupt[pos] ^= 1 << bit;
        match read_frame(&mut corrupt.as_slice()) {
            // A flip in the length field can make the frame read past
            // its end (Truncated) or beyond the cap (Oversized); any
            // other flip must be BadMagic/BadVersion/BadChecksum.
            Err(
                ProtoError::BadMagic(_)
                | ProtoError::BadVersion(_)
                | ProtoError::BadChecksum
                | ProtoError::Oversized(_)
                | ProtoError::Truncated,
            ) => {}
            Ok(decoded) => panic!("corrupted byte {pos} decoded as {decoded:?}"),
            Err(other) => panic!("corrupted byte {pos} gave unexpected error {other:?}"),
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_frame(&mut bytes.as_slice());
    }
}

// ---------------------------------------------------------------------
// Hostile-header cases
// ---------------------------------------------------------------------

/// A syntactically valid header + checksum around an arbitrary payload,
/// for forging frames the encoder would never produce.
fn forge(version: u8, type_byte: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(version);
    buf.push(type_byte);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = proto::fnv1a32(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

#[test]
fn bad_magic_is_rejected_before_anything_else() {
    let mut bytes = encode_frame(&Frame::Drain);
    bytes[0] ^= 0xFF;
    let wrong = u16::from_le_bytes([bytes[0], bytes[1]]);
    assert_eq!(
        read_frame(&mut bytes.as_slice()),
        Err(ProtoError::BadMagic(wrong))
    );
}

#[test]
fn wrong_version_is_rejected() {
    let bytes = forge(VERSION + 1, 0x09, &[]);
    assert_eq!(
        read_frame(&mut bytes.as_slice()),
        Err(ProtoError::BadVersion(VERSION + 1))
    );
}

#[test]
fn oversized_length_is_rejected_without_allocation() {
    // Header announces 4 GiB-ish payload; the reader must refuse from
    // the header alone (this test would OOM or hang otherwise).
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(VERSION);
    buf.push(0x03);
    buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    assert_eq!(
        read_frame(&mut buf.as_slice()),
        Err(ProtoError::Oversized(MAX_FRAME + 1))
    );
}

#[test]
fn unknown_frame_type_is_recoverable() {
    let bytes = forge(VERSION, 0x7F, &[]);
    let err = read_frame(&mut bytes.as_slice()).unwrap_err();
    assert_eq!(err, ProtoError::UnknownType(0x7F));
    assert!(
        !err.is_fatal(),
        "framing is still in sync after a full read"
    );
}

#[test]
fn hostile_submit_count_is_rejected_before_allocation() {
    // A SubmitBatch claiming u32::MAX jobs right after its v2 client
    // stamp: the count sanity check must fire before
    // `Vec::with_capacity`.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes()); // client_send_ns
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    let bytes = forge(VERSION, 0x03, &payload);
    assert_eq!(
        read_frame(&mut bytes.as_slice()),
        Err(ProtoError::Malformed("job count exceeds payload"))
    );
}

#[test]
fn trailing_bytes_are_an_error() {
    // A Drain frame with one smuggled payload byte.
    let bytes = forge(VERSION, 0x09, &[0xAA]);
    assert_eq!(
        read_frame(&mut bytes.as_slice()),
        Err(ProtoError::Malformed("trailing bytes after payload"))
    );
}

#[test]
fn overlong_string_is_rejected() {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(proto::MAX_STRING as u32 + 1).to_le_bytes());
    let bytes = forge(VERSION, 0x01, &payload);
    assert_eq!(
        read_frame(&mut bytes.as_slice()),
        Err(ProtoError::Malformed("string field over length cap"))
    );
}

#[test]
fn non_utf8_string_is_rejected() {
    let mut payload = Vec::new();
    payload.extend_from_slice(&2u32.to_le_bytes());
    payload.extend_from_slice(&[0xFF, 0xFE]);
    let bytes = forge(VERSION, 0x01, &payload);
    assert_eq!(
        read_frame(&mut bytes.as_slice()),
        Err(ProtoError::Malformed("string not UTF-8"))
    );
}

#[test]
fn fatality_is_exactly_the_resync_boundary() {
    // Recoverable: the frame was fully read, the stream is in sync.
    assert!(!ProtoError::UnknownType(0x50).is_fatal());
    assert!(!ProtoError::Malformed("x").is_fatal());
    // Fatal: sync is lost or the transport itself failed.
    for fatal in [
        ProtoError::Eof,
        ProtoError::Truncated,
        ProtoError::BadMagic(0),
        ProtoError::BadVersion(9),
        ProtoError::Oversized(u32::MAX),
        ProtoError::BadChecksum,
        ProtoError::Io("broken pipe".into()),
    ] {
        assert!(fatal.is_fatal(), "{fatal:?}");
    }
}

#[test]
fn back_to_back_frames_stream_in_order() {
    let frames = [
        Frame::Hello {
            tenant: "alpha".into(),
        },
        Frame::SubmitBatch {
            jobs: vec![WireJob {
                id: 7,
                release: 0.0,
                proc_time: 1.0,
                deadline: 3.0,
            }],
            client_send_ns: 0,
        },
        Frame::StatsRequest,
        Frame::Drain,
    ];
    let mut wire = Vec::new();
    for frame in &frames {
        wire.extend_from_slice(&encode_frame(frame));
    }
    let mut r = wire.as_slice();
    for frame in &frames {
        assert_eq!(&read_frame(&mut r).unwrap(), frame);
    }
    assert_eq!(read_frame(&mut r), Err(ProtoError::Eof));
    assert_eq!(
        wire.len(),
        frames.iter().map(|f| encode_frame(f).len()).sum::<usize>()
    );
    let _ = HEADER_LEN; // layout constant is part of the public contract
}
