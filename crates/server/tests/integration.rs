//! End-to-end server tests: the wire decision stream is bit-identical
//! to an in-process engine run, flight snapshots fetched over HTTP
//! replay cleanly, and one tenant's faults or quota pressure never
//! touch another tenant.

use cslack_engine::{Engine, EngineConfig, ObsConfig};
use cslack_obs::flight::StampedDecision;
use cslack_obs::timeline::Stage;
use cslack_server::client::Connection;
use cslack_server::proto::{Frame, RejectCode, TenantSummary, WireJob};
use cslack_server::{Server, ServerConfig, TenantSpec};
use cslack_sim::fault::FaultSpec;
use cslack_sim::sweep::AlgoKind;
use cslack_workloads::WorkloadSpec;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const EPHEMERAL: &str = "127.0.0.1:0";

fn start_server(tenants: Vec<TenantSpec>, telemetry: bool) -> Server {
    Server::start(ServerConfig {
        listen: EPHEMERAL.parse().unwrap(),
        telemetry: telemetry.then(|| EPHEMERAL.parse().unwrap()),
        tenants,
    })
    .expect("server starts")
}

fn wire_jobs(m: usize, eps: f64, n: usize, seed: u64) -> Vec<WireJob> {
    WorkloadSpec::default_spec(m, eps, n, seed)
        .generate()
        .expect("workload generates")
        .jobs()
        .iter()
        .map(|j| WireJob {
            id: j.id.0,
            release: j.release.raw(),
            proc_time: j.proc_time,
            deadline: j.deadline.raw(),
        })
        .collect()
}

/// What one connection saw while pushing a workload through a tenant.
#[derive(Default)]
struct RunOutcome {
    decisions: Vec<StampedDecision>,
    rejects: Vec<(Option<u32>, RejectCode)>,
    backpressured: u64,
    summary: Option<TenantSummary>,
}

/// Submits `jobs` in batches, then drains, collecting every frame the
/// server streams back until the summary arrives.
fn push_and_drain(conn: &mut Connection, jobs: &[WireJob], batch: usize) -> RunOutcome {
    for chunk in jobs.chunks(batch) {
        conn.send(&Frame::SubmitBatch {
            jobs: chunk.to_vec(),
            client_send_ns: 7_777,
        })
        .expect("submit");
    }
    conn.send(&Frame::Drain).expect("drain");
    let mut out = RunOutcome::default();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "server never sent the summary");
        match conn.recv().expect("stream stays whole until the summary") {
            Frame::Decision(event) => out.decisions.push(event),
            Frame::Reject { job, code, .. } => out.rejects.push((job, code)),
            Frame::Backpressure { refused, .. } => out.backpressured += u64::from(refused),
            Frame::Summary(summary) => {
                out.summary = Some(summary);
                return out;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

/// The deterministic fields of a decision — timings excluded, since
/// wall-clock latency legitimately differs between runs.
type DecisionKey = (usize, u64, u32, bool, Option<u32>, Option<f64>);

fn keys(mut events: Vec<StampedDecision>) -> Vec<DecisionKey> {
    events.sort_by_key(|e| (e.shard, e.seq));
    events
        .into_iter()
        .map(|e| (e.shard, e.seq, e.job, e.accepted, e.machine, e.start))
        .collect()
}

/// Minimal HTTP GET returning (status line, body bytes).
fn http_get(addr: SocketAddr, path: &str) -> (String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("telemetry reachable");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body split");
    let head = String::from_utf8_lossy(&response[..split]);
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, response[split + 4..].to_vec())
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

/// The tentpole contract: for a fixed seed and workload, the decision
/// stream observed over the network is bit-identical (in every
/// deterministic field) to an in-process engine run, and the flight
/// snapshot fetched over HTTP replays bit-identically offline.
#[test]
fn wire_decision_stream_matches_in_process_engine() {
    let (m, eps, n, seed, shards) = (4, 0.5, 400, 42u64, 2);
    let mut spec = TenantSpec::new("alpha", m, eps);
    spec.shards = shards;
    spec.seed = seed;
    let server = start_server(vec![spec], true);

    let mut conn = Connection::connect(server.addr()).expect("connect");
    let info = conn.hello("alpha").expect("handshake");
    assert_eq!(info.m, m);
    assert_eq!(info.shards, shards);
    assert_eq!(info.algorithm, "threshold");

    let jobs = wire_jobs(m, eps, n, seed);
    let outcome = push_and_drain(&mut conn, &jobs, 64);
    assert_eq!(
        outcome.decisions.len(),
        n,
        "every job gets exactly one decision"
    );
    assert!(outcome.rejects.is_empty(), "{:?}", outcome.rejects);
    let summary = outcome.summary.as_ref().expect("summary streamed");
    assert_eq!(summary.submitted, n as u64);
    assert_eq!(summary.failed_shards, 0);
    assert!(summary.accepted > 0);

    // The wire stamps carry the full pipeline: the client's own send
    // stamp echoed back verbatim, every server stage stamped, and the
    // server-side stages in pipeline order.
    for d in &outcome.decisions {
        assert_eq!(d.stamps.get(Stage::ClientSend), 7_777, "client stamp echo");
        for stage in [
            Stage::FrameDecode,
            Stage::Dispatch,
            Stage::Enqueue,
            Stage::Dequeue,
            Stage::Decide,
            Stage::Delivery,
        ] {
            assert_ne!(d.stamps.get(stage), 0, "{stage:?} unstamped on J{}", d.job);
        }
        assert!(d.stamps.server_monotone(), "J{} stamps reordered", d.job);
    }

    // Reference: the same engine geometry driven in-process.
    let (tx, rx) = crossbeam::channel::unbounded::<StampedDecision>();
    let obs = ObsConfig {
        decisions: Some(tx),
        ..ObsConfig::default()
    };
    let engine = Engine::start_observed(m, EngineConfig::new(shards), obs, move |shard, group| {
        AlgoKind::Threshold.build(group, eps, seed.wrapping_add(shard as u64))
    })
    .expect("engine starts");
    let instance = WorkloadSpec::default_spec(m, eps, n, seed)
        .generate()
        .unwrap();
    for result in engine.submit_batch(instance.jobs()) {
        result.expect("in-process submit");
    }
    let report = engine.finish().expect("in-process finish");
    let reference: Vec<StampedDecision> = rx.iter().collect();

    assert_eq!(keys(outcome.decisions), keys(reference));
    assert_eq!(summary.accepted, report.metrics.accepted);
    assert!((summary.accepted_load - report.metrics.accepted_load).abs() < 1e-9);

    // The post-drain flight snapshot, fetched over the wire, replays
    // bit-identically against freshly built schedulers.
    let telemetry = server.telemetry_addr().expect("telemetry bound");
    let (status, cfr) = http_get(telemetry, "/flight/snapshot?tenant=alpha");
    assert!(status.contains("200"), "{status}");
    let snap = cslack_obs::FlightSnapshot::read_cfr(&mut cfr.as_slice()).expect("valid cfr");
    let replay = cslack_sim::audit::replay_snapshot(&snap, |shard, group| {
        AlgoKind::Threshold.build(group, eps, seed.wrapping_add(shard as u64))
    })
    .expect("replay runs");
    assert!(replay.is_identical(), "{:?}", replay.divergence);
    assert_eq!(replay.decisions_replayed, n as u64);

    server.shutdown();
}

/// Two connections to the same tenant interleave submissions; every
/// job still gets exactly one decision, routed to the connection that
/// submitted it.
#[test]
fn decisions_route_to_the_submitting_connection() {
    let mut spec = TenantSpec::new("alpha", 4, 0.5);
    spec.seed = 7;
    let server = start_server(vec![spec], false);

    let jobs = wire_jobs(4, 0.5, 200, 7);
    let (first_half, second_half) = jobs.split_at(100);
    // Distinct id spaces per connection (the tenant namespace is
    // shared).
    let second_half: Vec<WireJob> = second_half
        .iter()
        .map(|j| WireJob {
            id: j.id + 1000,
            ..*j
        })
        .collect();

    let mut a = Connection::connect(server.addr()).expect("connect a");
    let mut b = Connection::connect(server.addr()).expect("connect b");
    a.hello("alpha").expect("hello a");
    b.hello("alpha").expect("hello b");
    for (chunk_a, chunk_b) in first_half.chunks(10).zip(second_half.chunks(10)) {
        a.send(&Frame::SubmitBatch {
            jobs: chunk_a.to_vec(),
            client_send_ns: 0,
        })
        .unwrap();
        b.send(&Frame::SubmitBatch {
            jobs: chunk_b.to_vec(),
            client_send_ns: 0,
        })
        .unwrap();
    }
    let mut seen_a = Vec::new();
    while seen_a.len() < 100 {
        if let Frame::Decision(e) = a.recv().expect("a streams decisions") {
            seen_a.push(e.job);
        }
    }
    let mut seen_b = Vec::new();
    while seen_b.len() < 100 {
        if let Frame::Decision(e) = b.recv().expect("b streams decisions") {
            seen_b.push(e.job);
        }
    }
    assert!(seen_a.iter().all(|&id| id < 1000), "a got b's decisions");
    assert!(seen_b.iter().all(|&id| id >= 1000), "b got a's decisions");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Tenant isolation
// ---------------------------------------------------------------------

/// Chaos drill: one tenant's shard panics mid-run. That tenant keeps
/// getting *typed* answers (ShardFailed rejects or an Undecided sweep
/// at drain) while a second tenant's run is completely untouched.
#[test]
fn a_failed_shard_is_contained_to_its_tenant() {
    let mut faulty = TenantSpec::new("faulty", 4, 0.5);
    faulty.shards = 2;
    faulty.seed = 3;
    faulty.fault = Some("panic@5".parse::<FaultSpec>().unwrap());
    let healthy = TenantSpec::new("healthy", 4, 0.5);
    let server = start_server(vec![faulty, healthy], true);

    let n = 200;
    let jobs = wire_jobs(4, 0.5, n, 3);

    // Drive the faulty tenant slowly enough for the shard-0 panic (at
    // its 5th decision) to land while submissions are still arriving.
    let mut conn = Connection::connect(server.addr()).expect("connect faulty");
    conn.hello("faulty").expect("hello faulty");
    for chunk in jobs.chunks(20) {
        conn.send(&Frame::SubmitBatch {
            jobs: chunk.to_vec(),
            client_send_ns: 0,
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    // Health must flag the dead shard while the tenant is still live
    // (after drain the engine is gone and reports nothing). The panic
    // has already landed, but give the watchdog a moment to notice.
    let telemetry = server.telemetry_addr().unwrap();
    let health_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = http_get(telemetry, "/healthz");
        if status.contains("503") {
            assert!(String::from_utf8_lossy(&body).starts_with("degraded"));
            break;
        }
        assert!(
            Instant::now() < health_deadline,
            "healthz never reported the failed shard: {status}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    conn.send(&Frame::Drain).unwrap();
    let mut outcome = RunOutcome::default();
    loop {
        match conn
            .recv()
            .expect("typed answers, not a dropped connection")
        {
            Frame::Decision(e) => outcome.decisions.push(e),
            Frame::Reject { job, code, .. } => outcome.rejects.push((job, code)),
            Frame::Summary(s) => {
                outcome.summary = Some(s);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    // Shard 1 keeps deciding; shard 0's jobs come back as typed
    // rejects. Every job is answered exactly once, one way or another.
    let summary = outcome.summary.expect("degraded drain still summarizes");
    assert_eq!(summary.failed_shards, 1, "exactly shard 0 died");
    assert_eq!(
        outcome.decisions.len() + outcome.rejects.len(),
        n,
        "every job answered: {} decisions + {:?}",
        outcome.decisions.len(),
        outcome.rejects
    );
    assert!(!outcome.rejects.is_empty(), "the dead shard's jobs bounce");
    assert!(
        outcome
            .rejects
            .iter()
            .all(|(_, code)| matches!(code, RejectCode::ShardFailed | RejectCode::Undecided)),
        "{:?}",
        outcome.rejects
    );
    // `panic@5` is 0-based: offers 0..=4 complete, the 6th kills the
    // shard.
    let shard0_decisions = outcome.decisions.iter().filter(|e| e.shard == 0).count();
    assert!(
        shard0_decisions <= 5,
        "shard 0 decided {shard0_decisions} jobs past its injected panic"
    );
    assert!(
        outcome.decisions.iter().any(|e| e.shard == 1),
        "the healthy shard keeps deciding"
    );

    // The other tenant never notices any of it.
    let mut conn = Connection::connect(server.addr()).expect("connect healthy");
    conn.hello("healthy").expect("hello healthy");
    let outcome = push_and_drain(&mut conn, &jobs, 64);
    assert_eq!(outcome.decisions.len(), n);
    assert!(outcome.rejects.is_empty());
    assert_eq!(outcome.summary.unwrap().failed_shards, 0);
    server.shutdown();
}

/// Recovery drill: with `recover` on, a mid-stream shard panic never
/// surfaces as a terminal `ShardFailed` reject — submissions caught in
/// the failure window get a transient `Retry` frame, the tenant's
/// watcher resurrects the shard by flight-ring replay, resubmitted
/// jobs get real decisions, and the tenant finishes with zero failed
/// shards and `cslack_shard_restarts_total` at 1.
///
/// The Retry window is the gap between the panic landing and the
/// watcher's next poll (≤ 10 ms), so catching a Retry in flight is
/// timing-dependent; the drill repeats with fresh servers until one
/// attempt observes it. Every other invariant is asserted on every
/// attempt.
#[test]
fn recovery_turns_shard_failure_into_transient_retries() {
    let mut total_retried = 0u64;
    for attempt in 0..5u64 {
        let mut spec = TenantSpec::new("phoenix", 4, 0.5);
        spec.shards = 2;
        spec.seed = 7 + attempt;
        spec.inflight_limit = 4096;
        spec.fault = Some("panic@5".parse::<FaultSpec>().unwrap());
        spec.recover = true;
        let server = start_server(vec![spec], true);

        let n = 2000;
        let jobs = wire_jobs(4, 0.5, n, 7);
        let mut conn = Connection::connect(server.addr()).expect("connect");
        conn.hello("phoenix").expect("hello");
        // Pound the stream so some batch lands between the panic and
        // the watcher's restart.
        for chunk in jobs.chunks(50) {
            conn.send(&Frame::SubmitBatch {
                jobs: chunk.to_vec(),
                client_send_ns: 0,
            })
            .unwrap();
        }

        let mut answered = 0usize;
        let mut retried = 0u64;
        let mut rejects = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(60);
        while answered < n {
            assert!(Instant::now() < deadline, "jobs never fully answered");
            match conn.recv().expect("stream stays whole") {
                Frame::Decision(_) => answered += 1,
                Frame::Reject { job, code, .. } => {
                    rejects.push((job, code));
                    answered += 1;
                }
                Frame::Retry { job } => {
                    retried += 1;
                    // Transient by contract: give the watcher a beat,
                    // then resubmit and expect a real decision.
                    std::thread::sleep(Duration::from_millis(10));
                    let wire = *jobs
                        .iter()
                        .find(|w| w.id == job)
                        .expect("retry names a submitted job");
                    conn.send(&Frame::SubmitBatch {
                        jobs: vec![wire],
                        client_send_ns: 0,
                    })
                    .unwrap();
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert!(
            rejects
                .iter()
                .all(|(_, code)| !matches!(code, RejectCode::ShardFailed)),
            "recover tenants never see terminal ShardFailed: {rejects:?}"
        );

        // Post-recovery, pre-drain: health is green again and the
        // restart counter is up — exactly one resurrection, because
        // the injected fault is one-shot under `recover`.
        let telemetry = server.telemetry_addr().unwrap();
        let (status, _) = http_get(telemetry, "/healthz");
        assert!(status.contains("200"), "healthz after recovery: {status}");
        let (status, body) = http_get(telemetry, "/metrics");
        assert!(status.contains("200"), "{status}");
        let page = String::from_utf8_lossy(&body);
        assert!(
            page.contains("cslack_shard_restarts_total{tenant=\"phoenix\"} 1"),
            "restart counter missing:\n{page}"
        );
        assert!(
            !page.contains("NaN"),
            "non-finite metric published:\n{page}"
        );

        conn.send(&Frame::Drain).unwrap();
        let summary = loop {
            match conn.recv().expect("summary") {
                Frame::Summary(s) => break s,
                Frame::Decision(_) | Frame::Reject { .. } | Frame::Retry { .. } => {}
                other => panic!("unexpected frame {other:?}"),
            }
        };
        assert_eq!(
            summary.failed_shards, 0,
            "the resurrected shard finishes healthy"
        );
        server.shutdown();

        total_retried += retried;
        if total_retried > 0 {
            break;
        }
    }
    assert!(
        total_retried > 0,
        "five drills never caught a submission in the retry window"
    );
}

/// A batch that would exceed the tenant's in-flight quota is refused
/// whole with a typed Backpressure frame; a conforming batch on the
/// same connection still goes through, and other tenants are never
/// throttled by it.
#[test]
fn quota_pressure_is_typed_and_tenant_scoped() {
    let mut small = TenantSpec::new("small", 4, 0.5);
    small.inflight_limit = 16;
    small.seed = 11;
    let big = TenantSpec::new("big", 4, 0.5);
    let server = start_server(vec![small, big], false);

    let jobs = wire_jobs(4, 0.5, 32, 11);
    let mut conn = Connection::connect(server.addr()).expect("connect");
    conn.hello("small").expect("hello");
    // 17 > 16: refused wholesale, nothing enters the engine.
    conn.send(&Frame::SubmitBatch {
        jobs: jobs[..17].to_vec(),
        client_send_ns: 0,
    })
    .unwrap();
    match conn.recv().expect("typed refusal") {
        Frame::Backpressure {
            inflight,
            limit,
            refused,
        } => {
            assert_eq!(inflight, 0);
            assert_eq!(limit, 16);
            assert_eq!(refused, 17);
        }
        other => panic!("expected Backpressure, got {other:?}"),
    }
    // A conforming batch is admitted and fully decided.
    let outcome = push_and_drain(&mut conn, &jobs[..16], 16);
    assert_eq!(outcome.decisions.len(), 16);
    assert_eq!(outcome.backpressured, 0);

    // The sibling tenant's quota is its own.
    let mut conn = Connection::connect(server.addr()).expect("connect big");
    conn.hello("big").expect("hello big");
    let outcome = push_and_drain(&mut conn, &wire_jobs(4, 0.5, 64, 5), 32);
    assert_eq!(outcome.decisions.len(), 64);
    assert_eq!(outcome.backpressured, 0);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Protocol edge behavior against a live server
// ---------------------------------------------------------------------

#[test]
fn malformed_and_duplicate_jobs_get_typed_rejects() {
    let mut spec = TenantSpec::new("alpha", 4, 0.5);
    // Slow the (single) shard down so the duplicate check races
    // nothing: the first copy is still pending when the second arrives.
    spec.fault = Some("delay@20000".parse::<FaultSpec>().unwrap());
    let server = start_server(vec![spec], false);

    let mut conn = Connection::connect(server.addr()).expect("connect");
    conn.hello("alpha").expect("hello");
    let good = WireJob {
        id: 1,
        release: 0.0,
        proc_time: 1.0,
        deadline: 3.0,
    };
    conn.send(&Frame::SubmitBatch {
        jobs: vec![
            good,
            WireJob {
                id: 2,
                proc_time: -1.0,
                ..good
            },
            WireJob {
                id: 3,
                release: f64::NAN,
                ..good
            },
            WireJob { ..good }, // duplicate of id 1, same batch
        ],
        client_send_ns: 0,
    })
    .unwrap();

    let mut rejects = Vec::new();
    let mut decisions = 0;
    while rejects.len() < 3 || decisions < 1 {
        match conn.recv().expect("typed answers") {
            Frame::Reject { job, code, .. } => rejects.push((job, code)),
            Frame::Decision(_) => decisions += 1,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    rejects.sort_by_key(|(job, code)| (*job, code.as_str()));
    assert_eq!(
        rejects,
        vec![
            (Some(1), RejectCode::DuplicateJob),
            (Some(2), RejectCode::Malformed),
            (Some(3), RejectCode::Malformed),
        ]
    );
    server.shutdown();
}

#[test]
fn unknown_tenant_and_protocol_garbage_are_typed() {
    let server = start_server(vec![TenantSpec::new("alpha", 2, 0.5)], false);

    // Unknown tenant: typed reject, then the server hangs up.
    let mut conn = Connection::connect(server.addr()).expect("connect");
    let err = conn.hello("nope").expect_err("unknown tenant refused");
    assert!(err.contains("unknown_tenant"), "{err}");

    // Raw garbage instead of a frame: the server answers with a typed
    // Protocol reject before closing, it does not just drop the socket.
    let mut raw = TcpStream::connect(server.addr()).expect("connect raw");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write garbage");
    raw.flush().unwrap();
    match cslack_server::proto::read_frame(&mut raw) {
        Ok(Frame::Reject { code, .. }) => assert_eq!(code, RejectCode::Protocol),
        other => panic!("expected typed Protocol reject, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn stats_track_the_run_and_drain_is_idempotent_across_connections() {
    let mut spec = TenantSpec::new("alpha", 4, 0.5);
    spec.seed = 9;
    let server = start_server(vec![spec], false);

    let mut conn = Connection::connect(server.addr()).expect("connect");
    conn.hello("alpha").expect("hello");
    let jobs = wire_jobs(4, 0.5, 50, 9);
    let outcome = push_and_drain(&mut conn, &jobs, 25);
    let summary = outcome.summary.unwrap();
    assert!(server.all_drained());

    // Stats after drain: counters survive, drained flag set.
    conn.send(&Frame::StatsRequest).unwrap();
    match conn.recv().expect("stats") {
        Frame::Stats(stats) => {
            assert_eq!(stats.submitted, 50);
            assert_eq!(stats.accepted, summary.accepted);
            assert_eq!(stats.inflight, 0);
            assert!(stats.drained);
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    // A second drain — from a *different* connection — returns the
    // same summary instead of inventing a new one.
    let mut conn2 = Connection::connect(server.addr()).expect("connect 2");
    conn2.hello("alpha").expect("hello 2");
    let again = conn2.drain().expect("idempotent drain");
    assert_eq!(again, summary);

    // Submitting after drain is a typed Closed reject.
    conn.send(&Frame::SubmitBatch {
        jobs: vec![WireJob {
            id: 999,
            release: 0.0,
            proc_time: 1.0,
            deadline: 9.0,
        }],
        client_send_ns: 0,
    })
    .unwrap();
    match conn.recv().expect("typed answer") {
        Frame::Reject { job, code, .. } => {
            assert_eq!(job, Some(999));
            assert_eq!(code, RejectCode::Closed);
        }
        other => panic!("expected Closed reject, got {other:?}"),
    }
    server.shutdown();
}
