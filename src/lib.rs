//! # cslack — Commitment and Slack for Online Load Maximization
//!
//! A complete Rust reproduction of the SPAA 2020 paper by Jamalabadi,
//! Schwiegelshohn and Schwiegelshohn: the `Threshold` online admission
//! algorithm with immediate commitment (Algorithm 1), the competitive-ratio
//! function `c(eps, m)` with its phase structure, the Section-3 lower-bound
//! adversary, baselines from the surrounding literature, offline optimal
//! solvers, synthetic workloads, and an event-driven simulator.
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`kernel`] — jobs, instances, schedules, validation.
//! * [`ratio`] — the function `c(eps, m)`, parameters `f_q`, corner values.
//! * [`algorithms`] — `Threshold` and every baseline (`OnlineScheduler`).
//! * [`adversary`] — the lower-bound adversary (Theorem 1).
//! * [`workloads`] — random instance generators.
//! * [`opt`] — offline optimal and upper bounds.
//! * [`sim`] — the simulator and parallel sweep harness.
//! * [`engine`] — the sharded concurrent admission-control service.
//! * [`obs`] — observability: decision traces with typed reject
//!   reasons, log-bucketed histogram metrics, span profiling timers.
//!
//! ## Quickstart
//!
//! ```
//! use cslack::prelude::*;
//!
//! // Two machines, slack 1/2.
//! let inst = InstanceBuilder::new(2, 0.5)
//!     .tight_job(Time::ZERO, 1.0)
//!     .tight_job(Time::ZERO, 1.0)
//!     .tight_job(Time::new(0.1), 4.0)
//!     .build()
//!     .unwrap();
//!
//! let mut alg = Threshold::for_instance(&inst);
//! let report = simulate(&inst, &mut alg).unwrap();
//! assert!(report.accepted_load() > 0.0);
//! ```

pub use cslack_adversary as adversary;
pub use cslack_algorithms as algorithms;
pub use cslack_engine as engine;
pub use cslack_kernel as kernel;
pub use cslack_obs as obs;
pub use cslack_opt as opt;
pub use cslack_ratio as ratio;
pub use cslack_sim as sim;
pub use cslack_workloads as workloads;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use cslack_algorithms::{Decision, Greedy, OnlineScheduler, Threshold};
    pub use cslack_engine::{Engine, EngineConfig, EngineMetrics, EngineReport, ObsConfig};
    pub use cslack_kernel::{Instance, InstanceBuilder, Job, JobId, MachineId, Schedule, Time};
    pub use cslack_obs::{MetricsRegistry, RejectReason};
    pub use cslack_ratio::RatioFn;
    pub use cslack_sim::{simulate, SimReport};
}
