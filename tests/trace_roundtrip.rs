//! Trace persistence integration: a saved instance replays to identical
//! results after a round trip through JSON.

use cslack::prelude::*;
use cslack::workloads::{scenarios, trace, WorkloadSpec};

#[test]
fn saved_trace_replays_identically() {
    let dir = std::env::temp_dir().join("cslack-it-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.json");

    let inst = WorkloadSpec::default_spec(3, 0.25, 64, 99)
        .generate()
        .unwrap();
    let before = simulate(&inst, &mut Threshold::for_instance(&inst)).unwrap();

    trace::save(&inst, &path).unwrap();
    let loaded = trace::load(&path).unwrap();
    assert_eq!(loaded, inst);

    let after = simulate(&loaded, &mut Threshold::for_instance(&loaded)).unwrap();
    assert_eq!(before.decisions, after.decisions);
    assert_eq!(before.accepted_load(), after.accepted_load());
    std::fs::remove_file(&path).ok();
}

#[test]
fn scenario_instances_round_trip_through_strings() {
    for inst in [
        scenarios::smoke(2, 0.5),
        scenarios::iaas_mix(3, 0.2, 40, 1),
        scenarios::bursty_heavy_tail(2, 0.4, 30, 2),
    ] {
        let s = trace::to_string(&inst).unwrap();
        assert_eq!(trace::from_string(&s).unwrap(), inst);
    }
}

#[test]
fn adversary_instances_round_trip_too() {
    use cslack::adversary::{run, AdversaryConfig};
    let out = run(&AdversaryConfig::new(2, 0.3), &mut Greedy::new(2));
    let s = trace::to_string(&out.instance).unwrap();
    let loaded = trace::from_string(&s).unwrap();
    assert_eq!(loaded, out.instance);
    // Replaying greedy on the loaded instance reproduces the same load.
    let replay = simulate(&loaded, &mut Greedy::new(2)).unwrap();
    assert!((replay.accepted_load() - out.online_load()).abs() < 1e-9);
}
