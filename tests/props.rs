//! Cross-crate property-based tests (proptest): the paper's invariants
//! on randomized workloads.

use cslack::algorithms::preemptive::PreemptiveEdf;
use cslack::prelude::*;
use cslack::ratio::RatioFn;
use cslack::workloads::{ArrivalLaw, SizeLaw, SlackLaw, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec(max_n: usize) -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..=4,     // m
        0.05f64..=1.0,  // eps
        1usize..=max_n, // n
        any::<u64>(),   // seed
        0usize..3,      // arrival law selector
        0usize..4,      // size law selector
        0usize..3,      // slack law selector
    )
        .prop_map(|(m, eps, n, seed, al, sl, dl)| WorkloadSpec {
            m,
            eps,
            n,
            arrivals: match al {
                0 => ArrivalLaw::Simultaneous,
                1 => ArrivalLaw::Poisson { rate: 2.0 },
                _ => ArrivalLaw::Bursty {
                    burst: 3,
                    rate: 1.0,
                },
            },
            sizes: match sl {
                0 => SizeLaw::Constant(1.0),
                1 => SizeLaw::Uniform { lo: 0.2, hi: 3.0 },
                2 => SizeLaw::BoundedPareto {
                    alpha: 1.3,
                    lo: 0.2,
                    hi: 8.0,
                },
                _ => SizeLaw::Bimodal {
                    p_small: 0.8,
                    small: 0.5,
                    large: 6.0,
                },
            },
            slack: match dl {
                0 => SlackLaw::Tight,
                1 => SlackLaw::UniformIn { max: 2.0 },
                _ => SlackLaw::Generous { factor: 1.2 },
            },
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Claim 1: every job the Threshold algorithm accepts completes by
    /// its deadline, on any workload; the schedule validates fully.
    #[test]
    fn threshold_schedules_are_always_valid(spec in arb_spec(60)) {
        let inst = spec.generate().unwrap();
        let mut alg = Threshold::for_instance(&inst);
        let report = simulate(&inst, &mut alg).unwrap();
        let check = cslack::kernel::validate_schedule(&inst, &report.schedule);
        prop_assert!(check.is_valid(), "{:?}", check.violations);
    }

    /// Greedy dominates nothing but is always feasible too.
    #[test]
    fn greedy_schedules_are_always_valid(spec in arb_spec(60)) {
        let inst = spec.generate().unwrap();
        let mut alg = Greedy::new(inst.machines());
        let report = simulate(&inst, &mut alg).unwrap();
        prop_assert!(cslack::kernel::validate_schedule(&inst, &report.schedule).is_valid());
    }

    /// No online algorithm beats the exact offline optimum.
    #[test]
    fn online_never_beats_exact_opt(spec in arb_spec(10)) {
        let inst = spec.generate().unwrap();
        let exact = cslack::opt::exact::max_load(&inst).load;
        for mk in 0..2 {
            let mut alg: Box<dyn OnlineScheduler> = if mk == 0 {
                Box::new(Threshold::for_instance(&inst))
            } else {
                Box::new(Greedy::new(inst.machines()))
            };
            let online = simulate(&inst, alg.as_mut()).unwrap().accepted_load();
            prop_assert!(online <= exact + 1e-9 * exact.max(1.0),
                "online {online} > OPT {exact}");
        }
    }

    /// The flow relaxation upper-bounds the exact optimum on every
    /// random instance.
    #[test]
    fn flow_bound_dominates_exact(spec in arb_spec(10)) {
        let inst = spec.generate().unwrap();
        let exact = cslack::opt::exact::max_load(&inst).load;
        let flow = cslack::opt::flow::preemptive_load_bound(&inst);
        prop_assert!(exact <= flow + 1e-6 * flow.max(1.0),
            "exact {exact} > flow {flow}");
    }

    /// The preemptive EDF comparator fully serves everything it admits
    /// and its accepted load never exceeds the preemptive flow
    /// relaxation (its schedule *is* a feasible preemptive schedule).
    ///
    /// Note that EDF admission does NOT dominate greedy per-instance:
    /// both are accept-if-feasible rules, but their machine states
    /// diverge after the first differing decision, and either can end
    /// up ahead — proptest found a counterexample to the naive
    /// domination claim, which is why this property checks soundness
    /// bounds instead.
    #[test]
    fn preemptive_edf_is_sound_and_bounded(spec in arb_spec(40)) {
        let inst = spec.generate().unwrap();
        let mut edf = PreemptiveEdf::new(inst.machines());
        for job in inst.jobs() {
            edf.offer(job);
        }
        let edf_load = edf.accepted_load();
        let run = edf.finish();
        for (jid, _) in &run.accepted {
            let job = inst.job(*jid);
            prop_assert!((run.job_work(*jid) - job.proc_time).abs() < 1e-9);
        }
        let flow = cslack::opt::flow::preemptive_load_bound(&inst);
        prop_assert!(edf_load <= flow + 1e-6 * flow.max(1.0),
            "EDF {edf_load} > preemptive bound {flow}");
    }

    /// The randomized classify-and-select wrapper commits feasibly on
    /// one machine for any seed and slack.
    #[test]
    fn randomized_wrapper_is_always_feasible(
        eps in 0.02f64..1.0,
        seed in any::<u64>(),
        wseed in any::<u64>(),
    ) {
        let spec = WorkloadSpec { m: 1, ..WorkloadSpec::default_spec(1, eps, 30, wseed) };
        let inst = spec.generate().unwrap();
        let mut alg = cslack::algorithms::RandomizedClassifySelect::new(eps, seed);
        let report = simulate(&inst, &mut alg).unwrap();
        prop_assert!(cslack::kernel::validate_schedule(&inst, &report.schedule).is_valid());
    }

    /// c(eps, m) is finite, at least 1 + 1/m-ish, and the Theorem 2
    /// upper bound is never below the Theorem 1 lower bound.
    #[test]
    fn theorem_bounds_are_ordered(m in 1usize..=8, eps in 0.001f64..=1.0) {
        let r = RatioFn::new(m);
        let lb = r.lower_bound(eps);
        let ub = r.threshold_upper_bound(eps);
        prop_assert!(lb.is_finite() && lb > 1.0);
        prop_assert!(ub >= lb - 1e-12);
    }
}
