//! End-to-end pipeline integration: workload generation -> simulation ->
//! independent validation -> offline bounds -> theory cross-checks.

use cslack::prelude::*;
use cslack::ratio::RatioFn;
use cslack::sim::sweep::AlgoKind;
use cslack::workloads::{scenarios, WorkloadSpec};

/// Every algorithm family produces a valid schedule on every scenario.
#[test]
fn all_algorithms_validate_on_all_scenarios() {
    let m = 3;
    let eps = 0.25;
    let instances = vec![
        scenarios::smoke(m, eps),
        scenarios::iaas_mix(m, eps, 60, 5),
        scenarios::small_job_flood(m, eps, 5),
        scenarios::bursty_heavy_tail(m, eps, 60, 5),
    ];
    for inst in &instances {
        for &algo in AlgoKind::ablations().iter().chain(AlgoKind::baselines()) {
            let mut alg = algo.build(m, eps, 9);
            if alg.machines() != inst.machines() {
                continue; // the randomized single-machine wrapper
            }
            let report = cslack::sim::simulate(inst, alg.as_mut())
                .unwrap_or_else(|e| panic!("{algo:?} failed: {e}"));
            cslack::kernel::validate::assert_valid(inst, &report.schedule);
            assert!(report.accepted_load() <= inst.total_load() + 1e-9);
        }
    }
}

/// On small instances with exact OPT, the measured Threshold ratio never
/// exceeds the Theorem 2 guarantee.
#[test]
fn threshold_respects_theorem2_on_exact_instances() {
    for m in 1..=3 {
        let rfn = RatioFn::new(m);
        for &eps in &[0.1, 0.35, 0.8] {
            let bound = rfn.threshold_upper_bound(eps);
            for seed in 0..6 {
                let inst = WorkloadSpec::default_spec(m, eps, 10, seed)
                    .generate()
                    .unwrap();
                let mut alg = Threshold::for_instance(&inst);
                let report = simulate(&inst, &mut alg).unwrap();
                let opt = cslack::opt::estimate(&inst, 12);
                let exact = opt.exact.expect("10 jobs is solvable");
                let ratio = report.ratio_against(exact);
                assert!(
                    ratio <= bound + 1e-6,
                    "m={m} eps={eps} seed={seed}: ratio {ratio} > bound {bound}"
                );
            }
        }
    }
}

/// The online load never exceeds the exact offline optimum, and the
/// optimum never exceeds the flow relaxation.
#[test]
fn bound_ladder_is_ordered() {
    for seed in 0..8 {
        let inst = WorkloadSpec::default_spec(2, 0.3, 11, seed)
            .generate()
            .unwrap();
        let exact = cslack::opt::exact::max_load(&inst).load;
        let flow = cslack::opt::flow::preemptive_load_bound(&inst);
        let greedy_lb = cslack::opt::bounds::greedy_lower_bound(&inst);
        let mut alg = Threshold::for_instance(&inst);
        let online = simulate(&inst, &mut alg).unwrap().accepted_load();
        assert!(online <= exact + 1e-9, "seed {seed}: online > exact");
        assert!(greedy_lb <= exact + 1e-9, "seed {seed}: greedy lb > exact");
        assert!(exact <= flow + 1e-9, "seed {seed}: exact > flow");
        assert!(flow <= inst.total_load() + 1e-9, "seed {seed}");
    }
}

/// Single-machine Threshold and the Goldwasser–Kerbikov wrapper make
/// identical decisions on every stream.
#[test]
fn gk_equals_threshold_on_one_machine() {
    use cslack::algorithms::GoldwasserKerbikov;
    for seed in 0..5 {
        let inst = WorkloadSpec::default_spec(1, 0.4, 40, seed)
            .generate()
            .unwrap();
        let a = simulate(&inst, &mut Threshold::new(1, 0.4)).unwrap();
        let b = simulate(&inst, &mut GoldwasserKerbikov::new(0.4)).unwrap();
        assert_eq!(a.decisions.len(), b.decisions.len());
        for (x, y) in a.decisions.iter().zip(&b.decisions) {
            assert_eq!(x.accepted, y.accepted, "seed {seed}: decision diverged");
        }
        assert_eq!(a.accepted_load(), b.accepted_load());
    }
}

/// The facade prelude exposes a working surface (doc example parity).
#[test]
fn facade_prelude_surface() {
    let inst = InstanceBuilder::new(2, 0.5)
        .tight_job(Time::ZERO, 1.0)
        .tight_job(Time::ZERO, 1.0)
        .tight_job(Time::new(0.1), 4.0)
        .build()
        .unwrap();
    let mut alg = Threshold::for_instance(&inst);
    let report = simulate(&inst, &mut alg).unwrap();
    assert!(report.accepted_load() > 0.0);
    let _: Decision = Decision::Reject;
    let _ = Greedy::new(2);
    let _ = RatioFn::new(2);
    let _: SimReport = report;
    let _ = (JobId(0), MachineId(0), Schedule::new(1));
    let _: Job = inst.jobs()[0];
    let _: &Instance = &inst;
}

/// Sweep rows are mutually consistent: ratio * online == denominator.
#[test]
fn sweep_row_accounting_is_consistent() {
    use cslack::sim::sweep::{grid, run};
    let cells = grid(
        &WorkloadSpec::default_spec(2, 0.5, 10, 0),
        AlgoKind::baselines(),
        &[0.2, 0.7],
        &[1, 2],
    );
    for row in run(&cells, 12) {
        if row.online_load > 0.0 {
            assert!(
                (row.ratio * row.online_load - row.opt_denominator).abs()
                    < 1e-6 * row.opt_denominator.max(1.0),
                "inconsistent row: {row:?}"
            );
        }
        assert!(row.acceptance_rate >= 0.0 && row.acceptance_rate <= 1.0);
        assert!(row.opt_is_exact, "10-job instances must be exact");
    }
}
