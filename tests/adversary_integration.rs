//! Adversary-vs-algorithm integration: the Theorem-1 game against every
//! algorithm family, cross-checked with the decision-tree algebra.

use cslack::adversary::{run, tree::DecisionTree, AdversaryConfig, StopPhase};
use cslack::kernel::validate;
use cslack::prelude::*;
use cslack::ratio::RatioFn;
use cslack::sim::sweep::AlgoKind;

/// Every adversary game produces schedules that validate against the
/// submitted instance, for every algorithm family.
#[test]
fn games_validate_for_every_algorithm() {
    for m in 1..=4 {
        for &eps in &[0.08, 0.3, 0.9] {
            for &algo in AlgoKind::ablations().iter().chain(AlgoKind::baselines()) {
                let mut alg = algo.build(m, eps, 3);
                if alg.machines() != m {
                    continue;
                }
                let out = run(&AdversaryConfig::new(m, eps), alg.as_mut());
                validate::assert_valid(&out.instance, &out.online);
                validate::assert_valid(&out.instance, &out.witness);
                assert!(
                    out.ratio >= 1.0 - 1e-9,
                    "{algo:?} m={m} eps={eps}: ratio {} < 1",
                    out.ratio
                );
            }
        }
    }
}

/// The reactive game against Threshold lands on a leaf of the decision
/// tree, and the measured ratio matches that leaf's algebraic value.
#[test]
fn game_outcome_matches_tree_leaf_algebra() {
    for m in 1..=4 {
        for &eps in &[0.05, 0.25, 0.6, 1.0] {
            let out = run(&AdversaryConfig::new(m, eps), &mut Threshold::new(m, eps));
            let params = RatioFn::new(m).eval(eps);
            let algebraic = match out.stop {
                StopPhase::Phase2 { u } => cslack::adversary::tree::phase2_leaf_ratio(m, u),
                StopPhase::Phase3 { u, h, .. } => {
                    cslack::adversary::tree::phase3_leaf_ratio(&params, u, h)
                }
                StopPhase::RejectedJ1 => panic!("Threshold never rejects J1"),
            };
            assert!(
                (out.ratio - algebraic).abs() < 0.02 * algebraic,
                "m={m} eps={eps}: game {} vs tree {algebraic}",
                out.ratio
            );
        }
    }
}

/// The tree's minimax value is c; Threshold achieves (does not exceed)
/// it for k <= 3 — Theorems 1 + 2 working together.
#[test]
fn threshold_plays_the_minimax_strategy() {
    for m in 1..=3 {
        for &eps in &[0.1, 0.4, 1.0] {
            let tree = DecisionTree::build(m, eps);
            let out = run(&AdversaryConfig::new(m, eps), &mut Threshold::new(m, eps));
            let minimax = tree.min_leaf_ratio();
            assert!(
                out.ratio <= minimax * 1.02,
                "m={m} eps={eps}: Threshold forced past minimax ({} > {minimax})",
                out.ratio
            );
        }
    }
}

/// Under the adversary, greedy's forced ratio scales like 1/eps while
/// Threshold's scales like c(eps, m) — the gap widens as eps shrinks.
#[test]
fn greedy_gap_widens_with_shrinking_slack() {
    let m = 3;
    let mut prev_gap = 0.0;
    for &eps in &[0.4, 0.2, 0.1, 0.05] {
        let cfg = AdversaryConfig::new(m, eps);
        let t = run(&cfg, &mut Threshold::new(m, eps)).ratio;
        let g = run(&cfg, &mut Greedy::new(m)).ratio;
        let gap = g / t;
        assert!(
            gap >= prev_gap * 0.95,
            "eps={eps}: gap {gap} stopped growing (prev {prev_gap})"
        );
        prev_gap = gap;
    }
    assert!(
        prev_gap > 2.0,
        "greedy should be at least 2x worse by eps=0.05"
    );
}

/// Adversary beta controls precision: smaller beta => closer to c.
#[test]
fn beta_controls_forced_ratio_precision() {
    let m = 2;
    let eps = 0.3;
    let c = RatioFn::new(m).lower_bound(eps);
    let mut errs = Vec::new();
    for &beta in &[1e-2, 1e-4] {
        let cfg = AdversaryConfig {
            beta,
            ..AdversaryConfig::new(m, eps)
        };
        let out = run(&cfg, &mut Threshold::new(m, eps));
        errs.push((out.ratio - c).abs());
    }
    assert!(
        errs[1] < errs[0],
        "smaller beta should tighten the game: {errs:?}"
    );
    assert!(errs[1] < 1e-3 * c);
}

/// The instance the adversary builds is a legal online input: releases
/// are non-decreasing and every job satisfies the slack condition.
#[test]
fn adversary_instances_are_legal_inputs() {
    for m in 1..=5 {
        let eps = 0.15;
        let out = run(&AdversaryConfig::new(m, eps), &mut Greedy::new(m));
        let jobs = out.instance.jobs();
        for w in jobs.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        for j in jobs {
            assert!(j.satisfies_slack(eps));
            assert!(j.proc_time > 0.0);
        }
    }
}
