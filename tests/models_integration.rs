//! Cross-model integration: the commitment/machine-model hierarchy on
//! shared scenario workloads.

use cslack::algorithms::delayed::DelayedGreedy;
use cslack::algorithms::migration::MigratoryAdmission;
use cslack::algorithms::notification::NotificationEdf;
use cslack::algorithms::preemptive::PreemptiveEdf;
use cslack::prelude::*;
use cslack::workloads::scenarios;

fn model_loads(inst: &cslack::kernel::Instance) -> Vec<(&'static str, f64)> {
    let m = inst.machines();
    let eps = inst.slack();
    let mut out = Vec::new();

    let rep = simulate(inst, &mut Threshold::new(m, eps)).unwrap();
    out.push(("threshold", rep.accepted_load()));
    let rep = simulate(inst, &mut Greedy::new(m)).unwrap();
    out.push(("greedy", rep.accepted_load()));

    let mut d = DelayedGreedy::new(m, eps);
    for j in inst.jobs() {
        d.offer(j);
    }
    out.push(("delayed", d.finish().accepted_load()));

    let mut n = NotificationEdf::new(m);
    for j in inst.jobs() {
        let _ = cslack::algorithms::OnlineScheduler::offer(&mut n, j);
    }
    out.push(("notification", n.accepted_load()));

    let mut p = PreemptiveEdf::new(m);
    for j in inst.jobs() {
        p.offer(j);
    }
    out.push(("preemptive", p.accepted_load()));

    let mut mig = MigratoryAdmission::new(m);
    for j in inst.jobs() {
        mig.offer(j);
    }
    out.push(("migration", mig.accepted_load()));
    out
}

/// Every model's load stays within the preemptive flow ceiling, on
/// every scenario family.
#[test]
fn all_models_respect_the_flow_ceiling() {
    for (name, inst) in [
        ("iaas", scenarios::iaas_mix(3, 0.2, 80, 2)),
        ("flood", scenarios::small_job_flood(3, 0.2, 2)),
        ("bursty", scenarios::bursty_heavy_tail(3, 0.2, 80, 2)),
        ("diurnal", scenarios::diurnal(3, 0.2, 120, 30.0, 2)),
    ] {
        let ceiling = cslack::opt::flow::preemptive_load_bound(&inst);
        for (model, load) in model_loads(&inst) {
            assert!(
                load <= ceiling + 1e-6 * ceiling.max(1.0),
                "{name}/{model}: load {load} above ceiling {ceiling}"
            );
            assert!(load >= 0.0);
        }
    }
}

/// The non-preemptive models produce kernel-valid schedules on shared
/// inputs (the preemptive ones are validated by their own run types).
#[test]
fn nonpreemptive_models_produce_valid_schedules() {
    let inst = scenarios::diurnal(2, 0.3, 100, 25.0, 5);
    let eps = inst.slack();

    let rep = simulate(&inst, &mut Threshold::new(2, eps)).unwrap();
    cslack::kernel::validate::assert_valid(&inst, &rep.schedule);

    let mut d = DelayedGreedy::new(2, eps);
    for j in inst.jobs() {
        d.offer(j);
    }
    cslack::kernel::validate::assert_valid(&inst, &d.finish());

    let mut n = NotificationEdf::new(2);
    for j in inst.jobs() {
        let _ = cslack::algorithms::OnlineScheduler::offer(&mut n, j);
    }
    cslack::kernel::validate::assert_valid(&inst, &n.finish());
}

/// On the flood trap, the hierarchy tells the paper's story: Threshold
/// (admission discipline) and delayed commitment (displacement) both
/// beat plain greedy.
#[test]
fn flood_trap_separates_the_models() {
    let inst = scenarios::small_job_flood(4, 0.1, 9);
    let loads: std::collections::HashMap<&str, f64> = model_loads(&inst).into_iter().collect();
    assert!(
        loads["threshold"] > 2.0 * loads["greedy"],
        "threshold {} vs greedy {}",
        loads["threshold"],
        loads["greedy"]
    );
    assert!(
        loads["delayed"] > 2.0 * loads["greedy"],
        "delayed {} vs greedy {}",
        loads["delayed"],
        loads["greedy"]
    );
}

/// Migration accepts at least as much as every other model on the
/// capacity-exact synthetic instance where only migration can pack the
/// work (3 jobs of 2 units, deadline 3, 2 machines).
#[test]
fn migration_wins_the_capacity_exact_instance() {
    let inst = InstanceBuilder::new(2, 0.5)
        .job(Time::ZERO, 2.0, Time::new(3.0))
        .job(Time::ZERO, 2.0, Time::new(3.0))
        .job(Time::ZERO, 2.0, Time::new(3.0))
        .build()
        .unwrap();
    let loads: std::collections::HashMap<&str, f64> = model_loads(&inst).into_iter().collect();
    assert!((loads["migration"] - 6.0).abs() < 1e-6, "{loads:?}");
    for (model, load) in &loads {
        if *model != "migration" {
            assert!(
                *load <= 4.0 + 1e-9,
                "{model} cannot exceed two whole jobs, got {load}"
            );
        }
    }
}

/// Timeline analyses agree with the report's totals on a busy run.
#[test]
fn timelines_are_consistent_with_reports() {
    use cslack::sim::analysis::{accepted_load_timeline, occupancy_timeline};
    let inst = scenarios::bursty_heavy_tail(3, 0.4, 90, 4);
    let rep = simulate(&inst, &mut Greedy::new(3)).unwrap();
    let occ = occupancy_timeline(&rep);
    // Occupancy integrates to the executed volume.
    let mut integral = 0.0;
    for w in occ.times.windows(2) {
        integral += occ.at(w[0]) * (w[1] - w[0]);
    }
    assert!(
        (integral - rep.accepted_load()).abs() < 1e-6 * rep.accepted_load(),
        "occupancy integral {integral} vs load {}",
        rep.accepted_load()
    );
    let series = accepted_load_timeline(&inst, &rep);
    assert!((series.values.last().unwrap() - rep.accepted_load()).abs() < 1e-9);
}
