//! Immediate-commitment contract tests: commitments are decided at
//! submission, never revised, and enforced against hostile schedulers.

use cslack::algorithms::{Decision, OnlineScheduler};
use cslack::kernel::validate::extends_without_revision;
use cslack::prelude::*;
use cslack::workloads::WorkloadSpec;

/// Replay an instance step by step, snapshotting the schedule after
/// every decision: each snapshot must extend the previous one without
/// revising any commitment (the definition of immediate commitment).
#[test]
fn threshold_never_revises_a_commitment() {
    let inst = WorkloadSpec::default_spec(3, 0.3, 80, 21)
        .generate()
        .unwrap();
    let mut alg = Threshold::for_instance(&inst);
    let mut schedule = Schedule::new(inst.machines());
    let mut prev = schedule.clone();
    for job in inst.jobs() {
        if let Decision::Accept { machine, start } = alg.offer(job) {
            schedule.commit(*job, machine, start).expect("feasible");
        }
        assert!(
            extends_without_revision(&prev, &schedule),
            "schedule revised at {}",
            job.id
        );
        prev = schedule.clone();
    }
}

/// The decision must be made with information available at submission:
/// rerunning the algorithm on any prefix of the stream reproduces the
/// prefix of the decisions (online-ness / no lookahead).
#[test]
fn decisions_depend_only_on_the_past() {
    let inst = WorkloadSpec::default_spec(2, 0.5, 30, 4)
        .generate()
        .unwrap();
    let full = cslack::sim::simulate(&inst, &mut Threshold::for_instance(&inst)).unwrap();
    for cut in [1usize, 7, 15, 29] {
        let mut alg = Threshold::for_instance(&inst);
        for (i, job) in inst.jobs().iter().take(cut).enumerate() {
            let d = alg.offer(job);
            assert_eq!(
                d.is_accept(),
                full.decisions[i].accepted,
                "cut={cut}, job {i}: decision changed with a shorter future"
            );
        }
    }
}

/// A scheduler that tries to move an already-committed job is refused by
/// the authoritative schedule.
#[test]
fn double_commitment_is_refused() {
    let inst = InstanceBuilder::new(1, 0.5)
        .job(Time::ZERO, 1.0, Time::new(10.0))
        .build()
        .unwrap();
    let job = inst.jobs()[0];
    let mut schedule = Schedule::new(1);
    schedule.commit(job, MachineId(0), Time::ZERO).unwrap();
    // "Revision" attempt: same job, later start.
    let err = schedule.commit(job, MachineId(0), Time::new(5.0));
    assert!(err.is_err(), "revision must be refused");
    // The original commitment is untouched.
    assert_eq!(schedule.commitment_of(JobId(0)).unwrap().start, Time::ZERO);
}

/// A hostile scheduler accepting everything at slot 0 is caught by the
/// simulator on the first infeasible commitment, not silently absorbed.
#[test]
fn hostile_scheduler_is_rejected_by_the_simulator() {
    struct Stacker;
    impl OnlineScheduler for Stacker {
        fn name(&self) -> &'static str {
            "stacker"
        }
        fn machines(&self) -> usize {
            2
        }
        fn offer(&mut self, _job: &Job) -> Decision {
            Decision::Accept {
                machine: MachineId(0),
                start: Time::ZERO,
            }
        }
        fn reset(&mut self) {}
    }
    let inst = InstanceBuilder::new(2, 0.5)
        .job(Time::ZERO, 1.0, Time::new(10.0))
        .job(Time::ZERO, 1.0, Time::new(10.0))
        .build()
        .unwrap();
    assert!(cslack::sim::simulate(&inst, &mut Stacker).is_err());
}

/// Reset restores complete determinism: run, reset, run again — byte-
/// identical decisions (no hidden state leaks across runs).
#[test]
fn reset_gives_identical_reruns() {
    let inst = WorkloadSpec::default_spec(3, 0.2, 50, 77)
        .generate()
        .unwrap();
    let mut alg = Threshold::for_instance(&inst);
    let first = cslack::sim::simulate(&inst, &mut alg).unwrap();
    alg.reset();
    let second = cslack::sim::simulate(&inst, &mut alg).unwrap();
    assert_eq!(first.decisions, second.decisions);
    assert_eq!(first.accepted_load(), second.accepted_load());
}
