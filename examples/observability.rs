//! Observability demo: run the sharded engine with the full
//! observability stack live — a shared metrics registry, a decision
//! trace with typed reject reasons, span profiling timers, and the
//! flight recorder — then show the export surfaces (JSONL trace,
//! metrics snapshot, Prometheus text exposition) and close the loop by
//! replaying and auditing the flight recording.
//!
//! ```text
//! cargo run --example observability
//! ```

use cslack::engine::{Engine, EngineConfig, FlightConfig, ObsConfig};
use cslack::obs;
use cslack::prelude::*;
use cslack::workloads::WorkloadSpec;
use std::sync::Arc;

fn main() {
    let (m, eps, n, shards) = (4, 0.25, 2_000, 2);
    let inst = WorkloadSpec::default_spec(m, eps, n, 11)
        .generate()
        .expect("workload");

    // Span timers are process-global and off by default; turning them
    // on makes `span!("route")` / `span!("threshold_eval")` record.
    obs::set_spans_enabled(true);
    let registry = Arc::new(MetricsRegistry::enabled());
    let wiring = ObsConfig {
        registry: Some(Arc::clone(&registry)),
        trace_capacity: n, // hold the entire run
        // One compact flight record per decision; the capacity covers
        // the whole run so the recording is complete and replayable.
        flight: Some(FlightConfig::new(n, "threshold", eps, 11)),
        serve_metrics: None,
        ..ObsConfig::default()
    };

    let engine = Engine::start_observed(
        m,
        EngineConfig::new(shards),
        wiring,
        move |_shard, group| Box::new(Threshold::new(group, eps)) as Box<dyn OnlineScheduler>,
    )
    .expect("engine start");
    for job in inst.jobs() {
        engine.submit(*job).expect("submit");
    }
    let report = engine.finish().expect("drain");

    // 1. The decision trace: every submission, with a typed reason on
    //    every rejection. `summarize` reproduces the engine counters.
    let summary = obs::summarize(&report.trace);
    println!(
        "trace: {} decisions ({} accepted), {} dropped by the ring",
        summary.decisions, summary.accepted, report.trace_dropped
    );
    for reason in RejectReason::ALL {
        let count = summary.rejected.get(reason);
        if count > 0 {
            println!("  rejected[{}] = {count}", reason.as_str());
        }
    }
    assert_eq!(summary.accepted, report.metrics.accepted);
    assert_eq!(summary.rejected.total(), report.metrics.rejected);
    if let Some(event) = report.trace.iter().find(|e| !e.accepted) {
        let mut buf = Vec::new();
        obs::write_jsonl(std::slice::from_ref(event), &mut buf).expect("serialize event");
        print!(
            "  sample rejection (JSONL): {}",
            String::from_utf8_lossy(&buf)
        );
    }

    // 2. Histogram metrics: percentiles from log-bucketed histograms.
    let metrics = &report.metrics;
    println!(
        "latency: p50 {} ns, p90 {} ns, p99 {} ns, max {} ns",
        metrics.latency.p50_ns,
        metrics.latency.p90_ns,
        metrics.latency.p99_ns,
        metrics.latency.max_ns
    );
    println!(
        "queue wait: p50 {} ns, p99 {} ns (backpressure stalls: {})",
        metrics.queue_wait.p50_ns, metrics.queue_wait.p99_ns, metrics.backpressure_stalls
    );

    // 3. The registry's export surfaces.
    let snapshot = registry.snapshot();
    println!(
        "registry: submitted {}, accepted {}, rejected {:?}",
        snapshot.submitted, snapshot.accepted, snapshot.rejected
    );
    let exposition = registry.render_prometheus();
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("cslack_") && !l.contains("_bucket"))
        .take(12)
    {
        println!("  {line}");
    }
    println!(
        "spans recorded: {:?}",
        obs::span_snapshot()
            .iter()
            .map(|(name, h)| (*name, h.count()))
            .collect::<Vec<_>>()
    );

    // 4. The flight recorder: the run's complete causal record. Replay
    //    re-runs the recorded algorithm on the recorded submissions and
    //    compares decision streams bit for bit; the auditor rechecks
    //    every schedule invariant from the trace alone.
    let flight = report.flight.as_ref().expect("flight recording");
    let replay = cslack::sim::audit::replay_snapshot(flight, |_shard, group| {
        Box::new(Threshold::new(group, eps)) as Box<dyn OnlineScheduler>
    })
    .expect("replay");
    let audit = cslack::sim::audit::audit_snapshot(flight);
    println!(
        "flight: {} event(s), {} dropped; replay identical: {}, audit clean: {}",
        flight.len(),
        flight.total_dropped(),
        replay.is_identical(),
        audit.is_clean()
    );
    assert!(replay.is_identical() && audit.is_clean());
}
