//! Watch the Theorem-1 adversary dismantle an online algorithm.
//!
//! The adversary of Section 3 reacts to every decision the algorithm
//! makes; this example replays one full game against the paper's
//! Threshold algorithm and against greedy, printing the submitted jobs,
//! the decisions, and the final accounting.
//!
//! ```text
//! cargo run --example adversary_duel [m] [eps]
//! ```

use cslack::adversary::{run, AdversaryConfig};
use cslack::prelude::*;

fn duel(m: usize, eps: f64, alg: &mut dyn OnlineScheduler) {
    let cfg = AdversaryConfig::new(m, eps);
    let out = run(&cfg, alg);
    println!("--- algorithm: {} ---", alg.name());
    println!("jobs submitted: {}", out.instance.len());
    println!("stopped: {:?}", out.stop);
    println!(
        "online load {:.3} vs witness OPT {:.3}  =>  forced ratio {:.3}",
        out.online_load(),
        out.witness_load(),
        out.ratio
    );
    println!(
        "Theorem 1 lower bound c(eps, m) = {:.3}  (ratio/c = {:.3})",
        out.predicted,
        out.ratio / out.predicted
    );
    println!();
    println!("online schedule:");
    print!("{}", out.online.gantt_ascii(72));
    println!("witness (offline) schedule:");
    print!("{}", out.witness.gantt_ascii(72));
    println!();
}

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let eps: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.25);
    println!("adversary game: m = {m}, eps = {eps}");
    println!("================================================");
    duel(m, eps, &mut Threshold::new(m, eps));
    duel(m, eps, &mut Greedy::new(m));
    println!("the threshold algorithm is forced to exactly its bound and no further;");
    println!("greedy is pushed far beyond it (it accepts the bait jobs of phase 2).");
}
