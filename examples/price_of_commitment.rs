//! The price of commitment: one workload, five commitment/machine
//! models — from the paper's immediate commitment down to full
//! preemption with migration — plus the covered-interval diagnostics
//! of the Theorem-2 proof.
//!
//! ```text
//! cargo run --example price_of_commitment [m] [eps]
//! ```

use cslack::algorithms::delayed::DelayedGreedy;
use cslack::algorithms::migration::MigratoryAdmission;
use cslack::algorithms::notification::NotificationEdf;
use cslack::algorithms::preemptive::PreemptiveEdf;
use cslack::prelude::*;
use cslack::sim::analysis::cover_analysis;
use cslack::workloads::scenarios;

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let eps: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.2);

    let inst = scenarios::diurnal(m, eps, 400, 60.0, 11);
    let ceiling = cslack::opt::flow::preemptive_load_bound(&inst);
    println!(
        "diurnal workload: {} jobs, volume {:.1}, m = {m}, eps = {eps}",
        inst.len(),
        inst.total_load()
    );
    println!("preemptive flow ceiling (upper bound on OPT): {ceiling:.1}");
    println!();
    println!("{:<38}{:>10}{:>12}", "model", "load", "% ceiling");
    println!("{}", "-".repeat(60));

    let print_row = |name: &str, load: f64| {
        println!("{name:<38}{load:>10.2}{:>11.1}%", 100.0 * load / ceiling);
    };

    // Immediate commitment (the paper's model).
    let t = simulate(&inst, &mut Threshold::new(m, eps)).unwrap();
    print_row("immediate commitment — Threshold", t.accepted_load());
    let g = simulate(&inst, &mut Greedy::new(m)).unwrap();
    print_row("immediate commitment — Greedy", g.accepted_load());

    // Delayed commitment.
    for frac in [0.5, 1.0] {
        let mut d = DelayedGreedy::new(m, frac * eps);
        for j in inst.jobs() {
            d.offer(j);
        }
        let load = d.finish().accepted_load();
        print_row(&format!("delayed commitment (delta = {frac} eps)"), load);
    }

    // Immediate notification.
    let mut n = NotificationEdf::new(m);
    for j in inst.jobs() {
        let _ = cslack::algorithms::OnlineScheduler::offer(&mut n, j);
    }
    print_row("immediate notification — lazy EDF", n.accepted_load());

    // Preemption without migration.
    let mut p = PreemptiveEdf::new(m);
    for j in inst.jobs() {
        p.offer(j);
    }
    print_row("preemption, no migration — EDF", p.accepted_load());

    // Preemption with migration.
    let mut mig = MigratoryAdmission::new(m);
    for j in inst.jobs() {
        mig.offer(j);
    }
    print_row("preemption + migration — Horn plan", mig.accepted_load());

    // Covered-interval diagnostics for the Threshold run.
    let a = cover_analysis(&inst, &t);
    println!();
    println!(
        "Threshold run, proof-style diagnostics: {} covered interval(s), \
         {:.0}% of the horizon covered, covered-capacity utilization {:.0}%",
        a.covered.len(),
        100.0 * a.covered_time() / a.horizon,
        100.0 * a.covered_load() / a.covered.iter().map(|c| c.capacity).sum::<f64>().max(1e-12)
    );
    println!();
    println!("every relaxation of the commitment/machine model buys load — the gap");
    println!("between the first row and the last is the price of immediate commitment");
    println!("on non-preemptive machines, which Theorem 1 prices at c(eps, m) in the");
    println!("worst case.");
}
