//! IaaS admission control: the motivating scenario of the paper's
//! introduction. A cloud provider with `m` machines faces a mixed stream
//! of small time-sensitive jobs and large batch jobs, must answer every
//! submission immediately and irrevocably, and wants to maximize sold
//! machine time.
//!
//! The example compares the paper's Threshold policy against greedy
//! admission on the IaaS mix and on a flood scenario, reporting revenue
//! (accepted load) and what fraction of the theoretical ceiling each
//! policy achieves.
//!
//! ```text
//! cargo run --example cloud_admission
//! ```

use cslack::prelude::*;
use cslack::workloads::scenarios;

fn run_policy(
    inst: &cslack::kernel::Instance,
    alg: &mut dyn OnlineScheduler,
) -> (String, f64, f64) {
    let report = simulate(inst, alg).expect("clean run");
    let ceiling = cslack::opt::flow::preemptive_load_bound(inst);
    (
        report.algorithm.clone(),
        report.accepted_load(),
        report.accepted_load() / ceiling.max(1e-12),
    )
}

fn main() {
    let m = 8;
    let eps = 0.2;

    println!("== IaaS service mix (interactive + batch), m = {m}, eps = {eps} ==");
    let mix = scenarios::iaas_mix(m, eps, 400, 7);
    println!(
        "{} jobs, {:.1} total volume, sizes spread {:.1}x",
        mix.len(),
        mix.total_load(),
        mix.processing_time_spread()
    );
    for (name, load, frac) in [
        run_policy(&mix, &mut Threshold::new(m, eps)),
        run_policy(&mix, &mut Greedy::new(m)),
    ] {
        println!(
            "  {name:<12} revenue {load:8.2}   ({:.0}% of preemptive ceiling)",
            frac * 100.0
        );
    }

    println!();
    println!("== adversarial flood: cheap jobs first, premium jobs after ==");
    let flood = scenarios::small_job_flood(m, eps, 7);
    println!(
        "{} jobs, {:.1} total volume (the last {m} jobs are worth {:.1})",
        flood.len(),
        flood.total_load(),
        flood
            .jobs()
            .iter()
            .rev()
            .take(m)
            .map(|j| j.proc_time)
            .sum::<f64>()
    );
    for (name, load, frac) in [
        run_policy(&flood, &mut Threshold::new(m, eps)),
        run_policy(&flood, &mut Greedy::new(m)),
    ] {
        println!(
            "  {name:<12} revenue {load:8.2}   ({:.0}% of preemptive ceiling)",
            frac * 100.0
        );
    }
    println!();
    println!("greedy sells every cheap slot and has nothing left for premium work;");
    println!("the threshold policy holds capacity back exactly when the outstanding");
    println!("load says future revenue justifies it (the f_h factors of the paper).");
}
