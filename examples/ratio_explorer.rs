//! Explore the competitive-ratio function `c(eps, m)` from the command
//! line: phases, corner values, the `f_q` parameters, and how the
//! bounds of the surrounding literature compare.
//!
//! ```text
//! cargo run --example ratio_explorer [m] [eps]
//! ```

use cslack::ratio::{
    dasgupta_palis_bound, goldwasser_kerbikov_bound, lee_bound, migration_bound, RatioFn,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let eps: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.1);

    let r = RatioFn::new(m);
    println!("c(eps, m) for m = {m}");
    println!();
    println!("phase corners eps_(k,m) (the circles of Fig. 1):");
    for k in 1..=m {
        println!("  k = {k}: eps <= {:.6}", r.corner(k));
    }
    println!();

    let p = r.eval(eps);
    println!("at eps = {eps}: phase k = {}", p.k);
    println!(
        "  c(eps, m)            = {:.6}   (Theorem 1 lower bound)",
        p.c
    );
    println!(
        "  Threshold guarantee  = {:.6}   (Theorem 2{})",
        r.threshold_upper_bound(eps),
        if p.k <= 3 { ", tight" } else { ", +0.164 gap" }
    );
    println!("  parameters f_q (threshold factors of Algorithm 1):");
    for h in p.k..=m {
        println!("    f_{h} = {:.6}", p.f(h));
    }
    println!();
    println!("literature context at this eps:");
    println!(
        "  greedy / 1 machine (Goldwasser-Kerbikov) : {:.4}",
        goldwasser_kerbikov_bound(eps)
    );
    println!(
        "  Lee'03 commit-on-admission, m machines   : {:.4}",
        lee_bound(eps, m)
    );
    println!(
        "  DasGupta-Palis preemptive (no migration) : {:.4}",
        dasgupta_palis_bound(eps)
    );
    println!(
        "  Schwiegelshohn^2 preemption + migration  : {:.4}",
        migration_bound(eps)
    );
    println!(
        "  ln(1/eps) asymptote (Proposition 1)      : {:.4}",
        RatioFn::asymptote(eps)
    );
    println!();
    println!("curve sample (10 log-spaced points on (0.01, 1]):");
    for (e, c) in r.curve(0.01, 1.0, 10) {
        println!("  eps = {e:.4}  c = {c:.4}  (phase {})", r.phase(e));
    }
}
