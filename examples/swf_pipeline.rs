//! Real-trace pipeline: synthesize a Standard Workload Format log (the
//! format of the Parallel Workloads Archive), import it with a slack
//! policy, and compare admission algorithms on it.
//!
//! ```text
//! cargo run --example swf_pipeline
//! ```

use cslack::prelude::*;
use cslack::workloads::swf::{parse_swf, swf_to_instance, write_swf, SwfImport, SwfJob};
use cslack::workloads::SlackLaw;

fn main() {
    // 1. Synthesize a small cluster log (in a real deployment this is a
    //    file from the archive).
    let mut jobs = Vec::new();
    let mut submit = 0.0;
    for i in 0..200 {
        submit += 120.0 + (i % 7) as f64 * 90.0; // seconds between submits
        jobs.push(SwfJob {
            job_number: i + 1,
            submit,
            run_time: 600.0 + ((i * 37) % 11) as f64 * 900.0, // 10–160 min
            processors: 1 + (i % 4),
        });
    }
    let swf_text = write_swf(&jobs);
    println!("synthesized SWF log: {} lines", swf_text.lines().count());

    // 2. Parse and import with a slack policy (the paper's model needs
    //    deadlines; SWF has none, so they are drawn per-job in
    //    [eps, 1.0] on top of the system slack eps).
    let parsed = parse_swf(&swf_text).expect("well-formed SWF");
    let m = 8;
    let eps = 0.15;
    let import = SwfImport {
        slack: SlackLaw::UniformIn { max: 1.0 },
        procs_scale: true, // volume = runtime * processors
        ..SwfImport::new(m, eps, 42)
    };
    let inst = swf_to_instance(&parsed, &import).expect("import");
    println!(
        "imported {} jobs onto m = {m}, eps = {eps}: volume {:.1} machine-hours",
        inst.len(),
        inst.total_load()
    );

    // 3. Compare the admission policies on the imported trace.
    let ceiling = cslack::opt::flow::preemptive_load_bound(&inst);
    println!("preemptive ceiling: {ceiling:.1}");
    println!();
    for mk in ["threshold", "greedy"] {
        let mut alg: Box<dyn OnlineScheduler> = match mk {
            "threshold" => Box::new(Threshold::new(m, eps)),
            _ => Box::new(Greedy::new(m)),
        };
        let rep = simulate(&inst, alg.as_mut()).expect("clean run");
        println!(
            "{:<10} accepted {:>3}/{} jobs, load {:>8.1} ({:.0}% of ceiling)",
            rep.algorithm,
            rep.accepted_count(),
            inst.len(),
            rep.accepted_load(),
            100.0 * rep.accepted_load() / ceiling
        );
    }
    println!();
    println!("tip: `cslack import-swf --file <log> --m 8 --eps 0.15 --out trace.json`");
    println!("does steps 1-2 for a real archive file from the command line.");
}
