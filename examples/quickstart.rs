//! Quickstart: build an instance, run the paper's Threshold algorithm,
//! inspect the committed schedule.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cslack::prelude::*;

fn main() {
    // A 2-machine system with slack eps = 1/2: every job's deadline
    // leaves at least 50% headroom over its processing time.
    let eps = 0.5;
    let inst = InstanceBuilder::new(2, eps)
        // Two tight unit jobs at time 0 (deadline = 1.5).
        .tight_job(Time::ZERO, 1.0)
        .tight_job(Time::ZERO, 1.0)
        // A long job with a comfortable deadline.
        .job(Time::new(0.25), 4.0, Time::new(10.0))
        // A tight job arriving while the machines are busy.
        .tight_job(Time::new(0.5), 1.0)
        .build()
        .expect("valid instance");

    // Algorithm 1 of the paper, configured from the instance.
    let mut alg = Threshold::for_instance(&inst);
    println!(
        "Threshold on m = {} machines, eps = {eps}: phase k = {}, factors f_h:",
        inst.machines(),
        alg.phase_k()
    );
    for h in alg.phase_k()..=inst.machines() {
        println!("  f_{h} = {:.4}", alg.factor(h));
    }
    println!();

    // The simulator replays the jobs and enforces every commitment.
    let report = simulate(&inst, &mut alg).expect("clean run");
    for d in &report.decisions {
        let job = inst.job(d.job);
        if d.accepted {
            let c = report.schedule.commitment_of(d.job).unwrap();
            println!(
                "{}: ACCEPT on {} at t={:.2} (p={}, d={})",
                d.job, c.machine, c.start, job.proc_time, job.deadline
            );
        } else {
            println!(
                "{}: reject (p={}, d={})",
                d.job, job.proc_time, job.deadline
            );
        }
    }
    println!();
    println!(
        "accepted load: {:.2} of {:.2} offered ({:.0}% of jobs)",
        report.accepted_load(),
        report.offered_load,
        report.acceptance_rate() * 100.0
    );
    println!();
    println!("schedule:");
    print!("{}", report.schedule.gantt_ascii(72));

    // How good is that? Compare against the exact offline optimum.
    let opt = cslack::opt::estimate(&inst, 16);
    println!();
    println!(
        "offline optimum: {:.2}  =>  measured ratio {:.3} (Theorem 2 bound: {:.3})",
        opt.denominator(),
        report.ratio_against(opt.denominator()),
        RatioFn::new(inst.machines()).threshold_upper_bound(eps)
    );
}
