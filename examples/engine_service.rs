//! Service engine demo: several producer threads stream jobs into a
//! sharded admission engine; each shard runs its own `Threshold`
//! scheduler over a disjoint machine group, and the shard schedules
//! are merged into one validated cluster schedule at drain time.
//!
//! ```text
//! cargo run --example engine_service
//! ```

use cslack::engine::{Engine, EngineConfig, SubmitError};
use cslack::kernel::validate_schedule;
use cslack::prelude::*;
use cslack::workloads::WorkloadSpec;

fn main() {
    let (m, eps, n, shards) = (8, 0.4, 10_000, 4);
    let inst = WorkloadSpec::default_spec(m, eps, n, 7)
        .generate()
        .expect("workload");

    // One Threshold instance per shard, each sized to its machine group.
    let builder = move |_shard: usize, group: usize| -> Box<dyn OnlineScheduler> {
        Box::new(Threshold::new(group, eps))
    };
    let engine = Engine::start(m, EngineConfig::new(shards), builder).expect("engine start");
    println!(
        "engine up: {} machines across {} shards {:?}",
        engine.machines(),
        engine.shard_count(),
        (0..shards)
            .map(|s| engine.shard_machines(s).len())
            .collect::<Vec<_>>()
    );

    // Four producers interleave submissions; `try_submit` shows the
    // backpressure path, falling back to the blocking `submit`.
    let mut retried = 0u64;
    std::thread::scope(|scope| {
        let retried = &mut retried;
        let counters: Vec<_> = (0..4)
            .map(|p| {
                let engine = &engine;
                let jobs = inst.jobs().iter().skip(p).step_by(4);
                scope.spawn(move || {
                    let mut retries = 0u64;
                    for job in jobs {
                        match engine.try_submit(*job) {
                            Ok(()) => {}
                            Err(SubmitError::Full(job)) => {
                                retries += 1;
                                engine.submit(job).expect("blocking submit");
                            }
                            Err(SubmitError::Closed(_) | SubmitError::ShardFailed(_)) => {
                                unreachable!("engine open and healthy")
                            }
                        }
                    }
                    retries
                })
            })
            .collect();
        *retried = counters.into_iter().map(|h| h.join().unwrap()).sum();
    });

    // Drain: join the shards, merge their schedules, re-validate.
    let report = engine.finish().expect("drain");
    let metrics = &report.metrics;
    println!(
        "accepted {}/{} jobs, load {:.1} ({} submissions hit backpressure)",
        metrics.accepted, metrics.submitted, metrics.accepted_load, retried
    );
    println!(
        "throughput {:.0} decisions/sec, latency min/mean/max = {}/{}/{} ns (p99 {} ns)",
        metrics.decisions_per_sec,
        metrics.latency.min_ns,
        metrics.latency.mean_ns,
        metrics.latency.max_ns,
        metrics.latency.p99_ns
    );
    for s in &metrics.per_shard {
        println!(
            "  shard {}: {} machines, {}/{} accepted, utilization {:.1}%",
            s.shard,
            s.machines,
            s.accepted,
            s.submitted,
            s.utilization * 100.0
        );
    }

    let validation = validate_schedule(&inst, &report.schedule);
    println!(
        "merged schedule: {} ({} violations)",
        if validation.is_valid() {
            "VALID"
        } else {
            "INVALID"
        },
        validation.violations.len()
    );
}
